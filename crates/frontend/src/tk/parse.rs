//! Recursive-descent parser for the `.tk` kernel DSL.
//!
//! Grammar (EBNF; the authoritative copy lives in `docs/kernel-dsl.md` and
//! is doc-locked by tests):
//!
//! ```text
//! program   := "kernel" IDENT NL
//!              { "param" IDENT "=" ["-"] INT NL }
//!              ( "iter" IDENT "=" lower "to" upper NL )+
//!              [ "skew" "=" "[" introw { ";" introw } "]" NL ]
//!              [ "deps" "=" depcol { "," depcol } NL ]
//!              ( "array" IDENT "=" expr NL )+
//!              { "let" IDENT "=" expr NL }
//!              ( IDENT "[" IDENT { "," IDENT } "]" "=" expr NL )+
//! lower     := affine | "max" "(" affine { "," affine } ")"
//! upper     := affine | "min" "(" affine { "," affine } ")"
//! depcol    := "(" ["-"] INT { "," ["-"] INT } ")"
//! introw    := ["-"] INT { "," ["-"] INT }
//! expr      := term { ("+" | "-") term }
//! term      := factor { ("*" | "/") factor }
//! factor    := NUM | IDENT | read | "bnd" "(" ")"
//!            | "mod" "(" affine "," INT ")" | "-" factor | "(" expr ")"
//! read      := IDENT "[" affine { "," affine } "]"
//! ```
//!
//! All semantic validation happens here, where source positions are still
//! available: uniform-access checking (every read index must be
//! `var_k + constant` in nest order), lexicographic positivity of every
//! dependence offset (a non-positive offset is a negative-lag cycle),
//! `deps`-declaration consistency, skew unimodularity, and name scoping.

use crate::tk::ast::{AffForm, ArrayDecl, KernelProgram, Stmt, TkExpr, TkLoop};
use crate::tk::error::TkError;
use crate::tk::lex::{tokenize, TkKeyword, TkSpanned, TkToken};
use tilecc_linalg::IMat;

/// Parse a complete kernel program from source text.
pub fn parse_kernel(source: &str) -> Result<KernelProgram, TkError> {
    let toks = tokenize(source)?;
    Parser::new(&toks).program()
}

struct Parser<'a> {
    toks: &'a [TkSpanned],
    pos: usize,
    params: Vec<(String, i64)>,
    loops: Vec<TkLoop>,
    arrays: Vec<ArrayDecl>,
    lets: Vec<(String, TkExpr)>,
    deps: Vec<Vec<i64>>,
    deps_declared: bool,
    /// Position of the `deps` keyword, for "declared but never read" errors.
    deps_span: (usize, usize),
    /// Which declared dependence columns have been read at least once.
    deps_used: Vec<bool>,
}

impl<'a> Parser<'a> {
    fn new(toks: &'a [TkSpanned]) -> Self {
        Parser {
            toks,
            pos: 0,
            params: Vec::new(),
            loops: Vec::new(),
            arrays: Vec::new(),
            lets: Vec::new(),
            deps: Vec::new(),
            deps_declared: false,
            deps_span: (0, 0),
            deps_used: Vec::new(),
        }
    }

    // -- token plumbing ----------------------------------------------------

    fn peek(&self) -> &TkSpanned {
        &self.toks[self.pos]
    }

    fn next(&mut self) -> &TkSpanned {
        let t = &self.toks[self.pos];
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err_at(&self, sp: &TkSpanned, msg: impl Into<String>) -> TkError {
        TkError::new(sp.line, sp.col, msg)
    }

    fn err_here(&self, msg: impl Into<String>) -> TkError {
        let sp = self.peek();
        TkError::new(sp.line, sp.col, msg)
    }

    fn expect(&mut self, want: &TkToken, what: &str) -> Result<(), TkError> {
        if &self.peek().token == want {
            self.next();
            Ok(())
        } else {
            Err(self.err_here(format!("expected {what}, found `{}`", self.peek().token)))
        }
    }

    fn expect_newline(&mut self) -> Result<(), TkError> {
        match &self.peek().token {
            TkToken::Newline => {
                self.next();
                Ok(())
            }
            TkToken::Eof => Ok(()),
            other => Err(self.err_here(format!("expected end of line, found `{other}`"))),
        }
    }

    fn skip_newlines(&mut self) {
        while self.peek().token == TkToken::Newline {
            self.next();
        }
    }

    fn ident(&mut self, what: &str) -> Result<(String, usize, usize), TkError> {
        let sp = self.peek().clone();
        match &sp.token {
            TkToken::Ident(s) => {
                self.next();
                Ok((s.clone(), sp.line, sp.col))
            }
            other => Err(self.err_at(&sp, format!("expected {what}, found `{other}`"))),
        }
    }

    fn int(&mut self, what: &str) -> Result<i64, TkError> {
        let neg = if self.peek().token == TkToken::Minus {
            self.next();
            true
        } else {
            false
        };
        let sp = self.peek().clone();
        match sp.token {
            TkToken::Int(v) => {
                self.next();
                Ok(if neg { -v } else { v })
            }
            ref other => Err(self.err_at(&sp, format!("expected {what}, found `{other}`"))),
        }
    }

    // -- name scoping ------------------------------------------------------

    fn check_fresh(&self, name: &str, line: usize, col: usize) -> Result<(), TkError> {
        let taken = self.params.iter().any(|(p, _)| p == name)
            || self.loops.iter().any(|l| l.var == name)
            || self.arrays.iter().any(|a| a.name == name)
            || self.lets.iter().any(|(l, _)| l == name);
        if taken {
            Err(TkError::new(
                line,
                col,
                format!("name `{name}` is already defined"),
            ))
        } else {
            Ok(())
        }
    }

    fn loop_index(&self, name: &str) -> Option<usize> {
        self.loops.iter().position(|l| l.var == name)
    }

    fn param_value(&self, name: &str) -> Option<i64> {
        self.params.iter().find(|(p, _)| p == name).map(|&(_, v)| v)
    }

    // -- program structure -------------------------------------------------

    fn program(&mut self) -> Result<KernelProgram, TkError> {
        self.skip_newlines();
        self.expect(
            &TkToken::Keyword(TkKeyword::Kernel),
            "`kernel <name>` header",
        )?;
        let (name, _, _) = self.ident("kernel name")?;
        self.expect_newline()?;

        // param lines.
        loop {
            self.skip_newlines();
            if self.peek().token != TkToken::Keyword(TkKeyword::Param) {
                break;
            }
            self.next();
            let (pname, line, col) = self.ident("parameter name")?;
            self.check_fresh(&pname, line, col)?;
            self.expect(&TkToken::Equals, "`=`")?;
            let v = self.int("integer parameter value")?;
            self.expect_newline()?;
            self.params.push((pname, v));
        }

        // iter lines.
        loop {
            self.skip_newlines();
            if self.peek().token != TkToken::Keyword(TkKeyword::Iter) {
                break;
            }
            self.next();
            let (var, line, col) = self.ident("loop variable")?;
            self.check_fresh(&var, line, col)?;
            self.expect(&TkToken::Equals, "`=`")?;
            let lowers = self.bound_list(TkKeyword::Max)?;
            self.expect(&TkToken::Keyword(TkKeyword::To), "`to`")?;
            let uppers = self.bound_list(TkKeyword::Min)?;
            self.expect_newline()?;
            self.loops.push(TkLoop {
                var,
                lowers,
                uppers,
            });
        }
        if self.loops.is_empty() {
            return Err(self.err_here("a kernel needs at least one `iter` line"));
        }
        // Bound forms were parsed with a growing dimension; pad them all to
        // the final nest dimension.
        let dim = self.loops.len();
        for lp in &mut self.loops {
            for f in lp.lowers.iter_mut().chain(lp.uppers.iter_mut()) {
                f.coeffs.resize(dim, 0);
            }
        }

        // Optional skew.
        let mut skew: Option<Vec<Vec<i64>>> = None;
        let mut skew_span = (0, 0);
        self.skip_newlines();
        if self.peek().token == TkToken::Keyword(TkKeyword::Skew) {
            let sp = self.peek().clone();
            skew_span = (sp.line, sp.col);
            self.next();
            self.expect(&TkToken::Equals, "`=`")?;
            self.expect(&TkToken::LBracket, "`[`")?;
            let mut rows = Vec::new();
            loop {
                let mut row = vec![self.int("skew matrix entry")?];
                while self.peek().token == TkToken::Comma {
                    self.next();
                    row.push(self.int("skew matrix entry")?);
                }
                rows.push(row);
                if self.peek().token == TkToken::Semicolon {
                    self.next();
                } else {
                    break;
                }
            }
            self.expect(&TkToken::RBracket, "`]`")?;
            self.expect_newline()?;
            if rows.len() != dim || rows.iter().any(|r| r.len() != dim) {
                return Err(TkError::new(
                    skew_span.0,
                    skew_span.1,
                    format!("skew matrix must be {dim}×{dim} for this nest"),
                ));
            }
            skew = Some(rows);
        }

        // Optional explicit dependence order.
        self.skip_newlines();
        if self.peek().token == TkToken::Keyword(TkKeyword::Deps) {
            let sp = self.peek().clone();
            self.deps_span = (sp.line, sp.col);
            self.next();
            self.expect(&TkToken::Equals, "`=`")?;
            loop {
                let csp = self.peek().clone();
                self.expect(&TkToken::LParen, "`(`")?;
                let mut col = vec![self.int("dependence component")?];
                while self.peek().token == TkToken::Comma {
                    self.next();
                    col.push(self.int("dependence component")?);
                }
                self.expect(&TkToken::RParen, "`)`")?;
                if col.len() != dim {
                    return Err(self.err_at(
                        &csp,
                        format!("dependence column must have {dim} components"),
                    ));
                }
                if !lex_positive(&col) {
                    return Err(self.err_at(
                        &csp,
                        format!(
                            "declared dependence ({}) is not lexicographically positive",
                            join(&col)
                        ),
                    ));
                }
                if self.deps.contains(&col) {
                    return Err(self.err_at(
                        &csp,
                        format!("dependence ({}) is declared twice", join(&col)),
                    ));
                }
                self.deps.push(col);
                if self.peek().token == TkToken::Comma {
                    self.next();
                } else {
                    break;
                }
            }
            self.expect_newline()?;
            self.deps_declared = true;
            self.deps_used = vec![false; self.deps.len()];
        }

        // array lines.
        loop {
            self.skip_newlines();
            if self.peek().token != TkToken::Keyword(TkKeyword::Array) {
                break;
            }
            self.next();
            let (aname, line, col) = self.ident("array name")?;
            self.check_fresh(&aname, line, col)?;
            self.expect(&TkToken::Equals, "`=`")?;
            // Reserve the name first so the init expression produces a
            // precise error if it tries to read the array being declared.
            self.arrays.push(ArrayDecl {
                name: aname,
                init: TkExpr::Num(0.0),
            });
            let init = self.expr(false)?;
            self.expect_newline()?;
            debug_assert!(!init.has_reads_or_lets());
            self.arrays.last_mut().unwrap().init = init;
        }
        if self.arrays.is_empty() {
            return Err(self.err_here(
                "a kernel needs at least one `array <name> = <initial expression>` line",
            ));
        }

        // let lines.
        loop {
            self.skip_newlines();
            if self.peek().token != TkToken::Keyword(TkKeyword::Let) {
                break;
            }
            self.next();
            let (lname, line, col) = self.ident("let name")?;
            self.check_fresh(&lname, line, col)?;
            self.expect(&TkToken::Equals, "`=`")?;
            let e = self.expr(true)?;
            self.expect_newline()?;
            self.lets.push((lname, e));
        }

        // Update statements: one per array.
        let mut stmts: Vec<Stmt> = Vec::new();
        loop {
            self.skip_newlines();
            if matches!(self.peek().token, TkToken::Eof) {
                break;
            }
            let (aname, line, col) = self.ident("array update statement")?;
            let array = match self.arrays.iter().position(|a| a.name == aname) {
                Some(i) => i,
                None => {
                    return Err(TkError::new(
                        line,
                        col,
                        format!("unknown array `{aname}` on the left-hand side"),
                    ))
                }
            };
            if stmts.iter().any(|s| s.array == array) {
                return Err(TkError::new(
                    line,
                    col,
                    format!("array `{aname}` is written twice"),
                ));
            }
            self.expect(&TkToken::LBracket, "`[`")?;
            for k in 0..dim {
                if k > 0 {
                    self.expect(&TkToken::Comma, "`,`")?;
                }
                let (v, vl, vc) = self.ident("loop variable")?;
                if self.loop_index(&v) != Some(k) {
                    return Err(TkError::new(
                        vl,
                        vc,
                        format!(
                            "write reference must be the identity `{}[{}]`",
                            aname,
                            self.loops
                                .iter()
                                .map(|l| l.var.clone())
                                .collect::<Vec<_>>()
                                .join(",")
                        ),
                    ));
                }
            }
            self.expect(&TkToken::RBracket, "`]`")?;
            self.expect(&TkToken::Equals, "`=`")?;
            let rhs = self.expr(true)?;
            self.expect_newline()?;
            stmts.push(Stmt { array, rhs });
        }
        if stmts.len() != self.arrays.len() {
            let missing = self
                .arrays
                .iter()
                .enumerate()
                .find(|(i, _)| !stmts.iter().any(|s| s.array == *i))
                .map(|(_, a)| a.name.clone())
                .unwrap_or_default();
            return Err(self.err_here(format!("array `{missing}` is never written")));
        }

        if self.deps.is_empty() {
            return Err(self.err_here(
                "kernel has no dependences: every statement must read at least one array",
            ));
        }
        if self.deps_declared {
            if let Some(i) = self.deps_used.iter().position(|&u| !u) {
                return Err(TkError::new(
                    self.deps_span.0,
                    self.deps_span.1,
                    format!(
                        "declared dependence ({}) is never read",
                        join(&self.deps[i])
                    ),
                ));
            }
        }

        // Skew validation needs the final dependence list.
        if let Some(rows) = &skew {
            let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
            let t = IMat::from_rows(&refs);
            if t.det().abs() != 1 {
                return Err(TkError::new(
                    skew_span.0,
                    skew_span.1,
                    "skew matrix must be unimodular (|det| = 1)",
                ));
            }
            for d in &self.deps {
                let sd = t.mul_vec(d);
                if !lex_positive(&sd) {
                    return Err(TkError::new(
                        skew_span.0,
                        skew_span.1,
                        format!(
                            "skew maps dependence ({}) to ({}) which is not \
                             lexicographically positive",
                            join(d),
                            join(&sd)
                        ),
                    ));
                }
            }
        }

        Ok(KernelProgram {
            name,
            params: std::mem::take(&mut self.params),
            loops: std::mem::take(&mut self.loops),
            skew,
            deps_declared: self.deps_declared,
            deps: std::mem::take(&mut self.deps),
            arrays: std::mem::take(&mut self.arrays),
            lets: std::mem::take(&mut self.lets),
            stmts,
        })
    }

    /// `affine` or `max(...)`/`min(...)` (which one is legal depends on the
    /// bound side).
    fn bound_list(&mut self, combiner: TkKeyword) -> Result<Vec<AffForm>, TkError> {
        let other = if combiner == TkKeyword::Max {
            TkKeyword::Min
        } else {
            TkKeyword::Max
        };
        if self.peek().token == TkToken::Keyword(other) {
            let side = if combiner == TkKeyword::Max {
                "lower"
            } else {
                "upper"
            };
            return Err(self.err_here(format!(
                "`{}` is not allowed in {side} bounds (use `{}`)",
                other.as_str(),
                combiner.as_str()
            )));
        }
        if self.peek().token == TkToken::Keyword(combiner) {
            self.next();
            self.expect(&TkToken::LParen, "`(`")?;
            let mut forms = vec![self.affine()?];
            while self.peek().token == TkToken::Comma {
                self.next();
                forms.push(self.affine()?);
            }
            self.expect(&TkToken::RParen, "`)`")?;
            Ok(forms)
        } else {
            Ok(vec![self.affine()?])
        }
    }

    // -- affine expressions (bounds, mod arguments, read indices) ----------

    fn affine(&mut self) -> Result<AffForm, TkError> {
        let dim = self.loops.len().max(1);
        let mut acc = self.affine_term(dim)?;
        loop {
            match self.peek().token {
                TkToken::Plus => {
                    self.next();
                    acc = acc.add(&self.affine_term(dim)?);
                }
                TkToken::Minus => {
                    self.next();
                    acc = acc.sub(&self.affine_term(dim)?);
                }
                _ => return Ok(acc),
            }
        }
    }

    fn affine_term(&mut self, dim: usize) -> Result<AffForm, TkError> {
        let mut acc = self.affine_factor(dim)?;
        while self.peek().token == TkToken::Star {
            let sp = self.peek().clone();
            self.next();
            let rhs = self.affine_factor(dim)?;
            let lconst = acc.coeffs.iter().all(|&c| c == 0);
            let rconst = rhs.coeffs.iter().all(|&c| c == 0);
            if lconst {
                acc = rhs.scale(acc.constant);
            } else if rconst {
                acc = acc.scale(rhs.constant);
            } else {
                return Err(self.err_at(&sp, "products of loop variables are not affine"));
            }
        }
        Ok(acc)
    }

    fn affine_factor(&mut self, dim: usize) -> Result<AffForm, TkError> {
        let sp = self.peek().clone();
        match &sp.token {
            TkToken::Minus => {
                self.next();
                Ok(self.affine_factor(dim)?.scale(-1))
            }
            TkToken::Int(v) => {
                let v = *v;
                self.next();
                Ok(AffForm::constant(dim, v))
            }
            TkToken::Ident(name) => {
                let name = name.clone();
                self.next();
                if let Some(k) = self.loop_index(&name) {
                    Ok(AffForm::var(dim, k))
                } else if let Some(v) = self.param_value(&name) {
                    Ok(AffForm::constant(dim, v))
                } else {
                    Err(self.err_at(
                        &sp,
                        format!(
                            "unknown identifier `{name}` in affine expression \
                             (only parameters and outer loop variables are in scope)"
                        ),
                    ))
                }
            }
            TkToken::LParen => {
                self.next();
                let a = self.affine()?;
                self.expect(&TkToken::RParen, "`)`")?;
                Ok(a)
            }
            TkToken::Float(_) => Err(self.err_at(
                &sp,
                "float literals are not allowed in integer affine expressions",
            )),
            other => Err(self.err_at(
                &sp,
                format!("expected an affine expression, found `{other}`"),
            )),
        }
    }

    // -- full expressions --------------------------------------------------

    fn expr(&mut self, allow_reads: bool) -> Result<TkExpr, TkError> {
        let mut acc = self.term(allow_reads)?;
        loop {
            match self.peek().token {
                TkToken::Plus => {
                    self.next();
                    acc = TkExpr::Add(Box::new(acc), Box::new(self.term(allow_reads)?));
                }
                TkToken::Minus => {
                    self.next();
                    acc = TkExpr::Sub(Box::new(acc), Box::new(self.term(allow_reads)?));
                }
                _ => return Ok(acc),
            }
        }
    }

    fn term(&mut self, allow_reads: bool) -> Result<TkExpr, TkError> {
        let mut acc = self.factor(allow_reads)?;
        loop {
            match self.peek().token {
                TkToken::Star => {
                    self.next();
                    acc = TkExpr::Mul(Box::new(acc), Box::new(self.factor(allow_reads)?));
                }
                TkToken::Slash => {
                    self.next();
                    acc = TkExpr::Div(Box::new(acc), Box::new(self.factor(allow_reads)?));
                }
                _ => return Ok(acc),
            }
        }
    }

    fn factor(&mut self, allow_reads: bool) -> Result<TkExpr, TkError> {
        let sp = self.peek().clone();
        match &sp.token {
            TkToken::Int(v) => {
                let v = *v;
                self.next();
                Ok(TkExpr::Num(v as f64))
            }
            TkToken::Float(v) => {
                let v = *v;
                self.next();
                Ok(TkExpr::Num(v))
            }
            TkToken::Minus => {
                self.next();
                Ok(TkExpr::Neg(Box::new(self.factor(allow_reads)?)))
            }
            TkToken::LParen => {
                self.next();
                let e = self.expr(allow_reads)?;
                self.expect(&TkToken::RParen, "`)`")?;
                Ok(e)
            }
            TkToken::Keyword(TkKeyword::Bnd) => {
                self.next();
                self.expect(&TkToken::LParen, "`(`")?;
                self.expect(&TkToken::RParen, "`)` (bnd takes no arguments)")?;
                Ok(TkExpr::Bnd)
            }
            TkToken::Keyword(TkKeyword::Mod) => {
                self.next();
                self.expect(&TkToken::LParen, "`(`")?;
                let mut aff = self.affine()?;
                aff.coeffs.resize(self.loops.len(), 0);
                self.expect(&TkToken::Comma, "`,`")?;
                let msp = self.peek().clone();
                let m = self.int("modulus")?;
                if m <= 0 {
                    return Err(self.err_at(&msp, "modulus must be a positive integer"));
                }
                self.expect(&TkToken::RParen, "`)`")?;
                Ok(TkExpr::Mod(aff, m))
            }
            TkToken::Ident(name) => {
                let name = name.clone();
                self.next();
                if self.peek().token == TkToken::LBracket {
                    let comp = match self.arrays.iter().position(|a| a.name == name) {
                        Some(i) => i,
                        None => return Err(self.err_at(&sp, format!("unknown array `{name}`"))),
                    };
                    if !allow_reads {
                        return Err(self.err_at(
                            &sp,
                            "array reads are not allowed in array initial expressions",
                        ));
                    }
                    let dep = self.read_offset(&name, &sp)?;
                    Ok(TkExpr::Read { dep, comp })
                } else if let Some(k) = self.loop_index(&name) {
                    Ok(TkExpr::Coord(k))
                } else if let Some(i) = self.lets.iter().position(|(l, _)| l == &name) {
                    Ok(TkExpr::LetRef(i))
                } else if let Some(v) = self.param_value(&name) {
                    Ok(TkExpr::Num(v as f64))
                } else if self.arrays.iter().any(|a| a.name == name) {
                    Err(self.err_at(
                        &sp,
                        format!("array `{name}` must be read with an index list `{name}[…]`"),
                    ))
                } else {
                    Err(self.err_at(&sp, format!("unknown identifier `{name}`")))
                }
            }
            other => Err(self.err_at(&sp, format!("expected an expression, found `{other}`"))),
        }
    }

    /// Parse `[i1, …, in]` after an array name, enforce uniformity
    /// (`index_k = var_k + constant`), and resolve the offset vector to a
    /// dependence-column index.
    fn read_offset(&mut self, array: &str, at: &TkSpanned) -> Result<usize, TkError> {
        let dim = self.loops.len();
        self.expect(&TkToken::LBracket, "`[`")?;
        let mut d = vec![0i64; dim];
        for (k, dk) in d.iter_mut().enumerate() {
            if k > 0 {
                self.expect(&TkToken::Comma, "`,`")?;
            }
            let isp = self.peek().clone();
            let mut aff = self.affine()?;
            aff.coeffs.resize(dim, 0);
            let uniform = (0..dim).all(|i| aff.coeffs[i] == i64::from(i == k));
            if !uniform {
                return Err(self.err_at(
                    &isp,
                    format!(
                        "non-uniform access: index {} of `{array}` must be \
                         `{} + constant`",
                        k + 1,
                        self.loops[k].var
                    ),
                ));
            }
            *dk = -aff.constant;
        }
        self.expect(&TkToken::RBracket, "`]`")?;
        if d.iter().all(|&v| v == 0) {
            return Err(self.err_at(
                at,
                format!("`{array}` reads the point being written (offset is zero)"),
            ));
        }
        if !lex_positive(&d) {
            return Err(self.err_at(
                at,
                format!(
                    "dependence offset ({}) is not lexicographically positive \
                     — this read creates a negative-lag cycle",
                    join(&d)
                ),
            ));
        }
        if let Some(i) = self.deps.iter().position(|c| c == &d) {
            if self.deps_declared {
                self.deps_used[i] = true;
            }
            Ok(i)
        } else if self.deps_declared {
            Err(self.err_at(
                at,
                format!(
                    "access offset ({}) is not in the declared `deps` list",
                    join(&d)
                ),
            ))
        } else {
            self.deps.push(d);
            Ok(self.deps.len() - 1)
        }
    }
}

fn lex_positive(d: &[i64]) -> bool {
    for &v in d {
        if v > 0 {
            return true;
        }
        if v < 0 {
            return false;
        }
    }
    false
}

fn join(v: &[i64]) -> String {
    v.iter()
        .map(|x| x.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

#[cfg(test)]
mod tests {
    use super::*;

    const HEAT: &str = "\
kernel heat
param T = 4
param N = 8
iter t = 1 to T
iter i = 1 to N
skew = [1,0; 1,1]
array A = bnd()
A[t,i] = A[t-1,i] + 0.25*(A[t-1,i-1] - 2*A[t-1,i] + A[t-1,i+1])
";

    #[test]
    fn parses_heat_and_collects_deps_in_first_occurrence_order() {
        let p = parse_kernel(HEAT).unwrap();
        assert_eq!(p.name, "heat");
        assert_eq!(p.dim(), 2);
        assert_eq!(p.width(), 1);
        assert_eq!(
            p.deps,
            vec![vec![1, 0], vec![1, 1], vec![1, -1]],
            "first occurrence order"
        );
        assert!(!p.deps_declared);
    }

    #[test]
    fn declared_deps_pin_column_order() {
        let src = "\
kernel k
iter t = 1 to 3
iter i = 1 to 3
deps = (1,1), (1,0)
array A = 0.0
A[t,i] = A[t-1,i] + A[t-1,i-1]
";
        let p = parse_kernel(src).unwrap();
        assert_eq!(p.deps, vec![vec![1, 1], vec![1, 0]]);
        assert!(p.deps_declared);
        // The statement's first read (1,0) resolves to column 1.
        match &p.stmts[0].rhs {
            TkExpr::Add(a, _) => assert_eq!(**a, TkExpr::Read { dep: 1, comp: 0 }),
            other => panic!("unexpected rhs {other:?}"),
        }
    }

    #[test]
    fn non_uniform_access_is_located() {
        let src = "\
kernel k
iter t = 1 to 3
iter i = 1 to 3
array A = 0.0
A[t,i] = A[t-1,2*i]
";
        let e = parse_kernel(src).unwrap_err();
        assert_eq!((e.line, e.col), (5, 16));
        assert!(e.message.contains("non-uniform access"), "{e}");
    }

    #[test]
    fn negative_lag_cycle_is_rejected() {
        let src = "\
kernel k
iter t = 1 to 3
iter i = 1 to 3
array A = 0.0
A[t,i] = A[t,i+1]
";
        let e = parse_kernel(src).unwrap_err();
        assert!(e.message.contains("negative-lag cycle"), "{e}");
        assert_eq!(e.line, 5);
    }

    #[test]
    fn unbound_index_is_rejected() {
        let src = "\
kernel k
iter t = 1 to 3
array A = 0.0
A[t] = A[s-1]
";
        let e = parse_kernel(src).unwrap_err();
        assert!(e.message.contains("unknown identifier `s`"), "{e}");
    }

    #[test]
    fn lets_params_and_mod_resolve() {
        let src = "\
kernel k
param W = 3
iter t = 1 to 4
iter i = 1 to 4
array A = 2.0 + bnd()
let c = 0.1 + mod(13*t + 7*i, 17)*0.01
A[t,i] = A[t-1,i]*c + W
";
        let p = parse_kernel(src).unwrap();
        assert_eq!(p.lets.len(), 1);
        match &p.lets[0].1 {
            TkExpr::Add(_, b) => match &**b {
                TkExpr::Mul(m, _) => {
                    assert_eq!(
                        **m,
                        TkExpr::Mod(
                            AffForm {
                                coeffs: vec![13, 7],
                                constant: 0
                            },
                            17
                        )
                    );
                }
                other => panic!("{other:?}"),
            },
            other => panic!("{other:?}"),
        }
    }
}
