//! # The `.tk` kernel DSL
//!
//! A tiny textual language for *arbitrary* uniform-dependence stencils —
//! the general input class of the paper's program model (§2.1), not just
//! the six built-in workloads. A kernel declares iteration bounds, written
//! arrays with deterministic initial (boundary) expressions, optional
//! skewing and an optional pinned dependence order, and one update
//! statement per array:
//!
//! ```text
//! # 1-D heat equation, skewed for rectangular tiling.
//! kernel heat
//! param T = 8
//! param N = 40
//! iter t = 1 to T
//! iter i = 1 to N
//! skew = [1,0; 1,1]
//! array A = bnd()
//! A[t,i] = A[t-1,i] + 0.25*(A[t-1,i-1] - 2*A[t-1,i] + A[t-1,i+1])
//! ```
//!
//! Every array read at a constant offset becomes a column of the dependence
//! matrix `D`; non-uniform accesses (`A[2*t,i]`, `A[t,s]`) are rejected with
//! source-located errors ([`TkError`] renders `file:line:col` plus a caret
//! snippet). Lowering produces a standard
//! [`Algorithm`](tilecc_loopnest::Algorithm) whose generated
//! [`MultiKernel`](tilecc_loopnest::MultiKernel) evaluates a flat
//! instruction tape; its `compute_run` batch entry is bitwise identical to
//! the per-point path, so DSL kernels run unchanged on every backend and
//! strategy. See `docs/kernel-dsl.md` for the full language reference.

pub mod ast;
pub mod error;
pub mod lex;
pub mod lower;
pub mod parse;

pub use ast::{AffForm, ArrayDecl, KernelProgram, Stmt, TkExpr, TkLoop};
pub use error::TkError;
pub use lower::{compile_kernel, lower_kernel, TkKernel};
pub use parse::parse_kernel;
