//! Recursive-descent parser for the loop-nest language.
//!
//! Grammar (lines separated by newlines, `#` comments):
//!
//! ```text
//! program   := { param | skew } loop+ statement [ boundary ]
//! param     := "param" IDENT "=" INT
//! skew      := "skew" "=" "[" row { ";" row } "]"        row := INT {"," INT}
//! loop      := "for" IDENT "=" bound "to" bound [ "do" ]
//! bound     := affine | ("max"|"min") "(" affine { "," affine } ")"
//! affine    := term { ("+"|"-") term }
//! term      := [INT "*"] (IDENT | INT)                    (params resolved)
//! statement := IDENT "[" indices "]" "=" expr
//! boundary  := "boundary" "=" expr
//! expr      := arithmetic over numbers, loop vars, params and
//!              IDENT "[" indices "]" reads with uniform offsets
//! ```

use crate::ast::{AffineExpr, Expr, Loop, Program};
use crate::lexer::{tokenize, Keyword, ParseError, Spanned, Token};
use std::collections::HashMap;

pub struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    params: HashMap<String, i64>,
    loop_vars: Vec<String>,
}

type PResult<T> = Result<T, ParseError>;

impl Parser {
    fn err<T>(&self, message: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            line: self.peek().line,
            message: message.into(),
        })
    }

    fn peek(&self) -> &Spanned {
        &self.toks[self.pos]
    }

    fn next(&mut self) -> Spanned {
        let t = self.toks[self.pos].clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, expected: &Token) -> PResult<()> {
        let t = self.next();
        if &t.token == expected {
            Ok(())
        } else {
            Err(ParseError {
                line: t.line,
                message: format!("expected `{expected}`, found `{}`", t.token),
            })
        }
    }

    fn skip_newlines(&mut self) {
        while self.peek().token == Token::Newline {
            self.next();
        }
    }

    fn eat_line_end(&mut self) -> PResult<()> {
        match self.peek().token {
            Token::Newline => {
                self.next();
                Ok(())
            }
            Token::Eof => Ok(()),
            _ => self.err(format!(
                "expected end of line, found `{}`",
                self.peek().token
            )),
        }
    }

    // -- affine bound expressions ------------------------------------------

    /// Parse `[INT *] (IDENT | INT)` and fold parameters.
    fn affine_term(&mut self, dim: usize) -> PResult<AffineExpr> {
        let t = self.next();
        match t.token {
            Token::Int(v) => {
                if self.peek().token == Token::Star {
                    self.next();
                    let inner = self.affine_atom(dim)?;
                    Ok(inner.scale(v))
                } else {
                    Ok(AffineExpr::constant(dim, v))
                }
            }
            Token::Ident(name) => self.resolve_name(dim, &name, t.line),
            other => Err(ParseError {
                line: t.line,
                message: format!("expected integer or identifier in bound, found `{other}`"),
            }),
        }
    }

    fn affine_atom(&mut self, dim: usize) -> PResult<AffineExpr> {
        let t = self.next();
        match t.token {
            Token::Int(v) => Ok(AffineExpr::constant(dim, v)),
            Token::Ident(name) => self.resolve_name(dim, &name, t.line),
            other => Err(ParseError {
                line: t.line,
                message: format!("expected integer or identifier, found `{other}`"),
            }),
        }
    }

    fn resolve_name(&self, dim: usize, name: &str, line: usize) -> PResult<AffineExpr> {
        if let Some(k) = self.loop_vars.iter().position(|v| v == name) {
            Ok(AffineExpr::var(dim, k))
        } else if let Some(&v) = self.params.get(name) {
            Ok(AffineExpr::constant(dim, v))
        } else {
            Err(ParseError {
                line,
                message: format!("unknown name `{name}` (not a loop variable or param)"),
            })
        }
    }

    fn affine(&mut self, dim: usize) -> PResult<AffineExpr> {
        let negate = if self.peek().token == Token::Minus {
            self.next();
            true
        } else {
            false
        };
        let mut acc = self.affine_term(dim)?;
        if negate {
            acc = acc.scale(-1);
        }
        loop {
            match self.peek().token {
                Token::Plus => {
                    self.next();
                    let rhs = self.affine_term(dim)?;
                    acc = acc.add(&rhs);
                }
                Token::Minus => {
                    self.next();
                    let rhs = self.affine_term(dim)?;
                    acc = acc.sub(&rhs);
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    /// `bound := affine | ("max"|"min") "(" affine {"," affine} ")"`.
    fn bound(&mut self, dim: usize, lower: bool) -> PResult<Vec<AffineExpr>> {
        match self.peek().token.clone() {
            Token::Keyword(Keyword::Max) | Token::Keyword(Keyword::Min) => {
                let kw = self.next();
                let is_max = kw.token == Token::Keyword(Keyword::Max);
                if is_max != lower {
                    return Err(ParseError {
                        line: kw.line,
                        message: if lower {
                            "lower bounds combine with max(…)".into()
                        } else {
                            "upper bounds combine with min(…)".into()
                        },
                    });
                }
                self.eat(&Token::LParen)?;
                let mut out = vec![self.affine(dim)?];
                while self.peek().token == Token::Comma {
                    self.next();
                    out.push(self.affine(dim)?);
                }
                self.eat(&Token::RParen)?;
                Ok(out)
            }
            _ => Ok(vec![self.affine(dim)?]),
        }
    }

    // -- body expressions ---------------------------------------------------

    /// Parse the index list of an array reference and return the dependence
    /// vector `d` such that the reference is `A[j − d]`.
    fn reference_dep(&mut self, array: &str, line: usize) -> PResult<Vec<i64>> {
        let dim = self.loop_vars.len();
        self.eat(&Token::LBracket)?;
        let mut d = Vec::with_capacity(dim);
        for k in 0..dim {
            if k > 0 {
                self.eat(&Token::Comma)?;
            }
            let e = self.affine(dim)?;
            match e.as_shifted_var(k) {
                Some(shift) => d.push(-shift),
                None => {
                    return Err(ParseError {
                        line,
                        message: format!(
                            "reference to `{array}` index {k} must be `{} ± const` \
                             (uniform dependencies)",
                            self.loop_vars[k]
                        ),
                    })
                }
            }
        }
        self.eat(&Token::RBracket)?;
        Ok(d)
    }

    fn expr(
        &mut self,
        array: &str,
        deps: &mut Vec<Vec<i64>>,
        is_write_ref_ok: bool,
    ) -> PResult<Expr> {
        let mut acc = self.expr_mul(array, deps, is_write_ref_ok)?;
        loop {
            match self.peek().token {
                Token::Plus => {
                    self.next();
                    let rhs = self.expr_mul(array, deps, is_write_ref_ok)?;
                    acc = Expr::Add(Box::new(acc), Box::new(rhs));
                }
                Token::Minus => {
                    self.next();
                    let rhs = self.expr_mul(array, deps, is_write_ref_ok)?;
                    acc = Expr::Sub(Box::new(acc), Box::new(rhs));
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    fn expr_mul(&mut self, array: &str, deps: &mut Vec<Vec<i64>>, wr: bool) -> PResult<Expr> {
        let mut acc = self.expr_atom(array, deps, wr)?;
        loop {
            match self.peek().token {
                Token::Star => {
                    self.next();
                    let rhs = self.expr_atom(array, deps, wr)?;
                    acc = Expr::Mul(Box::new(acc), Box::new(rhs));
                }
                Token::Slash => {
                    self.next();
                    let rhs = self.expr_atom(array, deps, wr)?;
                    acc = Expr::Div(Box::new(acc), Box::new(rhs));
                }
                _ => break,
            }
        }
        Ok(acc)
    }

    fn expr_atom(&mut self, array: &str, deps: &mut Vec<Vec<i64>>, wr: bool) -> PResult<Expr> {
        let t = self.next();
        match t.token {
            Token::Int(v) => Ok(Expr::Num(v as f64)),
            Token::Float(v) => Ok(Expr::Num(v)),
            Token::Minus => {
                let inner = self.expr_atom(array, deps, wr)?;
                Ok(Expr::Neg(Box::new(inner)))
            }
            Token::LParen => {
                let inner = self.expr(array, deps, wr)?;
                self.eat(&Token::RParen)?;
                Ok(inner)
            }
            Token::Ident(name) => {
                if name == array {
                    let d = self.reference_dep(array, t.line)?;
                    if d.iter().all(|&x| x == 0) {
                        return Err(ParseError {
                            line: t.line,
                            message: "a statement may not read the cell it writes".into(),
                        });
                    }
                    if !tilecc_linalg::vecops::is_lex_positive(&d) {
                        return Err(ParseError {
                            line: t.line,
                            message: format!("dependence {d:?} is not lexicographically positive"),
                        });
                    }
                    let idx = match deps.iter().position(|x| x == &d) {
                        Some(i) => i,
                        None => {
                            deps.push(d);
                            deps.len() - 1
                        }
                    };
                    Ok(Expr::Read(idx))
                } else if let Some(k) = self.loop_vars.iter().position(|v| v == &name) {
                    Ok(Expr::Coord(k))
                } else if let Some(&v) = self.params.get(&name) {
                    Ok(Expr::Num(v as f64))
                } else {
                    Err(ParseError {
                        line: t.line,
                        message: format!("unknown name `{name}` in expression"),
                    })
                }
            }
            other => Err(ParseError {
                line: t.line,
                message: format!("unexpected `{other}` in expression"),
            }),
        }
    }

    // -- top level ----------------------------------------------------------

    fn parse_program(&mut self) -> PResult<Program> {
        let mut skew: Option<Vec<Vec<i64>>> = None;

        // Header: params and skew in any order.
        loop {
            self.skip_newlines();
            match self.peek().token.clone() {
                Token::Keyword(Keyword::Param) => {
                    self.next();
                    let t = self.next();
                    let Token::Ident(name) = t.token else {
                        return Err(ParseError {
                            line: t.line,
                            message: "expected parameter name".into(),
                        });
                    };
                    self.eat(&Token::Equals)?;
                    let v = self.next();
                    let value = match v.token {
                        Token::Int(x) => x,
                        Token::Minus => match self.next().token {
                            Token::Int(x) => -x,
                            _ => {
                                return Err(ParseError {
                                    line: v.line,
                                    message: "expected integer".into(),
                                })
                            }
                        },
                        _ => {
                            return Err(ParseError {
                                line: v.line,
                                message: "expected integer".into(),
                            })
                        }
                    };
                    self.params.insert(name, value);
                    self.eat_line_end()?;
                }
                Token::Keyword(Keyword::Skew) => {
                    self.next();
                    self.eat(&Token::Equals)?;
                    self.eat(&Token::LBracket)?;
                    let mut rows = vec![];
                    loop {
                        let mut row = vec![self.int_lit()?];
                        while self.peek().token == Token::Comma {
                            self.next();
                            row.push(self.int_lit()?);
                        }
                        rows.push(row);
                        match self.next() {
                            Spanned {
                                token: Token::Semicolon,
                                ..
                            } => continue,
                            Spanned {
                                token: Token::RBracket,
                                ..
                            } => break,
                            Spanned { line, token } => {
                                return Err(ParseError {
                                    line,
                                    message: format!("expected `;` or `]`, found `{token}`"),
                                })
                            }
                        }
                    }
                    skew = Some(rows);
                    self.eat_line_end()?;
                }
                _ => break,
            }
        }

        // Loop nest.
        let mut loops: Vec<Loop> = vec![];
        self.skip_newlines();
        while self.peek().token == Token::Keyword(Keyword::For) {
            self.next();
            let t = self.next();
            let Token::Ident(var) = t.token else {
                return Err(ParseError {
                    line: t.line,
                    message: "expected loop variable".into(),
                });
            };
            if self.loop_vars.contains(&var) {
                return Err(ParseError {
                    line: t.line,
                    message: format!("duplicate loop variable `{var}`"),
                });
            }
            self.loop_vars.push(var.clone());
            loops.push(Loop {
                var: var.clone(),
                lowers: vec![],
                uppers: vec![],
            });
            self.eat(&Token::Equals)?;
            let depth = self.loop_vars.len(); // bounds parsed at current depth
            let lowers = self.bound(depth, true)?;
            self.eat(&Token::Keyword(Keyword::To))?;
            let uppers = self.bound(depth, false)?;
            // Bounds may only reference *outer* variables (paper §2.1).
            for e in lowers.iter().chain(&uppers) {
                if e.coeffs[depth - 1] != 0 {
                    return Err(ParseError {
                        line: t.line,
                        message: format!("bounds of `{var}` may not reference `{var}` itself"),
                    });
                }
            }
            let lp = loops.last_mut().expect("just pushed");
            lp.lowers = lowers;
            lp.uppers = uppers;
            self.eat_line_end()?;
            self.skip_newlines();
        }
        if loops.is_empty() {
            return self.err("program has no FOR loops");
        }
        let dim = loops.len();
        // Re-pad bound expressions to the full nest depth.
        for lp in &mut loops {
            for e in lp.lowers.iter_mut().chain(lp.uppers.iter_mut()) {
                e.coeffs.resize(dim, 0);
            }
        }

        // Statement: `A[vars] = expr`.
        self.skip_newlines();
        let t = self.next();
        let Token::Ident(array) = t.token else {
            return Err(ParseError {
                line: t.line,
                message: "expected the array statement".into(),
            });
        };
        // The write reference must be the identity `A[j_1, …, j_n]`.
        self.eat(&Token::LBracket)?;
        for k in 0..dim {
            if k > 0 {
                self.eat(&Token::Comma)?;
            }
            let tok = self.next();
            match tok.token {
                Token::Ident(ref v) if *v == self.loop_vars[k] => {}
                other => {
                    return Err(ParseError {
                        line: tok.line,
                        message: format!(
                            "write reference index {k} must be `{}`, found `{other}`",
                            self.loop_vars[k]
                        ),
                    })
                }
            }
        }
        self.eat(&Token::RBracket)?;
        self.eat(&Token::Equals)?;
        let mut deps: Vec<Vec<i64>> = vec![];
        let body = self.expr(&array, &mut deps, false)?;
        self.eat_line_end()?;

        // Optional boundary.
        self.skip_newlines();
        let boundary = if self.peek().token == Token::Keyword(Keyword::Boundary) {
            self.next();
            self.eat(&Token::Equals)?;
            // Boundary may use coordinates and constants, but no reads.
            let mut no_deps = vec![];
            let e = self.expr("\u{0}no-array\u{0}", &mut no_deps, false)?;
            self.eat_line_end()?;
            e
        } else {
            Expr::Num(0.0)
        };

        self.skip_newlines();
        if self.peek().token != Token::Eof {
            return self.err(format!("unexpected trailing `{}`", self.peek().token));
        }
        if deps.is_empty() {
            return self.err("statement has no array reads: nothing to parallelize");
        }
        if let Some(rows) = &skew {
            if rows.len() != dim || rows.iter().any(|r| r.len() != dim) {
                return self.err(format!("skew matrix must be {dim}×{dim}"));
            }
        }
        Ok(Program {
            array,
            loops,
            deps,
            body,
            boundary,
            skew,
        })
    }

    fn int_lit(&mut self) -> PResult<i64> {
        let t = self.next();
        match t.token {
            Token::Int(v) => Ok(v),
            Token::Minus => match self.next().token {
                Token::Int(v) => Ok(-v),
                other => Err(ParseError {
                    line: t.line,
                    message: format!("expected integer, found `{other}`"),
                }),
            },
            other => Err(ParseError {
                line: t.line,
                message: format!("expected integer, found `{other}`"),
            }),
        }
    }
}

/// Parse a program source into the AST.
pub fn parse(input: &str) -> PResult<Program> {
    let toks = tokenize(input)?;
    let mut p = Parser {
        toks,
        pos: 0,
        params: HashMap::new(),
        loop_vars: vec![],
    };
    p.parse_program()
}

#[cfg(test)]
mod tests {
    use super::*;

    const JACOBI: &str = r#"
# Jacobi over a 3-D space.
param T = 4
param N = 6
for t = 1 to T
for i = 1 to N
for j = 1 to N
A[t,i,j] = 0.25*(A[t-1,i-1,j] + A[t-1,i,j-1] + A[t-1,i+1,j] + A[t-1,i,j+1])
boundary = 1.5
"#;

    #[test]
    fn parses_jacobi() {
        let p = parse(JACOBI).unwrap();
        assert_eq!(p.dim(), 3);
        assert_eq!(p.array, "A");
        assert_eq!(
            p.deps,
            vec![vec![1, 1, 0], vec![1, 0, 1], vec![1, -1, 0], vec![1, 0, -1]]
        );
        assert_eq!(p.boundary, Expr::Num(1.5));
        assert!(p.skew.is_none());
        // Bounds resolved: t in [1, 4].
        assert_eq!(p.loops[0].lowers[0].eval(&[0, 0, 0]), 1);
        assert_eq!(p.loops[0].uppers[0].eval(&[0, 0, 0]), 4);
    }

    #[test]
    fn parses_affine_bounds_with_max_min() {
        let src = r#"
param N = 10
for t = 1 to N
for i = max(1, t - 2) to min(N, t + 2)
A[t,i] = A[t-1,i] + 1
"#;
        let p = parse(src).unwrap();
        assert_eq!(p.loops[1].lowers.len(), 2);
        assert_eq!(p.loops[1].uppers.len(), 2);
        // lower bound 2 is t − 2.
        assert_eq!(p.loops[1].lowers[1].eval(&[7, 0]), 5);
    }

    #[test]
    fn parses_skew_matrix() {
        let src = r#"
skew = [1,0,0; 1,1,0; 2,0,1]
param M = 3
for t = 1 to M
for i = 1 to M
for j = 1 to M
A[t,i,j] = A[t-1,i,j] + A[t,i-1,j] + A[t,i,j-1]
"#;
        let p = parse(src).unwrap();
        assert_eq!(
            p.skew,
            Some(vec![vec![1, 0, 0], vec![1, 1, 0], vec![2, 0, 1]])
        );
    }

    #[test]
    fn duplicate_reads_share_a_dependence_column() {
        let src = r#"
for t = 1 to 3
for i = 1 to 3
A[t,i] = A[t-1,i] * A[t-1,i] + A[t-1,i-1]
"#;
        let p = parse(src).unwrap();
        assert_eq!(p.deps.len(), 2);
    }

    #[test]
    fn rejects_non_uniform_reference() {
        let src = r#"
for t = 1 to 3
for i = 1 to 3
A[t,i] = A[t-1,2*i]
"#;
        let e = parse(src).unwrap_err();
        assert!(e.message.contains("uniform"), "{e}");
    }

    #[test]
    fn rejects_lex_negative_dependence() {
        let src = r#"
for t = 1 to 3
for i = 1 to 3
A[t,i] = A[t+1,i]
"#;
        let e = parse(src).unwrap_err();
        assert!(e.message.contains("lexicographically"), "{e}");
    }

    #[test]
    fn rejects_self_read() {
        let src = r#"
for t = 1 to 3
for i = 1 to 3
A[t,i] = A[t,i]
"#;
        assert!(parse(src).is_err());
    }

    #[test]
    fn rejects_wrong_write_reference() {
        let src = r#"
for t = 1 to 3
for i = 1 to 3
A[i,t] = A[t-1,i]
"#;
        assert!(parse(src).is_err());
    }

    #[test]
    fn rejects_unknown_identifier() {
        let src = r#"
for t = 1 to Q
A[t] = A[t-1]
"#;
        let e = parse(src).unwrap_err();
        assert!(e.message.contains("unknown name"), "{e}");
    }

    #[test]
    fn body_may_use_coordinates_and_params() {
        let src = r#"
param C = 7
for t = 1 to 3
for i = 1 to 3
A[t,i] = A[t-1,i] + 0.5*t + C
"#;
        let p = parse(src).unwrap();
        assert_eq!(p.body.eval(&[2, 1], &[1.0]), 1.0 + 0.5 * 2.0 + 7.0);
    }
}
