//! Tokenizer for the `tilecc` loop-nest language.
//!
//! The language mirrors the paper's program model (§2.1): parameters,
//! a perfect FOR nest with affine `max`/`min` bounds, one single-assignment
//! statement with uniform array references, and an optional boundary
//! expression and skewing matrix.

use std::fmt;

/// A lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Keyword: `param`, `for`, `to`, `skew`, `boundary`, `max`, `min`.
    Keyword(Keyword),
    /// Identifier (loop variable, parameter, or array name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    Plus,
    Minus,
    Star,
    Slash,
    Equals,
    Comma,
    Semicolon,
    LParen,
    RParen,
    LBracket,
    RBracket,
    /// End of one logical line.
    Newline,
    Eof,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Keyword {
    Param,
    For,
    To,
    Skew,
    Boundary,
    Max,
    Min,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Keyword(k) => write!(f, "{k:?}"),
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Plus => write!(f, "+"),
            Token::Minus => write!(f, "-"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Equals => write!(f, "="),
            Token::Comma => write!(f, ","),
            Token::Semicolon => write!(f, ";"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LBracket => write!(f, "["),
            Token::RBracket => write!(f, "]"),
            Token::Newline => write!(f, "<newline>"),
            Token::Eof => write!(f, "<eof>"),
        }
    }
}

/// A token with its source line (1-based) for error reporting.
#[derive(Clone, Debug, PartialEq)]
pub struct Spanned {
    pub token: Token,
    pub line: usize,
}

/// Lexing / parsing error.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError {
    pub line: usize,
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// Tokenize the whole input. `#` starts a comment until end of line; blank
/// lines are collapsed; every non-empty line ends with a `Newline` token.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    for (lineno, raw) in input.lines().enumerate() {
        let line = lineno + 1;
        let text = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let mut chars = text.char_indices().peekable();
        let mut emitted = false;
        while let Some(&(i, ch)) = chars.peek() {
            match ch {
                c if c.is_whitespace() => {
                    chars.next();
                }
                c if c.is_ascii_digit() => {
                    let mut end = i;
                    let mut is_float = false;
                    while let Some(&(j, c2)) = chars.peek() {
                        if c2.is_ascii_digit() {
                            end = j;
                            chars.next();
                        } else if c2 == '.'
                            && text[j + 1..]
                                .chars()
                                .next()
                                .is_some_and(|n| n.is_ascii_digit())
                        {
                            is_float = true;
                            end = j;
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let lit = &text[i..=end];
                    let token = if is_float {
                        Token::Float(lit.parse().map_err(|_| ParseError {
                            line,
                            message: format!("invalid float literal `{lit}`"),
                        })?)
                    } else {
                        Token::Int(lit.parse().map_err(|_| ParseError {
                            line,
                            message: format!("invalid integer literal `{lit}`"),
                        })?)
                    };
                    out.push(Spanned { token, line });
                    emitted = true;
                }
                c if c.is_ascii_alphabetic() || c == '_' => {
                    let mut end = i;
                    while let Some(&(j, c2)) = chars.peek() {
                        if c2.is_ascii_alphanumeric() || c2 == '_' {
                            end = j;
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let word = &text[i..=end];
                    let token = match word.to_ascii_lowercase().as_str() {
                        "param" => Some(Token::Keyword(Keyword::Param)),
                        "for" => Some(Token::Keyword(Keyword::For)),
                        "to" => Some(Token::Keyword(Keyword::To)),
                        "do" => None, // `do` is optional noise after a FOR
                        "skew" => Some(Token::Keyword(Keyword::Skew)),
                        "boundary" => Some(Token::Keyword(Keyword::Boundary)),
                        "max" => Some(Token::Keyword(Keyword::Max)),
                        "min" => Some(Token::Keyword(Keyword::Min)),
                        _ => Some(Token::Ident(word.to_string())),
                    };
                    if let Some(token) = token {
                        out.push(Spanned { token, line });
                        emitted = true;
                    }
                }
                _ => {
                    chars.next();
                    let token = match ch {
                        '+' => Token::Plus,
                        '-' => Token::Minus,
                        '*' => Token::Star,
                        '/' => Token::Slash,
                        '=' => Token::Equals,
                        ',' => Token::Comma,
                        ';' => Token::Semicolon,
                        '(' => Token::LParen,
                        ')' => Token::RParen,
                        '[' => Token::LBracket,
                        ']' => Token::RBracket,
                        other => {
                            return Err(ParseError {
                                line,
                                message: format!("unexpected character `{other}`"),
                            })
                        }
                    };
                    out.push(Spanned { token, line });
                    emitted = true;
                }
            }
        }
        if emitted {
            out.push(Spanned {
                token: Token::Newline,
                line,
            });
        }
    }
    let last = out.last().map_or(1, |s| s.line);
    out.push(Spanned {
        token: Token::Eof,
        line: last,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(input: &str) -> Vec<Token> {
        tokenize(input)
            .unwrap()
            .into_iter()
            .map(|s| s.token)
            .collect()
    }

    #[test]
    fn tokenizes_for_line() {
        assert_eq!(
            toks("for t = 1 to 10"),
            vec![
                Token::Keyword(Keyword::For),
                Token::Ident("t".into()),
                Token::Equals,
                Token::Int(1),
                Token::Keyword(Keyword::To),
                Token::Int(10),
                Token::Newline,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let t = toks("# a comment\n\nparam N = 5 # trailing\n");
        assert_eq!(
            t,
            vec![
                Token::Keyword(Keyword::Param),
                Token::Ident("N".into()),
                Token::Equals,
                Token::Int(5),
                Token::Newline,
                Token::Eof,
            ]
        );
    }

    #[test]
    fn floats_and_operators() {
        let t = toks("A[t,i] = 0.25*(A[t-1,i+1])");
        assert!(t.contains(&Token::Float(0.25)));
        assert!(t.contains(&Token::LBracket));
        assert!(t.contains(&Token::Star));
    }

    #[test]
    fn do_keyword_is_ignored() {
        let t = toks("for t = 1 to 3 do");
        assert!(!t.iter().any(|x| matches!(x, Token::Ident(s) if s == "do")));
    }

    #[test]
    fn bad_character_errors_with_line() {
        let e = tokenize("for t = 1 to 3\nA[t] = @").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains('@'));
    }

    #[test]
    fn keywords_case_insensitive() {
        let t = toks("FOR t = 1 TO 3");
        assert_eq!(t[0], Token::Keyword(Keyword::For));
        assert_eq!(t[4], Token::Keyword(Keyword::To));
    }
}
