//! # tilecc-frontend
//!
//! Textual frontend for the `tilecc` framework: parse loop nests written in
//! a notation mirroring the paper's program model (§2.1) into executable
//! [`Algorithm`](tilecc_loopnest::Algorithm) instances.
//!
//! ```text
//! # Jacobi (paper §4.2), with its skewing matrix.
//! param T = 50
//! param N = 100
//! skew = [1,0,0; 1,1,0; 1,0,1]
//! for t = 1 to T
//! for i = 1 to N
//! for j = 1 to N
//! A[t,i,j] = 0.25*(A[t-1,i-1,j] + A[t-1,i,j-1] + A[t-1,i+1,j] + A[t-1,i,j+1])
//! boundary = 1.0
//! ```
//!
//! [`compile`] parses, validates (perfect nest, affine `max`/`min` bounds,
//! single assignment, uniform lexicographically-positive dependencies,
//! identity write reference) and lowers into a `LoopNest` + interpreted
//! kernel, applying the skewing matrix if present.
//!
//! The crate also hosts the richer `.tk` **kernel DSL** (module [`tk`],
//! entry point [`compile_kernel`]): multiple arrays with per-array initial
//! expressions, `let` bindings, `bnd()`/`mod()` builtins, an optional
//! pinned dependence order, and source-located (`line:col` + caret) errors.
//! See `docs/kernel-dsl.md` for the language reference.

pub mod ast;
pub mod lexer;
pub mod lower;
pub mod parser;
pub mod tk;

pub use ast::{AffineExpr, Expr, Loop, Program};
pub use lexer::ParseError;
pub use lower::{compile, lower};
pub use parser::parse;
pub use tk::{compile_kernel, parse_kernel, KernelProgram, TkError};
