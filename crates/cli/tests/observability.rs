//! Acceptance tests for the observability layer (ISSUE 3): a fault-free SOR
//! run with `--trace-out` must yield a valid Chrome trace — monotone
//! non-overlapping events per (pid, lane), one pid per rank, all five rank
//! phase kinds — and a `RunReport` whose per-rank compute + wait + comm
//! split reproduces that rank's virtual makespan within tolerance.

use tilecc_cli::run_cli;
use tilecc_cluster::obs::json::{self, Json};

fn sor_nest() -> String {
    format!(
        "{}/../../examples/nests/sor.tcc",
        env!("CARGO_MANIFEST_DIR")
    )
}

/// Self-cleaning temp path.
struct TempFile(std::path::PathBuf);

impl TempFile {
    fn new(tag: &str) -> Self {
        let path = std::env::temp_dir().join(format!("tilecc-obs-{}-{tag}", std::process::id()));
        TempFile(path)
    }
    fn to_str(&self) -> &str {
        self.0.to_str().unwrap()
    }
}

impl Drop for TempFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.0);
    }
}

fn args(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

/// Run SOR observed (fault-free, verified) and return (trace, metrics) JSON.
fn observed_sor() -> (Json, Json) {
    let nest = sor_nest();
    let trace = TempFile::new("trace.json");
    let metrics = TempFile::new("metrics.json");
    let out = run_cli(&args(&[
        "run",
        &nest,
        "--rect",
        "4,10,10",
        "--map",
        "2",
        "--verify",
        "--trace-out",
        trace.to_str(),
        "--metrics-out",
        metrics.to_str(),
    ]))
    .expect("observed SOR run failed");
    assert!(out.contains("verified   : true"), "{out}");
    let t = json::parse(&std::fs::read_to_string(trace.to_str()).unwrap()).unwrap();
    let m = json::parse(&std::fs::read_to_string(metrics.to_str()).unwrap()).unwrap();
    (t, m)
}

fn complete_events(trace: &Json) -> Vec<&Json> {
    trace
        .get("traceEvents")
        .and_then(Json::as_arr)
        .expect("traceEvents array")
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("X"))
        .collect()
}

#[test]
fn chrome_trace_is_valid_and_complete() {
    let (trace, metrics) = observed_sor();
    let events = complete_events(&trace);
    assert!(!events.is_empty());

    let num_ranks = metrics.get("ranks").and_then(Json::as_arr).unwrap().len();
    assert!(num_ranks > 1, "SOR must distribute over several ranks");

    // One pid per rank (rank r is pid r+1) plus the driver on pid 0.
    let pids: std::collections::BTreeSet<u64> = events
        .iter()
        .map(|e| e.get("pid").and_then(Json::as_u64).unwrap())
        .collect();
    for rank in 0..num_ranks {
        assert!(
            pids.contains(&(rank as u64 + 1)),
            "rank {rank} (pid {}) missing from trace; pids = {pids:?}",
            rank + 1
        );
    }
    assert!(pids.contains(&0), "driver (pid 0) missing from trace");
    assert_eq!(pids.len(), num_ranks + 1, "unexpected extra pids: {pids:?}");

    // All five rank-side phase kinds appear.
    let cats: std::collections::BTreeSet<&str> = events
        .iter()
        .filter(|e| e.get("pid").and_then(Json::as_u64) != Some(0))
        .filter_map(|e| e.get("cat").and_then(Json::as_str))
        .collect();
    for phase in ["compute", "recv", "send", "pack", "unpack"] {
        assert!(
            cats.contains(phase),
            "phase `{phase}` missing; got {cats:?}"
        );
    }

    // Driver-side phases appear on pid 0.
    let driver_cats: std::collections::BTreeSet<&str> = events
        .iter()
        .filter(|e| e.get("pid").and_then(Json::as_u64) == Some(0))
        .filter_map(|e| e.get("cat").and_then(Json::as_str))
        .collect();
    for phase in ["lower", "plan", "compile-chain", "gather"] {
        assert!(
            driver_cats.contains(phase),
            "driver phase `{phase}` missing; got {driver_cats:?}"
        );
    }

    // Per-(pid, tid) lanes are monotone: sorted by ts, events never overlap.
    // Timestamps are exported with 3 decimals (µs), so allow that rounding.
    let mut lanes: std::collections::BTreeMap<(u64, u64), Vec<(f64, f64)>> = Default::default();
    for e in &events {
        let pid = e.get("pid").and_then(Json::as_u64).unwrap();
        let tid = e.get("tid").and_then(Json::as_u64).unwrap();
        let ts = e.get("ts").and_then(Json::as_f64).unwrap();
        let dur = e.get("dur").and_then(Json::as_f64).unwrap();
        assert!(dur >= 0.0, "negative duration in lane ({pid}, {tid})");
        lanes.entry((pid, tid)).or_default().push((ts, dur));
    }
    for ((pid, tid), mut evs) in lanes {
        evs.sort_by(|a, b| a.0.total_cmp(&b.0));
        for w in evs.windows(2) {
            let (ts0, dur0) = w[0];
            let (ts1, _) = w[1];
            assert!(
                ts1 >= ts0 + dur0 - 0.002,
                "lane ({pid}, {tid}) overlaps: [{ts0}, {}) then {ts1}",
                ts0 + dur0
            );
        }
    }

    // Every rank-side event carries its virtual interval in args.
    for e in &events {
        if e.get("pid").and_then(Json::as_u64) != Some(0) {
            let a = e.get("args").expect("args");
            assert!(a.get("virt_start_s").and_then(Json::as_f64).is_some());
            assert!(a.get("virt_end_s").and_then(Json::as_f64).is_some());
        }
    }
}

#[test]
fn run_report_partitions_every_rank_clock() {
    let (_, metrics) = observed_sor();
    assert_eq!(
        metrics.get("schema").and_then(Json::as_str),
        Some("tilecc-metrics-v1")
    );
    let makespan = metrics.get("makespan").and_then(Json::as_f64).unwrap();
    let ranks = metrics.get("ranks").and_then(Json::as_arr).unwrap();
    let mut max_local = 0.0f64;
    for r in ranks {
        let rank = r.get("rank").and_then(Json::as_u64).unwrap();
        let local = r.get("local_time").and_then(Json::as_f64).unwrap();
        let compute = r.get("compute").and_then(Json::as_f64).unwrap();
        let wait = r.get("wait").and_then(Json::as_f64).unwrap();
        let comm = r.get("comm").and_then(Json::as_f64).unwrap();
        // The three accumulators partition the rank's virtual clock exactly;
        // the tolerance covers the 9-decimal JSON serialization.
        let sum = compute + wait + comm;
        assert!(
            (sum - local).abs() <= 1e-8 + 1e-6 * local.abs(),
            "rank {rank}: compute {compute} + wait {wait} + comm {comm} = {sum} != local {local}"
        );
        max_local = max_local.max(local);

        // Fault-free: no reliability or fault activity.
        let c = |name: &str| {
            r.get("counters")
                .and_then(|c| c.get(name))
                .and_then(Json::as_u64)
        };
        assert_eq!(c("retransmits"), Some(0));
        assert_eq!(c("dups_suppressed"), Some(0));
        assert_eq!(c("fault_drops"), Some(0));
    }
    assert!(
        (makespan - max_local).abs() <= 1e-8,
        "makespan {makespan} != slowest rank {max_local}"
    );

    // Global conservation: sends == receives, bytes match.
    let total = |name: &str| -> u64 {
        ranks
            .iter()
            .filter_map(|r| {
                r.get("counters")
                    .and_then(|c| c.get(name))
                    .and_then(Json::as_u64)
            })
            .sum()
    };
    assert_eq!(total("messages_sent"), total("messages_received"));
    assert_eq!(total("bytes_sent"), total("bytes_received"));
    assert!(total("messages_sent") > 0, "SOR must communicate");
    assert_eq!(
        total("tiles"),
        total("interior_tiles") + total("boundary_tiles")
    );
    assert!(total("iterations") > 0);
}
