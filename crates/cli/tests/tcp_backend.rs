//! End-to-end tests for `tilecc run --backend tcp`: the driver spawns real
//! worker processes, and the summary it prints must agree with the
//! threaded backend line for line — including the bitwise `checksum` —
//! clean and under fault injection. Failure paths must exit nonzero and
//! name the rank.

use std::process::{Command, Output};

fn sor_nest() -> String {
    format!(
        "{}/../../examples/nests/sor.tcc",
        env!("CARGO_MANIFEST_DIR")
    )
}

/// Self-cleaning temp path prefix (per-worker artifacts append `.rankN`).
struct TempArtifacts(std::path::PathBuf);

impl TempArtifacts {
    fn new(tag: &str) -> Self {
        TempArtifacts(std::env::temp_dir().join(format!("tilecc-tcp-{}-{tag}", std::process::id())))
    }
    fn to_str(&self) -> &str {
        self.0.to_str().unwrap()
    }
    fn rank(&self, r: usize) -> std::path::PathBuf {
        std::path::PathBuf::from(format!("{}.rank{r}", self.to_str()))
    }
}

impl Drop for TempArtifacts {
    fn drop(&mut self) {
        for r in 0..16 {
            let _ = std::fs::remove_file(self.rank(r));
        }
    }
}

fn tilecc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_tilecc"))
        .args(args)
        .output()
        .expect("spawn tilecc")
}

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "tilecc failed: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn field<'a>(out: &'a str, key: &str) -> &'a str {
    out.lines()
        .find_map(|l| {
            let (k, v) = l.split_once(':')?;
            (k.trim() == key).then(|| v.trim())
        })
        .unwrap_or_else(|| panic!("no `{key}` line in:\n{out}"))
}

/// Run SOR on both backends with `extra` flags and assert every summary
/// line they share is identical — virtual times, counters, and the bitwise
/// data checksum.
fn assert_backends_print_identically(extra: &[&str]) -> (String, String) {
    let nest = sor_nest();
    let mut base = vec![
        "run",
        nest.as_str(),
        "--rect",
        "4,10,10",
        "--map",
        "2",
        "--verify",
    ];
    base.extend_from_slice(extra);

    let threaded = stdout_of(&tilecc(&base));
    let procs = field(&threaded, "processors");

    let mut tcp_args = base.clone();
    tcp_args.extend_from_slice(&["--backend", "tcp", "--ranks", procs]);
    let tcp = stdout_of(&tilecc(&tcp_args));

    for key in [
        "processors",
        "iterations",
        "seq time",
        "makespan",
        "speedup",
        "messages",
        "bytes",
        "checksum",
        "verified",
    ] {
        assert_eq!(
            field(&threaded, key),
            field(&tcp, key),
            "`{key}` differs between backends\n--- threaded ---\n{threaded}\n--- tcp ---\n{tcp}"
        );
    }
    assert_eq!(field(&tcp, "verified"), "true");
    assert!(field(&tcp, "backend").starts_with("tcp"), "{tcp}");
    (threaded, tcp)
}

#[test]
fn tcp_run_matches_threaded_bitwise() {
    assert_backends_print_identically(&[]);
}

#[test]
fn faulty_tcp_run_matches_threaded_bitwise() {
    // A lossy link: the reliability layer retransmits over real sockets
    // and the run must still agree bitwise, retransmit counts included.
    let (threaded, tcp) =
        assert_backends_print_identically(&["--fault-seed", "7", "--drop-rate", "0.25"]);
    if threaded.contains("retransmits") {
        assert_eq!(
            field(&threaded, "retransmits"),
            field(&tcp, "retransmits"),
            "--- threaded ---\n{threaded}\n--- tcp ---\n{tcp}"
        );
    }
}

#[test]
fn crashed_worker_fails_the_run_naming_the_rank() {
    let nest = sor_nest();
    let threaded = stdout_of(&tilecc(&["run", &nest, "--rect", "4,10,10", "--map", "2"]));
    let procs = field(&threaded, "processors");

    let out = tilecc(&[
        "run",
        &nest,
        "--rect",
        "4,10,10",
        "--map",
        "2",
        "--backend",
        "tcp",
        "--ranks",
        procs,
        "--crash-rank",
        "1",
    ]);
    assert!(!out.status.success(), "a crashed rank must fail the driver");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("rank 1") && stderr.contains("panicked"),
        "driver stderr must name the crashed rank:\n{stderr}"
    );
}

#[test]
fn worker_with_unreachable_rendezvous_exits_nonzero_fast() {
    let nest = sor_nest();
    let start = std::time::Instant::now();
    let out = tilecc(&[
        "run",
        &nest,
        "--rect",
        "4,10,10",
        "--map",
        "2",
        "--worker-rank",
        "0",
        "--connect",
        "127.0.0.1:1",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("rendezvous"), "{stderr}");
    assert!(
        start.elapsed() < std::time::Duration::from_secs(20),
        "connection refusal must fail fast, took {:?}",
        start.elapsed()
    );
}

#[test]
fn ranks_must_match_the_plan() {
    let nest = sor_nest();
    let out = tilecc(&[
        "run",
        &nest,
        "--rect",
        "4,10,10",
        "--map",
        "2",
        "--backend",
        "tcp",
        "--ranks",
        "999",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("999"), "{stderr}");
}

#[test]
fn tcp_run_writes_per_worker_metrics_artifacts() {
    let nest = sor_nest();
    let threaded = stdout_of(&tilecc(&["run", &nest, "--rect", "4,10,10", "--map", "2"]));
    let procs: usize = field(&threaded, "processors").parse().unwrap();

    let metrics = TempArtifacts::new("metrics.json");
    let out = stdout_of(&tilecc(&[
        "run",
        &nest,
        "--rect",
        "4,10,10",
        "--map",
        "2",
        "--backend",
        "tcp",
        "--ranks",
        &procs.to_string(),
        "--metrics-out",
        metrics.to_str(),
    ]));
    assert!(out.contains("metrics"), "{out}");
    for r in 0..procs {
        let path = metrics.rank(r);
        let body = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("worker artifact {path:?} missing: {e}"));
        assert!(
            body.contains("tilecc-metrics-v1"),
            "artifact {path:?} is not a metrics report"
        );
    }
}
