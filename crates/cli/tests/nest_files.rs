//! Integration: every checked-in example nest compiles, tiles, runs on the
//! simulated cluster, and verifies against sequential execution — through
//! the same code path as the `tilecc` binary.

use tilecc_cli::run_cli;

fn nest(name: &str) -> String {
    format!("{}/../../examples/nests/{name}", env!("CARGO_MANIFEST_DIR"))
}

fn args(v: &[&str]) -> Vec<String> {
    v.iter().map(|s| s.to_string()).collect()
}

#[test]
fn sor_nest_verifies_under_rect_and_cone_tilings() {
    let f = nest("sor.tcc");
    for tile in [
        vec!["--rect", "5,10,10"],
        vec!["--tile", "1/5,0,0; 0,1/10,0; -1/10,0,1/10"],
    ] {
        let mut a = vec!["run", f.as_str()];
        a.extend(tile);
        a.extend(["--map", "2", "--verify"]);
        let out = run_cli(&args(&a)).unwrap_or_else(|e| panic!("{e}"));
        assert!(out.contains("verified   : true"), "{out}");
    }
}

#[test]
fn jacobi_nest_verifies() {
    let f = nest("jacobi.tcc");
    let out = run_cli(&args(&[
        "run",
        f.as_str(),
        "--tile",
        "1/3,-1/6,0; 0,1/8,0; 0,0,1/8",
        "--map",
        "0",
        "--verify",
    ]))
    .unwrap_or_else(|e| panic!("{e}"));
    assert!(out.contains("verified   : true"), "{out}");
}

#[test]
fn adi_nest_verifies_and_matches_cone() {
    let f = nest("adi.tcc");
    let cone = run_cli(&args(&["cone", f.as_str()])).unwrap();
    assert!(cone.contains("[1, -1, -1]"));
    let out = run_cli(&args(&[
        "run",
        f.as_str(),
        "--tile",
        "1/4,-1/4,-1/4; 0,1/8,0; 0,0,1/8",
        "--map",
        "0",
        "--verify",
    ]))
    .unwrap_or_else(|e| panic!("{e}"));
    assert!(out.contains("verified   : true"), "{out}");
}

#[test]
fn heat1d_nest_verifies_in_two_dimensions() {
    let f = nest("heat1d.tcc");
    let out = run_cli(&args(&["run", f.as_str(), "--rect", "6,8", "--verify"]))
        .unwrap_or_else(|e| panic!("{e}"));
    assert!(out.contains("verified   : true"), "{out}");
}

#[test]
fn emit_on_every_nest_is_well_formed_and_compiles() {
    let gcc = ["gcc", "cc"].into_iter().find(|c| {
        std::process::Command::new(c)
            .arg("--version")
            .output()
            .is_ok()
    });
    for (name, rect) in [
        ("sor.tcc", "5,10,10"),
        ("jacobi.tcc", "3,8,8"),
        ("adi.tcc", "4,8,8"),
        ("heat1d.tcc", "6,8"),
    ] {
        let f = nest(name);
        let out = run_cli(&args(&["emit", f.as_str(), "--rect", rect])).unwrap();
        assert!(out.contains("#include <mpi.h>"), "{name}");
        assert_eq!(
            out.matches('{').count(),
            out.matches('}').count(),
            "{name}: braces"
        );
        if let Some(gcc) = gcc {
            let path = std::env::temp_dir()
                .join(format!("tilecc-nest-emit-{}-{name}.c", std::process::id()));
            std::fs::write(&path, &out).unwrap();
            let res = std::process::Command::new(gcc)
                .args([
                    "-std=c99",
                    "-DTILECC_STUB_MPI",
                    "-Wall",
                    "-Werror",
                    "-fsyntax-only",
                ])
                .arg(&path)
                .output()
                .unwrap();
            let _ = std::fs::remove_file(&path);
            assert!(
                res.status.success(),
                "{name}: emitted C does not compile:\n{}",
                String::from_utf8_lossy(&res.stderr)
            );
        }
        // The paper-style skeleton is still available.
        let skel = run_cli(&args(&["emit-skeleton", f.as_str(), "--rect", rect])).unwrap();
        assert!(
            skel.contains("FORACROSS") || skel.contains("MPI_Recv"),
            "{name}"
        );
    }
}

#[test]
fn plan_reports_paper_quantities() {
    let f = nest("sor.tcc");
    let out = run_cli(&args(&[
        "plan",
        f.as_str(),
        "--tile",
        "1/5,0,0; 0,1/10,0; -1/10,0,1/10",
        "--map",
        "2",
    ]))
    .unwrap();
    assert!(out.contains("tile size   : 500"), "{out}");
    assert!(out.contains("strides c   : [1, 1, 1]"), "{out}");
    assert!(out.contains("D^S"), "{out}");
}
