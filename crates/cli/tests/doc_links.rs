//! Intra-repo markdown link checker: every relative link in the repo's
//! documentation must resolve to a file that exists, so the docs cannot
//! silently rot as files move. External (`http…`, `mailto:`) and
//! pure-anchor links are ignored; fenced code blocks are skipped.

use std::path::{Path, PathBuf};

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// The documentation set under link discipline: every tracked markdown
/// file at the repo root and under `docs/`.
fn doc_files() -> Vec<PathBuf> {
    let root = repo_root();
    let mut files = Vec::new();
    for dir in [root.clone(), root.join("docs")] {
        for entry in std::fs::read_dir(&dir).expect("readable doc dir") {
            let path = entry.expect("dir entry").path();
            if path.extension().is_some_and(|e| e == "md") {
                files.push(path);
            }
        }
    }
    assert!(
        files.iter().any(|p| p.ends_with("README.md")),
        "doc scan must cover the README"
    );
    files.sort();
    files
}

/// Extract `](target)` link targets outside fenced code blocks.
fn link_targets(markdown: &str) -> Vec<(usize, String)> {
    let mut targets = Vec::new();
    let mut in_fence = false;
    for (lineno, line) in markdown.lines().enumerate() {
        if line.trim_start().starts_with("```") {
            in_fence = !in_fence;
            continue;
        }
        if in_fence {
            continue;
        }
        let mut rest = line;
        while let Some(open) = rest.find("](") {
            rest = &rest[open + 2..];
            let Some(close) = rest.find(')') else { break };
            targets.push((lineno + 1, rest[..close].to_string()));
            rest = &rest[close + 1..];
        }
    }
    targets
}

#[test]
fn intra_repo_markdown_links_resolve() {
    let mut broken = Vec::new();
    let mut checked = 0usize;
    for file in doc_files() {
        let body = std::fs::read_to_string(&file)
            .unwrap_or_else(|e| panic!("unreadable doc {file:?}: {e}"));
        for (line, target) in link_targets(&body) {
            let target = target.trim();
            if target.starts_with("http://")
                || target.starts_with("https://")
                || target.starts_with("mailto:")
                || target.starts_with('#')
                || target.is_empty()
            {
                continue;
            }
            // Strip a trailing anchor; intra-file anchors aren't checked.
            let path_part = target.split('#').next().unwrap();
            let resolved = file.parent().unwrap().join(path_part);
            checked += 1;
            if !resolved.exists() {
                broken.push(format!(
                    "{}:{line}: `{target}` → {resolved:?} does not exist",
                    file.strip_prefix(repo_root()).unwrap_or(&file).display()
                ));
            }
        }
    }
    assert!(
        checked >= 10,
        "link scan found only {checked} relative links — scanner likely broken"
    );
    assert!(
        broken.is_empty(),
        "broken intra-repo links:\n{}",
        broken.join("\n")
    );
}

#[test]
fn readme_links_the_protocol_and_architecture_docs() {
    let readme = std::fs::read_to_string(repo_root().join("README.md")).unwrap();
    for doc in [
        "docs/wire-protocol.md",
        "docs/architecture.md",
        "docs/kernel-dsl.md",
    ] {
        assert!(
            readme.contains(&format!("]({doc})")),
            "README must link {doc}"
        );
    }
}
