//! End-to-end crash-recovery tests for `tilecc run --on-crash recover`:
//! a worker killed mid-run — by an injected virtual-time crash or a real
//! SIGKILL — must be respawned from its checkpoint and the run must
//! finish with the same summary as a fault-free run, bitwise checksum
//! and makespan included (worker respawn carries zero recovery debt).

use std::process::{Command, Output};

fn sor_nest() -> String {
    format!(
        "{}/../../examples/nests/sor.tcc",
        env!("CARGO_MANIFEST_DIR")
    )
}

fn tilecc_env(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_tilecc"));
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn tilecc")
}

fn tilecc(args: &[&str]) -> Output {
    tilecc_env(args, &[])
}

fn stdout_of(out: &Output) -> String {
    assert!(
        out.status.success(),
        "tilecc failed: {}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn field<'a>(out: &'a str, key: &str) -> &'a str {
    out.lines()
        .find_map(|l| {
            let (k, v) = l.split_once(':')?;
            (k.trim() == key).then(|| v.trim())
        })
        .unwrap_or_else(|| panic!("no `{key}` line in:\n{out}"))
}

/// A clean TCP run of SOR plus its rank count, for comparison.
fn clean_tcp_run() -> (String, String) {
    let nest = sor_nest();
    let threaded = stdout_of(&tilecc(&[
        "run", &nest, "--rect", "4,10,10", "--map", "2", "--verify",
    ]));
    let procs = field(&threaded, "processors").to_string();
    let clean = stdout_of(&tilecc(&[
        "run",
        &nest,
        "--rect",
        "4,10,10",
        "--map",
        "2",
        "--verify",
        "--backend",
        "tcp",
        "--ranks",
        &procs,
    ]));
    (clean, procs)
}

/// Every summary line a fault-free run prints must be reproduced by the
/// recovered run — a respawned worker resumes its virtual clock from the
/// checkpoint, so even the makespan is bitwise identical.
fn assert_recovered_matches_clean(clean: &str, recovered: &str) {
    for key in [
        "processors",
        "iterations",
        "seq time",
        "makespan",
        "speedup",
        "messages",
        "bytes",
        "checksum",
        "verified",
    ] {
        assert_eq!(
            field(clean, key),
            field(recovered, key),
            "`{key}` differs after recovery\n--- clean ---\n{clean}\n--- recovered ---\n{recovered}"
        );
    }
    assert_eq!(field(recovered, "verified"), "true");
    assert_eq!(field(recovered, "recoveries"), "1", "{recovered}");
}

#[test]
fn tcp_injected_crash_recovers_bitwise() {
    let (clean, procs) = clean_tcp_run();
    let nest = sor_nest();
    let recovered = stdout_of(&tilecc(&[
        "run",
        &nest,
        "--rect",
        "4,10,10",
        "--map",
        "2",
        "--verify",
        "--backend",
        "tcp",
        "--ranks",
        &procs,
        "--crash-rank",
        "1",
        "--on-crash",
        "recover",
        "--ckpt-interval",
        "2",
    ]));
    assert_recovered_matches_clean(&clean, &recovered);
}

#[test]
fn tcp_sigkilled_worker_respawns_and_completes_bitwise() {
    let (clean, procs) = clean_tcp_run();
    let nest = sor_nest();
    // Rank 1 hard-kills itself (SIGKILL, no cleanup) right after writing
    // its second checkpoint; the driver must respawn it from that file.
    let recovered = stdout_of(&tilecc_env(
        &[
            "run",
            &nest,
            "--rect",
            "4,10,10",
            "--map",
            "2",
            "--verify",
            "--backend",
            "tcp",
            "--ranks",
            &procs,
            "--on-crash",
            "recover",
            "--ckpt-interval",
            "1",
        ],
        &[("TILECC_CRASH_KILL", "1:2")],
    ));
    assert_recovered_matches_clean(&clean, &recovered);
}

#[test]
fn exhausted_recovery_budget_fails_naming_the_rank() {
    let nest = sor_nest();
    let threaded = stdout_of(&tilecc(&["run", &nest, "--rect", "4,10,10", "--map", "2"]));
    let procs = field(&threaded, "processors");
    let out = tilecc(&[
        "run",
        &nest,
        "--rect",
        "4,10,10",
        "--map",
        "2",
        "--backend",
        "tcp",
        "--ranks",
        procs,
        "--crash-rank",
        "1",
        "--on-crash",
        "recover",
        "--max-recoveries",
        "0",
    ]);
    assert!(
        !out.status.success(),
        "a crash past the recovery budget must fail the driver"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("rank 1"), "{stderr}");
    assert!(stderr.contains("recovery budget exhausted"), "{stderr}");
}
