//! The `tilecc` command-line tool — see `tilecc help`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match tilecc_cli::run_cli(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("tilecc: {e}");
            std::process::exit(1);
        }
    }
}
