//! # tilecc-cli
//!
//! The command-line face of the framework — the analogue of the paper's
//! "tool which automatically generates MPI code":
//!
//! ```text
//! tilecc parse  nest.tcc                          # inspect the parsed model
//! tilecc cone   nest.tcc                          # tiling cone extreme rays
//! tilecc plan   nest.tcc --tile "1/4,0,0;0,1/4,0;-1/4,0,1/4" [--map 2]
//! tilecc run    nest.tcc --rect 4,4,4 [--verify] [--overlap]
//! tilecc emit   nest.tcc --tile … > generated.c   # C/MPI source
//! ```
//!
//! All logic lives in [`run_cli`] so it is directly testable; the binary is
//! a thin wrapper.

use std::fmt::Write as _;
use std::sync::Arc;
use tilecc::Pipeline;
use tilecc_cluster::obs::json::Json;
use tilecc_cluster::{CommScheme, EngineOptions, FaultPlan, MachineModel, MetricsRegistry, Phase};
use tilecc_frontend::{compile, lower, parse, Program};
use tilecc_linalg::{RMat, Rational};
use tilecc_loopnest::Algorithm;
use tilecc_parcode::ExecStrategy;
use tilecc_tiling::tiling_cone_rays;

/// CLI error: message for the user, non-zero exit.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

/// Parsed command-line options.
struct Options {
    tile: Option<RMat>,
    map: Option<usize>,
    verify: bool,
    overlap: bool,
    /// Tile execution strategy (`--strategy`): how each rank walks and
    /// communicates its tiles.
    strategy: ExecStrategy,
    model: MachineModel,
    /// Seed for deterministic fault injection (`--fault-seed`).
    fault_seed: Option<u64>,
    /// Per-attempt message drop probability (`--drop-rate`).
    drop_rate: Option<f64>,
    /// Rank to crash, with an optional `rank@time` virtual crash time
    /// (`--crash-rank`).
    crash: Option<(usize, f64)>,
    /// Write a Chrome trace-event JSON here (`--trace-out`).
    trace_out: Option<String>,
    /// Write the aggregated metrics JSON here (`--metrics-out`).
    metrics_out: Option<String>,
}

impl Options {
    /// The fault plan implied by the fault flags, if any were given.
    fn fault_plan(&self) -> Option<FaultPlan> {
        if self.fault_seed.is_none() && self.drop_rate.is_none() && self.crash.is_none() {
            return None;
        }
        let mut plan =
            FaultPlan::lossy(self.fault_seed.unwrap_or(0), self.drop_rate.unwrap_or(0.0));
        if let Some((rank, at)) = self.crash {
            plan = plan.with_crash(rank, at);
        }
        Some(plan)
    }
}

/// Parse `--crash-rank`'s `<rank>` or `<rank>@<time>` value.
fn parse_crash_spec(spec: &str) -> Result<(usize, f64), CliError> {
    let (rank_s, at_s) = match spec.split_once('@') {
        Some((r, t)) => (r, Some(t)),
        None => (spec, None),
    };
    let rank: usize = rank_s
        .trim()
        .parse()
        .map_err(|_| CliError(format!("invalid --crash-rank rank `{rank_s}`")))?;
    let at: f64 = match at_s {
        None => 0.0,
        Some(t) => t
            .trim()
            .parse()
            .map_err(|_| CliError(format!("invalid --crash-rank time `{t}`")))?,
    };
    Ok((rank, at))
}

/// Parse a tiling matrix specification: rows separated by `;`, entries by
/// `,`, each entry `a`, `-a`, `a/b` or `-a/b`.
pub fn parse_tile_spec(spec: &str) -> Result<RMat, CliError> {
    let rows: Vec<&str> = spec.split(';').map(str::trim).collect();
    if rows.is_empty() {
        return err("empty tile specification");
    }
    let mut parsed: Vec<Vec<Rational>> = Vec::with_capacity(rows.len());
    for row in &rows {
        let mut out = vec![];
        for entry in row.split(',') {
            let entry = entry.trim();
            let r = match entry.split_once('/') {
                Some((num, den)) => {
                    let n: i128 = num
                        .trim()
                        .parse()
                        .map_err(|_| CliError(format!("invalid numerator `{num}` in tile spec")))?;
                    let d: i128 = den.trim().parse().map_err(|_| {
                        CliError(format!("invalid denominator `{den}` in tile spec"))
                    })?;
                    if d == 0 {
                        return err("zero denominator in tile spec");
                    }
                    Rational::new(n, d)
                }
                None => {
                    let n: i128 = entry
                        .parse()
                        .map_err(|_| CliError(format!("invalid entry `{entry}` in tile spec")))?;
                    Rational::new(n, 1)
                }
            };
            out.push(r);
        }
        parsed.push(out);
    }
    let n = parsed.len();
    if parsed.iter().any(|r| r.len() != n) {
        return err("tile matrix must be square (rows `;`-separated, entries `,`-separated)");
    }
    Ok(RMat::from_fn(n, n, |i, j| parsed[i][j]))
}

/// Parse `--rect x,y,z` into a diagonal tiling matrix.
pub fn parse_rect_spec(spec: &str) -> Result<RMat, CliError> {
    let sizes: Result<Vec<i64>, _> = spec.split(',').map(|s| s.trim().parse::<i64>()).collect();
    let sizes = sizes.map_err(|_| CliError(format!("invalid --rect sizes `{spec}`")))?;
    if sizes.iter().any(|&s| s <= 0) {
        return err("--rect sizes must be positive");
    }
    let n = sizes.len();
    Ok(RMat::from_fn(n, n, |i, j| {
        if i == j {
            Rational::new(1, sizes[i] as i128)
        } else {
            Rational::ZERO
        }
    }))
}

fn parse_options(args: &[String]) -> Result<Options, CliError> {
    let mut o = Options {
        tile: None,
        map: None,
        verify: false,
        overlap: false,
        strategy: ExecStrategy::default(),
        model: MachineModel::fast_ethernet_p3(),
        fault_seed: None,
        drop_rate: None,
        crash: None,
        trace_out: None,
        metrics_out: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tile" => {
                let spec = args
                    .get(i + 1)
                    .ok_or(CliError("--tile needs a value".into()))?;
                o.tile = Some(parse_tile_spec(spec)?);
                i += 2;
            }
            "--rect" => {
                let spec = args
                    .get(i + 1)
                    .ok_or(CliError("--rect needs a value".into()))?;
                o.tile = Some(parse_rect_spec(spec)?);
                i += 2;
            }
            "--map" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--map needs a value".into()))?;
                o.map = Some(
                    v.parse()
                        .map_err(|_| CliError(format!("invalid --map value `{v}`")))?,
                );
                i += 2;
            }
            "--verify" => {
                o.verify = true;
                i += 1;
            }
            "--overlap" => {
                o.overlap = true;
                i += 1;
            }
            "--strategy" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--strategy needs a value".into()))?;
                o.strategy = match v.as_str() {
                    "compiled" => ExecStrategy::Compiled,
                    "reference" => ExecStrategy::Reference,
                    "overlapped" => ExecStrategy::Overlapped,
                    other => {
                        return err(format!(
                            "unknown --strategy `{other}` (expected compiled, reference, or overlapped)"
                        ))
                    }
                };
                i += 2;
            }
            "--zero-comm" => {
                o.model = MachineModel::zero_comm(o.model.compute_per_iter);
                i += 1;
            }
            "--fault-seed" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--fault-seed needs a value".into()))?;
                o.fault_seed = Some(
                    v.parse()
                        .map_err(|_| CliError(format!("invalid --fault-seed value `{v}`")))?,
                );
                i += 2;
            }
            "--drop-rate" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--drop-rate needs a value".into()))?;
                let rate: f64 = v
                    .parse()
                    .map_err(|_| CliError(format!("invalid --drop-rate value `{v}`")))?;
                if !(0.0..1.0).contains(&rate) {
                    return err("--drop-rate must be in [0, 1)");
                }
                o.drop_rate = Some(rate);
                i += 2;
            }
            "--crash-rank" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--crash-rank needs a value".into()))?;
                o.crash = Some(parse_crash_spec(v)?);
                i += 2;
            }
            "--trace-out" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--trace-out needs a file path".into()))?;
                o.trace_out = Some(v.clone());
                i += 2;
            }
            "--metrics-out" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--metrics-out needs a file path".into()))?;
                o.metrics_out = Some(v.clone());
                i += 2;
            }
            other => return err(format!("unknown option `{other}`")),
        }
    }
    Ok(o)
}

fn load(path: &str) -> Result<Algorithm, CliError> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read `{path}`: {e}")))?;
    compile(&src).map_err(|e| CliError(format!("{path}: {e}")))
}

fn load_program(path: &str) -> Result<Program, CliError> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read `{path}`: {e}")))?;
    parse(&src).map_err(|e| CliError(format!("{path}: {e}")))
}

/// Build the C kernel/boundary source from the parsed program. Skewed
/// programs get a prelude computing the original coordinates `jo` via the
/// inverse skewing matrix, since the generated code iterates in skewed
/// coordinates.
fn kernel_source(program: &Program) -> tilecc_parcode::KernelSource {
    use std::fmt::Write as _;
    let (coord, prelude) = match &program.skew {
        None => ("j".to_string(), String::new()),
        Some(rows) => {
            let n = program.dim();
            let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
            let t = tilecc_linalg::IMat::from_rows(&refs);
            let tinv = t.inverse().to_imat();
            let mut pre = String::new();
            let _ = writeln!(pre, "    long jo[{n}];");
            for r in 0..n {
                let terms: Vec<String> = (0..n)
                    .filter(|&k| tinv[(r, k)] != 0)
                    .map(|k| format!("({}L * j[{k}])", tinv[(r, k)]))
                    .collect();
                let rhs = if terms.is_empty() {
                    "0".to_string()
                } else {
                    terms.join(" + ")
                };
                let _ = writeln!(pre, "    jo[{r}] = {rhs};");
            }
            pre.push_str("    (void)jo;");
            ("jo".to_string(), pre)
        }
    };
    tilecc_parcode::KernelSource {
        prelude,
        body: program.body.to_c(&coord),
        boundary: program.boundary.to_c(&coord),
    }
}

/// Render a saved `tilecc-metrics-v1` JSON file (written by
/// `--metrics-out`) as the textual run summary.
fn render_saved_metrics(path: &str) -> Result<String, CliError> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read `{path}`: {e}")))?;
    let j = tilecc_cluster::obs::json::parse(&src).map_err(|e| CliError(format!("{path}: {e}")))?;
    let schema = j.get("schema").and_then(Json::as_str);
    if schema != Some("tilecc-metrics-v1") {
        return err(format!(
            "{path}: unsupported metrics schema {schema:?} (expected \"tilecc-metrics-v1\")"
        ));
    }
    let makespan = j
        .get("makespan")
        .and_then(Json::as_f64)
        .ok_or_else(|| CliError(format!("{path}: missing makespan")))?;
    let ranks = j
        .get("ranks")
        .and_then(Json::as_arr)
        .ok_or_else(|| CliError(format!("{path}: missing ranks")))?;
    let field = |r: &Json, k: &str| r.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    let counter = |r: &Json, k: &str| {
        r.get("counters")
            .and_then(|c| c.get(k))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    let mut out = String::new();
    let n = ranks.len();
    let _ = writeln!(
        out,
        "run report: {n} rank{}, makespan {makespan:.6} s",
        if n == 1 { "" } else { "s" }
    );
    let (mut tc, mut tw, mut tm, mut tt) = (0.0, 0.0, 0.0, 0.0);
    for r in ranks {
        tc += field(r, "compute");
        tw += field(r, "wait");
        tm += field(r, "comm");
        tt += field(r, "local_time");
    }
    if tt > 0.0 {
        let _ = writeln!(
            out,
            "  split      : compute {:.1}%  wait {:.1}%  comm {:.1}%  (of total rank time)",
            100.0 * tc / tt,
            100.0 * tw / tt,
            100.0 * tm / tt
        );
    }
    let total = |k: &str| ranks.iter().map(|r| counter(r, k)).sum::<u64>();
    let _ = writeln!(
        out,
        "  traffic    : {} messages, {} bytes on the wire, {} retransmits, {} dups suppressed",
        total("messages_sent"),
        total("bytes_sent"),
        total("retransmits"),
        total("dups_suppressed"),
    );
    let _ = writeln!(
        out,
        "  tiles      : {} ({} interior, {} boundary), {} iterations",
        total("tiles"),
        total("interior_tiles"),
        total("boundary_tiles"),
        total("iterations"),
    );
    for r in ranks {
        let local = field(r, "local_time");
        let _ = writeln!(
            out,
            "  rank {:>3}   : {:.6} s  compute {:.6}  wait {:.6}  comm {:.6}  util {:>5.1}%",
            r.get("rank").and_then(Json::as_u64).unwrap_or(0),
            local,
            field(r, "compute"),
            field(r, "wait"),
            field(r, "comm"),
            100.0 * field(r, "utilization"),
        );
    }
    Ok(out)
}

fn fmt_matrix(m: &RMat) -> String {
    let mut s = String::new();
    for i in 0..m.rows() {
        let row: Vec<String> = (0..m.cols()).map(|j| m[(i, j)].to_string()).collect();
        let _ = writeln!(s, "  [ {} ]", row.join("  "));
    }
    s
}

const USAGE: &str = "usage: tilecc <command> <nest.tcc> [options]

commands:
  parse <file>               inspect the parsed loop nest
  cone  <file>               print the tiling cone's extreme rays
  plan  <file> --tile|--rect print the derived parallelization plan
  run   <file> --tile|--rect simulate on the modelled cluster
  emit  <file> --tile|--rect emit a complete C/MPI program to stdout
  emit-skeleton <file> …      emit the paper-style code skeleton only
  report <metrics.json>       render a saved metrics file as a summary

options:
  --tile \"r11,r12;r21,r22\"   tiling matrix H (rows `;`, entries `,`, a/b)
  --rect x,y[,z…]             rectangular tiling of the given edge sizes
  --map <k>                   mapping dimension (default: longest)
  --verify                    full run, compare against sequential (run)
  --overlap                   overlapped communication scheme (run)
  --strategy <s>              tile execution strategy: compiled (default),
                              reference, or overlapped — compute the tile's
                              boundary slab first and hide its sends behind
                              the private interior (run)
  --zero-comm                 zero-cost network model (run)
  --fault-seed <s>            seed for deterministic fault injection (run)
  --drop-rate <p>             drop each send attempt with probability p;
                              the reliability layer retransmits (run)
  --crash-rank <r[@t]>        crash rank r at virtual time t (default 0) to
                              exercise failure reporting (run)
  --trace-out <file>          write a Chrome trace-event JSON of the run,
                              loadable in Perfetto / chrome://tracing (run)
  --metrics-out <file>        write the aggregated per-rank metrics JSON
                              (tilecc-metrics-v1; see `tilecc report`) (run)
";

/// Run the CLI. Returns the output text; errors carry user messages.
pub fn run_cli(args: &[String]) -> Result<String, CliError> {
    let mut out = String::new();
    let Some(cmd) = args.first() else {
        return err(USAGE);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => {
            out.push_str(USAGE);
            Ok(out)
        }
        "parse" => {
            let path = args.get(1).ok_or(CliError(USAGE.into()))?;
            let alg = load(path)?;
            let _ = writeln!(out, "algorithm : {}", alg.name);
            let _ = writeln!(out, "dimension : {}", alg.nest.dim());
            let _ = writeln!(out, "iterations: {}", alg.nest.num_points());
            let _ = writeln!(out, "dependence columns:");
            for q in 0..alg.nest.deps().cols() {
                let _ = writeln!(out, "  d{q} = {:?}", alg.nest.deps().col(q));
            }
            Ok(out)
        }
        "cone" => {
            let path = args.get(1).ok_or(CliError(USAGE.into()))?;
            let alg = load(path)?;
            let rays = tiling_cone_rays(alg.nest.deps());
            let _ = writeln!(out, "tiling cone extreme rays:");
            for r in rays {
                let _ = writeln!(out, "  {r:?}");
            }
            Ok(out)
        }
        "report" => {
            let path = args.get(1).ok_or(CliError(USAGE.into()))?;
            out.push_str(&render_saved_metrics(path)?);
            Ok(out)
        }
        "plan" | "run" | "emit" | "emit-skeleton" => {
            let path = args.get(1).ok_or(CliError(USAGE.into()))?;
            let opts = parse_options(&args[2..])?;
            // One registry per invocation when an artifact was requested;
            // the frontend, planner and engine all record into it.
            let reg: Option<Arc<MetricsRegistry>> =
                (opts.trace_out.is_some() || opts.metrics_out.is_some()).then(MetricsRegistry::new);
            let lower_t0 = reg.as_ref().map(|r| r.now_ns());
            let alg = load(path)?;
            if let (Some(r), Some(t0)) = (&reg, lower_t0) {
                r.driver_span(Phase::Lower, "lower", t0, alg.nest.num_points() as u64);
            }
            let h = opts
                .tile
                .clone()
                .ok_or(CliError("missing --tile or --rect".into()))?;
            if h.rows() != alg.nest.dim() {
                return err(format!(
                    "tile matrix is {}×{} but the nest is {}-dimensional",
                    h.rows(),
                    h.cols(),
                    alg.nest.dim()
                ));
            }
            let transform = tilecc_tiling::TilingTransform::new(h)
                .map_err(|e| CliError(format!("tiling rejected: {e}")))?;
            let pipe = Pipeline::compile_observed(alg, transform, opts.map, reg.as_deref())
                .map_err(|e| CliError(format!("tiling rejected: {e}")))?;
            match cmd.as_str() {
                "plan" => {
                    let plan = pipe.plan();
                    let t = plan.tiled.transform();
                    let _ = writeln!(out, "H =\n{}", fmt_matrix(t.h()));
                    let _ = writeln!(out, "P = H^-1 =\n{}", fmt_matrix(t.p()));
                    let _ = writeln!(out, "V diag      : {:?}", t.v());
                    let _ = writeln!(out, "H' = V*H    : {:?}", t.h_prime());
                    let _ = writeln!(out, "HNF(H')     : {:?}", t.hnf());
                    let _ = writeln!(out, "strides c   : {:?}", t.strides());
                    let _ = writeln!(out, "tile size   : {}", t.tile_size());
                    let _ = writeln!(out, "mapping dim : {}", plan.m());
                    let _ = writeln!(out, "processors  : {}", plan.num_procs());
                    let _ = writeln!(out, "CC          : {:?}", plan.comm.cc);
                    let _ = writeln!(out, "offsets     : {:?}", plan.comm.off);
                    let _ = writeln!(out, "D^S         : {:?}", plan.comm.tile_deps);
                    let _ = writeln!(out, "D^m         : {:?}", plan.comm.proc_deps);
                    Ok(out)
                }
                "run" => {
                    let scheme = if opts.overlap {
                        CommScheme::Overlapped
                    } else {
                        CommScheme::Blocking
                    };
                    let fault = opts.fault_plan();
                    let options = EngineOptions {
                        scheme,
                        fault: fault.clone(),
                        obs: reg.clone(),
                        ..EngineOptions::default()
                    };
                    let run_err = |e: tilecc_cluster::RunError| {
                        CliError(format!(
                            "run failed: {e}\nranks implicated: {:?}",
                            e.ranks()
                        ))
                    };
                    let summary = if opts.verify || fault.is_some() {
                        // Fault-injected runs go through the fallible engine
                        // entry point so failures carry rank-level context.
                        let (s, _) = pipe
                            .run_verified_strategy(opts.model, opts.strategy, options)
                            .map_err(run_err)?;
                        s
                    } else {
                        pipe.simulate_strategy(opts.model, opts.strategy, options)
                            .map_err(run_err)?
                    };
                    if opts.strategy != ExecStrategy::default() {
                        let _ = writeln!(out, "strategy   : {:?}", opts.strategy);
                    }
                    let _ = writeln!(out, "processors : {}", summary.procs);
                    let _ = writeln!(out, "iterations : {}", summary.iterations);
                    let _ = writeln!(out, "seq time   : {:.6} s", summary.sequential_time);
                    let _ = writeln!(out, "makespan   : {:.6} s", summary.makespan);
                    let _ = writeln!(out, "speedup    : {:.3}", summary.speedup);
                    let _ = writeln!(out, "messages   : {}", summary.messages);
                    let _ = writeln!(out, "bytes      : {}", summary.bytes);
                    if summary.retransmissions > 0 || summary.duplicates_suppressed > 0 {
                        let _ = writeln!(out, "retransmits: {}", summary.retransmissions);
                        let _ = writeln!(out, "dups suppr : {}", summary.duplicates_suppressed);
                    }
                    if let Some(v) = summary.verified {
                        let _ = writeln!(out, "verified   : {v}");
                        if !v {
                            return err("verification FAILED: parallel result differs");
                        }
                    }
                    if let Some(reg) = &reg {
                        let report = reg.run_report(&summary.local_times);
                        if let Some(path) = &opts.trace_out {
                            std::fs::write(path, reg.chrome_trace()).map_err(|e| {
                                CliError(format!("cannot write trace to `{path}`: {e}"))
                            })?;
                            let _ = writeln!(out, "trace      : {path}");
                        }
                        if let Some(path) = &opts.metrics_out {
                            std::fs::write(path, report.to_json()).map_err(|e| {
                                CliError(format!("cannot write metrics to `{path}`: {e}"))
                            })?;
                            let _ = writeln!(out, "metrics    : {path}");
                        }
                        out.push('\n');
                        out.push_str(&report.render());
                    }
                    Ok(out)
                }
                "emit" => {
                    let program = load_program(path)?;
                    // Consistency: the pipeline compiled from the same file.
                    let _ = lower(&program).map_err(|e| CliError(format!("{path}: {e}")))?;
                    let srck = kernel_source(&program);
                    out.push_str(&tilecc_parcode::emit_c_program(pipe.plan(), &srck));
                    Ok(out)
                }
                "emit-skeleton" => {
                    out.push_str(&pipe.emit_c("F(/* reads at LA[MAP(t, j - d')] */)"));
                    Ok(out)
                }
                _ => unreachable!(),
            }
        }
        other => err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Self-cleaning temp file (avoids external tempfile dependencies).
    struct TempNest(std::path::PathBuf);

    impl TempNest {
        fn to_str(&self) -> &str {
            self.0.to_str().unwrap()
        }
    }

    impl Drop for TempNest {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn write_nest(content: &str) -> TempNest {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let id = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("tilecc-cli-test-{}-{id}.tcc", std::process::id()));
        std::fs::write(&path, content).unwrap();
        TempNest(path)
    }

    const ADI_SRC: &str = r#"
param T = 6
param N = 9
for t = 1 to T
for i = 1 to N
for j = 1 to N
X[t,i,j] = X[t-1,i,j] + 0.3*X[t-1,i-1,j] - 0.2*X[t-1,i,j-1]
boundary = 0.25
"#;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_command_reports_structure() {
        let p = write_nest(ADI_SRC);
        let out = run_cli(&args(&["parse", p.to_str()])).unwrap();
        assert!(out.contains("dimension : 3"));
        assert!(out.contains("iterations: 486"));
        assert!(out.contains("d0 = [1, 0, 0]"));
    }

    #[test]
    fn cone_command_prints_rays() {
        let p = write_nest(ADI_SRC);
        let out = run_cli(&args(&["cone", p.to_str()])).unwrap();
        assert!(out.contains("[1, -1, -1]"), "{out}");
    }

    #[test]
    fn run_with_verification_succeeds() {
        let p = write_nest(ADI_SRC);
        let out = run_cli(&args(&[
            "run",
            p.to_str(),
            "--rect",
            "2,4,4",
            "--map",
            "0",
            "--verify",
        ]))
        .unwrap();
        assert!(out.contains("verified   : true"), "{out}");
    }

    #[test]
    fn run_with_cone_tiling_and_overlap() {
        let p = write_nest(ADI_SRC);
        let out = run_cli(&args(&[
            "run",
            p.to_str(),
            "--tile",
            "1/2,-1/2,-1/2; 0,1/4,0; 0,0,1/4",
            "--map",
            "0",
            "--overlap",
        ]))
        .unwrap();
        assert!(out.contains("speedup"), "{out}");
    }

    #[test]
    fn overlapped_strategy_verifies_and_is_no_slower() {
        let p = write_nest(ADI_SRC);
        let makespan = |out: &str| -> f64 {
            out.lines()
                .find_map(|l| l.strip_prefix("makespan   :"))
                .unwrap()
                .trim()
                .trim_end_matches(" s")
                .parse()
                .unwrap()
        };
        let run = |strategy: &str| {
            run_cli(&args(&[
                "run",
                p.to_str(),
                "--rect",
                "2,4,4",
                "--map",
                "0",
                "--verify",
                "--strategy",
                strategy,
            ]))
            .unwrap()
        };
        let overlapped = run("overlapped");
        assert!(
            overlapped.contains("strategy   : Overlapped"),
            "{overlapped}"
        );
        assert!(overlapped.contains("verified   : true"), "{overlapped}");
        let compiled = run("compiled");
        assert!(
            makespan(&overlapped) <= makespan(&compiled) + 1e-12,
            "overlapped must not be slower\n{overlapped}\n{compiled}"
        );
    }

    #[test]
    fn unknown_strategy_is_rejected() {
        let p = write_nest(ADI_SRC);
        let e = run_cli(&args(&[
            "run",
            p.to_str(),
            "--rect",
            "2,4,4",
            "--strategy",
            "turbo",
        ]))
        .unwrap_err();
        assert!(e.0.contains("unknown --strategy `turbo`"), "{e}");
    }

    #[test]
    fn unwritable_artifact_paths_are_reported_not_panicked() {
        // A nonexistent parent directory must surface as a CliError naming
        // the artifact and path — never a panic or a silent success.
        let p = write_nest(ADI_SRC);
        let base = args(&["run", p.to_str(), "--rect", "2,4,4", "--map", "0"]);
        for (flag, what) in [("--trace-out", "trace"), ("--metrics-out", "metrics")] {
            let bad = "/nonexistent-tilecc-dir/artifact.json";
            let mut a = base.clone();
            a.extend(args(&[flag, bad]));
            let e = run_cli(&a).unwrap_err();
            assert!(
                e.0.contains(&format!("cannot write {what} to `{bad}`")),
                "{flag}: {e}"
            );
        }
    }

    #[test]
    fn plan_command_shows_comm_data() {
        let p = write_nest(ADI_SRC);
        let out = run_cli(&args(&["plan", p.to_str(), "--rect", "2,4,4"])).unwrap();
        assert!(out.contains("CC"), "{out}");
        assert!(out.contains("tile size   : 32"), "{out}");
    }

    #[test]
    fn emit_command_produces_c() {
        let p = write_nest(ADI_SRC);
        let out = run_cli(&args(&["emit", p.to_str(), "--rect", "2,4,4"])).unwrap();
        assert!(out.contains("#include <mpi.h>"));
    }

    #[test]
    fn lossy_run_verifies_and_reports_retransmissions() {
        let p = write_nest(ADI_SRC);
        let out = run_cli(&args(&[
            "run",
            p.to_str(),
            "--rect",
            "2,4,4",
            "--map",
            "0",
            "--fault-seed",
            "7",
            "--drop-rate",
            "0.25",
        ]))
        .unwrap();
        assert!(out.contains("verified   : true"), "{out}");
        assert!(out.contains("retransmits:"), "{out}");
        let n: u64 = out
            .lines()
            .find_map(|l| l.strip_prefix("retransmits:"))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(n > 0, "a 25% drop rate must force retransmissions\n{out}");
    }

    #[test]
    fn observed_run_writes_artifacts_and_report_reads_them_back() {
        let p = write_nest(ADI_SRC);
        let trace = write_nest("");
        let metrics = write_nest("");
        let out = run_cli(&args(&[
            "run",
            p.to_str(),
            "--rect",
            "2,4,4",
            "--map",
            "0",
            "--verify",
            "--trace-out",
            trace.to_str(),
            "--metrics-out",
            metrics.to_str(),
        ]))
        .unwrap();
        assert!(out.contains("verified   : true"), "{out}");
        assert!(out.contains("trace      :"), "{out}");
        assert!(out.contains("run report"), "{out}");

        // The trace must be valid JSON with Chrome trace-event structure.
        let trace_txt = std::fs::read_to_string(trace.to_str()).unwrap();
        let doc = tilecc_cluster::obs::json::parse(&trace_txt).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(!events.is_empty());
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("X")));

        // The metrics file round-trips through the `report` subcommand.
        let rendered = run_cli(&args(&["report", metrics.to_str()])).unwrap();
        assert!(rendered.contains("run report"), "{rendered}");
        assert!(rendered.contains("rank"), "{rendered}");
    }

    #[test]
    fn report_rejects_non_metrics_files() {
        let bogus = write_nest("{\"schema\": \"other\"}");
        let e = run_cli(&args(&["report", bogus.to_str()])).unwrap_err();
        assert!(e.0.contains("schema"), "{e}");
    }

    #[test]
    fn crashed_rank_is_reported_with_context() {
        let p = write_nest(ADI_SRC);
        let e = run_cli(&args(&[
            "run",
            p.to_str(),
            "--rect",
            "2,4,4",
            "--map",
            "0",
            "--crash-rank",
            "1",
        ]))
        .unwrap_err();
        assert!(e.0.contains("run failed"), "{e}");
        assert!(e.0.contains("rank 1"), "{e}");
        assert!(e.0.contains("injected crash"), "{e}");
    }

    #[test]
    fn fault_flag_values_are_validated() {
        assert!(parse_crash_spec("2").unwrap() == (2, 0.0));
        assert!(parse_crash_spec("3@0.5").unwrap() == (3, 0.5));
        assert!(parse_crash_spec("x").is_err());
        assert!(parse_crash_spec("1@y").is_err());
        let p = write_nest(ADI_SRC);
        let e = run_cli(&args(&[
            "run",
            p.to_str(),
            "--rect",
            "2,4,4",
            "--drop-rate",
            "1.5",
        ]))
        .unwrap_err();
        assert!(e.0.contains("--drop-rate"), "{e}");
    }

    #[test]
    fn bad_tile_spec_is_reported() {
        assert!(parse_tile_spec("1/x,0;0,1").is_err());
        assert!(parse_tile_spec("1,0;0").is_err());
        assert!(parse_tile_spec("1/0,0;0,1").is_err());
        assert!(parse_rect_spec("4,0").is_err());
        assert!(parse_rect_spec("a").is_err());
    }

    #[test]
    fn illegal_tiling_is_rejected_with_message() {
        let p = write_nest(ADI_SRC);
        let e = run_cli(&args(&[
            "run",
            p.to_str(),
            "--tile",
            "-1/2,0,0; 0,1/4,0; 0,0,1/4",
        ]))
        .unwrap_err();
        assert!(e.0.contains("tiling rejected"), "{e}");
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let p = write_nest(ADI_SRC);
        let e = run_cli(&args(&["run", p.to_str(), "--rect", "4,4"])).unwrap_err();
        assert!(e.0.contains("3-dimensional"), "{e}");
    }
}
