//! # tilecc-cli
//!
//! The command-line face of the framework — the analogue of the paper's
//! "tool which automatically generates MPI code":
//!
//! ```text
//! tilecc parse  nest.tcc                          # inspect the parsed model
//! tilecc cone   nest.tcc                          # tiling cone extreme rays
//! tilecc plan   nest.tcc --tile "1/4,0,0;0,1/4,0;-1/4,0,1/4" [--map 2]
//! tilecc run    nest.tcc --rect 4,4,4 [--verify] [--overlap]
//! tilecc run    --kernel heat3d.tk --rect 4,4,4,4 # kernel-DSL stencils
//! tilecc emit   nest.tcc --tile … > generated.c   # C/MPI source
//! ```
//!
//! Inputs are either `.tcc` nest files (single-array, paper §2.1 notation)
//! or `.tk` kernel-DSL files (arbitrary uniform-dependence stencils, multi
//! array; see `docs/kernel-dsl.md`). The extension selects the frontend;
//! `--kernel <file>` is the explicit spelling for DSL files.
//!
//! All logic lives in [`run_cli`] so it is directly testable; the binary is
//! a thin wrapper.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;
use tilecc::{Pipeline, RunSummary, TuneOptions};
use tilecc_cluster::obs::json::Json;
use tilecc_cluster::obs::RunReport as MetricsReport;
use tilecc_cluster::{
    collect_workers, collect_workers_observed, run_worker, CommError, CommScheme, CommStats,
    Counter, EngineOptions, ExportClock, FaultPlan, MachineModel, MetricsRegistry, Phase,
    RankPhase, RankTelemetry, RecoveryOptions, Rendezvous, RunError, StatsSnapshot, VirtAcc,
    WorkerCkptConfig, WorkerConfig, WorkerReport,
};
use tilecc_frontend::{compile, lower, parse, Program};
use tilecc_linalg::{RMat, Rational};
use tilecc_loopnest::{Algorithm, DataSpace};
use tilecc_parcode::{
    rank_data_points, run_rank_body, Backend, ExecMode, ExecStrategy, RankOutput,
};
use tilecc_tiling::tiling_cone_rays;

/// CLI error: message for the user, non-zero exit.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err<T>(msg: impl Into<String>) -> Result<T, CliError> {
    Err(CliError(msg.into()))
}

/// Crash policy (`--on-crash`): fail the run, or recover from per-rank
/// checkpoints — rewinding in place on the threaded backend, restarting
/// the world from checkpoint files on the TCP backend.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum OnCrash {
    /// A crashed rank fails the whole run (the default).
    Fail,
    /// Checkpoint every `--ckpt-interval` chain steps and recover crashed
    /// ranks, bounded by the `--max-recoveries` budget.
    Recover,
}

/// Parsed command-line options.
struct Options {
    tile: Option<RMat>,
    map: Option<usize>,
    verify: bool,
    overlap: bool,
    /// Tile execution strategy (`--strategy`): how each rank walks and
    /// communicates its tiles.
    strategy: ExecStrategy,
    model: MachineModel,
    /// Seed for deterministic fault injection (`--fault-seed`).
    fault_seed: Option<u64>,
    /// Per-attempt message drop probability (`--drop-rate`).
    drop_rate: Option<f64>,
    /// Rank to crash, with an optional `rank@time` virtual crash time
    /// (`--crash-rank`).
    crash: Option<(usize, f64)>,
    /// Write a Chrome trace-event JSON here (`--trace-out`).
    trace_out: Option<String>,
    /// Write the aggregated metrics JSON here (`--metrics-out`).
    metrics_out: Option<String>,
    /// Render a live per-rank telemetry table on stderr while the TCP
    /// driver collects results (`--live`).
    live: bool,
    /// Append newline-delimited telemetry snapshots here while the TCP
    /// driver runs (`--stats-out`).
    stats_out: Option<String>,
    /// Cluster backend carrying the messages (`--backend`).
    backend: Backend,
    /// Expected worker-process count for the TCP backend (`--ranks`).
    ranks: Option<usize>,
    /// Internal: run as TCP worker process for this rank (`--worker-rank`).
    worker_rank: Option<usize>,
    /// Internal: the driver's rendezvous `host:port` (`--connect`).
    connect: Option<String>,
    /// Crash policy (`--on-crash`).
    on_crash: OnCrash,
    /// Run-wide restore budget under `--on-crash recover`
    /// (`--max-recoveries`).
    max_recoveries: u64,
    /// Chain steps between checkpoints (`--ckpt-interval`).
    ckpt_interval: u64,
    /// Worker mesh listener bind address (`--bind-addr`).
    bind_addr: Option<String>,
    /// Worker heartbeat cadence in milliseconds (`--heartbeat-ms`).
    heartbeat_ms: Option<u64>,
    /// Driver-side dead-peer timeout in milliseconds (`--peer-timeout-ms`);
    /// `None` relies on socket EOF alone to detect dead workers.
    peer_timeout_ms: Option<u64>,
    /// Internal: directory holding per-rank checkpoint files (`--ckpt-dir`).
    ckpt_dir: Option<String>,
    /// Internal: restore the worker from its checkpoint file (`--resume`).
    resume: bool,
    /// Internal: restores this worker's rank has undergone (`--recovered`).
    recovered: u64,
}

impl Options {
    /// The fault plan implied by the fault flags, if any were given.
    fn fault_plan(&self) -> Option<FaultPlan> {
        if self.fault_seed.is_none() && self.drop_rate.is_none() && self.crash.is_none() {
            return None;
        }
        let mut plan =
            FaultPlan::lossy(self.fault_seed.unwrap_or(0), self.drop_rate.unwrap_or(0.0));
        if let Some((rank, at)) = self.crash {
            plan = plan.with_crash(rank, at);
        }
        Some(plan)
    }

    /// The engine-level recovery policy implied by `--on-crash`.
    fn recovery_options(&self) -> Option<RecoveryOptions> {
        (self.on_crash == OnCrash::Recover).then(|| RecoveryOptions {
            interval: self.ckpt_interval.max(1),
            max_recoveries: self.max_recoveries,
        })
    }
}

/// Parse `--crash-rank`'s `<rank>` or `<rank>@<time>` value.
fn parse_crash_spec(spec: &str) -> Result<(usize, f64), CliError> {
    let (rank_s, at_s) = match spec.split_once('@') {
        Some((r, t)) => (r, Some(t)),
        None => (spec, None),
    };
    let rank: usize = rank_s
        .trim()
        .parse()
        .map_err(|_| CliError(format!("invalid --crash-rank rank `{rank_s}`")))?;
    let at: f64 = match at_s {
        None => 0.0,
        Some(t) => t
            .trim()
            .parse()
            .map_err(|_| CliError(format!("invalid --crash-rank time `{t}`")))?,
    };
    Ok((rank, at))
}

/// Parse a tiling matrix specification: rows separated by `;`, entries by
/// `,`, each entry `a`, `-a`, `a/b` or `-a/b`.
pub fn parse_tile_spec(spec: &str) -> Result<RMat, CliError> {
    let rows: Vec<&str> = spec.split(';').map(str::trim).collect();
    if rows.is_empty() {
        return err("empty tile specification");
    }
    let mut parsed: Vec<Vec<Rational>> = Vec::with_capacity(rows.len());
    for row in &rows {
        let mut out = vec![];
        for entry in row.split(',') {
            let entry = entry.trim();
            let r = match entry.split_once('/') {
                Some((num, den)) => {
                    let n: i128 = num
                        .trim()
                        .parse()
                        .map_err(|_| CliError(format!("invalid numerator `{num}` in tile spec")))?;
                    let d: i128 = den.trim().parse().map_err(|_| {
                        CliError(format!("invalid denominator `{den}` in tile spec"))
                    })?;
                    if d == 0 {
                        return err("zero denominator in tile spec");
                    }
                    Rational::new(n, d)
                }
                None => {
                    let n: i128 = entry
                        .parse()
                        .map_err(|_| CliError(format!("invalid entry `{entry}` in tile spec")))?;
                    Rational::new(n, 1)
                }
            };
            out.push(r);
        }
        parsed.push(out);
    }
    let n = parsed.len();
    if parsed.iter().any(|r| r.len() != n) {
        return err("tile matrix must be square (rows `;`-separated, entries `,`-separated)");
    }
    Ok(RMat::from_fn(n, n, |i, j| parsed[i][j]))
}

/// Parse `--rect x,y,z` into a diagonal tiling matrix.
pub fn parse_rect_spec(spec: &str) -> Result<RMat, CliError> {
    let sizes: Result<Vec<i64>, _> = spec.split(',').map(|s| s.trim().parse::<i64>()).collect();
    let sizes = sizes.map_err(|_| CliError(format!("invalid --rect sizes `{spec}`")))?;
    if sizes.iter().any(|&s| s <= 0) {
        return err("--rect sizes must be positive");
    }
    let n = sizes.len();
    Ok(RMat::from_fn(n, n, |i, j| {
        if i == j {
            Rational::new(1, sizes[i] as i128)
        } else {
            Rational::ZERO
        }
    }))
}

/// Parsed `tune` options: tuner configuration plus CLI-only presentation.
struct TuneCliOptions {
    opts: TuneOptions,
    /// Ranking rows to print (`--top`).
    top: usize,
    /// Write the machine-readable outcome here (`--json`).
    json_out: Option<String>,
}

fn parse_tune_options(args: &[String], n: usize) -> Result<TuneCliOptions, CliError> {
    let mut volume: Option<i64> = None;
    let mut m = 0usize;
    let mut include: Vec<RMat> = vec![];
    let mut top = 10usize;
    let mut max_candidates = 128usize;
    let mut json_out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let value = |what: &str| {
            args.get(i + 1)
                .ok_or_else(|| CliError(format!("{} needs {what}", args[i])))
        };
        match args[i].as_str() {
            "--volume" => {
                let v: i64 = value("a tile volume")?
                    .parse()
                    .map_err(|_| CliError("--volume must be an integer".into()))?;
                if v <= 0 {
                    return err("--volume must be positive");
                }
                volume = Some(v);
                i += 2;
            }
            "--map" => {
                m = value("a dimension index")?
                    .parse()
                    .map_err(|_| CliError("--map must be a dimension index".into()))?;
                i += 2;
            }
            "--tile" => {
                include.push(parse_tile_spec(value("a tiling matrix")?)?);
                i += 2;
            }
            "--rect" => {
                include.push(parse_rect_spec(value("edge sizes")?)?);
                i += 2;
            }
            "--top" => {
                top = value("a row count")?
                    .parse()
                    .map_err(|_| CliError("--top must be an integer".into()))?;
                i += 2;
            }
            "--max-candidates" => {
                max_candidates = value("a candidate count")?
                    .parse()
                    .map_err(|_| CliError("--max-candidates must be an integer".into()))?;
                i += 2;
            }
            "--json" => {
                json_out = Some(value("a file path")?.clone());
                i += 2;
            }
            other => return err(format!("unknown tune option `{other}`")),
        }
    }
    let volume = volume.ok_or(CliError("tune needs --volume <n>".into()))?;
    if m >= n {
        return err(format!("--map {m} out of range for a {n}-dimensional nest"));
    }
    for h in &include {
        if h.rows() != n {
            return err(format!(
                "seed tile matrix is {}×{} but the nest is {n}-dimensional",
                h.rows(),
                h.cols()
            ));
        }
    }
    let mut opts = TuneOptions::new(volume, m);
    opts.max_candidates = max_candidates;
    opts.include = include;
    Ok(TuneCliOptions {
        opts,
        top,
        json_out,
    })
}

fn parse_options(args: &[String]) -> Result<Options, CliError> {
    let mut o = Options {
        tile: None,
        map: None,
        verify: false,
        overlap: false,
        strategy: ExecStrategy::default(),
        model: MachineModel::fast_ethernet_p3(),
        fault_seed: None,
        drop_rate: None,
        crash: None,
        trace_out: None,
        metrics_out: None,
        live: false,
        stats_out: None,
        backend: Backend::default(),
        ranks: None,
        worker_rank: None,
        connect: None,
        on_crash: OnCrash::Fail,
        max_recoveries: 1,
        ckpt_interval: 4,
        bind_addr: None,
        heartbeat_ms: None,
        peer_timeout_ms: None,
        ckpt_dir: None,
        resume: false,
        recovered: 0,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--tile" => {
                let spec = args
                    .get(i + 1)
                    .ok_or(CliError("--tile needs a value".into()))?;
                o.tile = Some(parse_tile_spec(spec)?);
                i += 2;
            }
            "--rect" => {
                let spec = args
                    .get(i + 1)
                    .ok_or(CliError("--rect needs a value".into()))?;
                o.tile = Some(parse_rect_spec(spec)?);
                i += 2;
            }
            "--map" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--map needs a value".into()))?;
                o.map = Some(
                    v.parse()
                        .map_err(|_| CliError(format!("invalid --map value `{v}`")))?,
                );
                i += 2;
            }
            "--verify" => {
                o.verify = true;
                i += 1;
            }
            "--overlap" => {
                o.overlap = true;
                i += 1;
            }
            "--strategy" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--strategy needs a value".into()))?;
                o.strategy = match v.as_str() {
                    "compiled" => ExecStrategy::Compiled,
                    "reference" => ExecStrategy::Reference,
                    "overlapped" => ExecStrategy::Overlapped,
                    other => {
                        return err(format!(
                            "unknown --strategy `{other}` (expected compiled, reference, or overlapped)"
                        ))
                    }
                };
                i += 2;
            }
            "--zero-comm" => {
                o.model = MachineModel::zero_comm(o.model.compute_per_iter);
                i += 1;
            }
            "--fault-seed" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--fault-seed needs a value".into()))?;
                o.fault_seed = Some(
                    v.parse()
                        .map_err(|_| CliError(format!("invalid --fault-seed value `{v}`")))?,
                );
                i += 2;
            }
            "--drop-rate" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--drop-rate needs a value".into()))?;
                let rate: f64 = v
                    .parse()
                    .map_err(|_| CliError(format!("invalid --drop-rate value `{v}`")))?;
                if !(0.0..1.0).contains(&rate) {
                    return err("--drop-rate must be in [0, 1)");
                }
                o.drop_rate = Some(rate);
                i += 2;
            }
            "--crash-rank" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--crash-rank needs a value".into()))?;
                o.crash = Some(parse_crash_spec(v)?);
                i += 2;
            }
            "--backend" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--backend needs a value".into()))?;
                o.backend = match v.as_str() {
                    "threaded" => Backend::Threaded,
                    "tcp" => Backend::Tcp,
                    other => {
                        return err(format!(
                            "unknown --backend `{other}` (expected threaded or tcp)"
                        ))
                    }
                };
                i += 2;
            }
            "--ranks" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--ranks needs a value".into()))?;
                o.ranks = Some(
                    v.parse()
                        .map_err(|_| CliError(format!("invalid --ranks value `{v}`")))?,
                );
                i += 2;
            }
            "--worker-rank" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--worker-rank needs a value".into()))?;
                o.worker_rank = Some(
                    v.parse()
                        .map_err(|_| CliError(format!("invalid --worker-rank value `{v}`")))?,
                );
                i += 2;
            }
            "--connect" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--connect needs a host:port value".into()))?;
                o.connect = Some(v.clone());
                i += 2;
            }
            "--on-crash" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--on-crash needs a value".into()))?;
                o.on_crash = match v.as_str() {
                    "fail" => OnCrash::Fail,
                    "recover" => OnCrash::Recover,
                    other => {
                        return err(format!(
                            "unknown --on-crash `{other}` (expected fail or recover)"
                        ))
                    }
                };
                i += 2;
            }
            "--max-recoveries" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--max-recoveries needs a value".into()))?;
                o.max_recoveries = v
                    .parse()
                    .map_err(|_| CliError(format!("invalid --max-recoveries value `{v}`")))?;
                i += 2;
            }
            "--ckpt-interval" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--ckpt-interval needs a value".into()))?;
                let k: u64 = v
                    .parse()
                    .map_err(|_| CliError(format!("invalid --ckpt-interval value `{v}`")))?;
                if k == 0 {
                    return err("--ckpt-interval must be at least 1");
                }
                o.ckpt_interval = k;
                i += 2;
            }
            "--bind-addr" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--bind-addr needs a host:port value".into()))?;
                o.bind_addr = Some(v.clone());
                i += 2;
            }
            "--heartbeat-ms" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--heartbeat-ms needs a value".into()))?;
                let ms: u64 = v
                    .parse()
                    .map_err(|_| CliError(format!("invalid --heartbeat-ms value `{v}`")))?;
                if ms == 0 {
                    return err("--heartbeat-ms must be at least 1");
                }
                o.heartbeat_ms = Some(ms);
                i += 2;
            }
            "--peer-timeout-ms" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--peer-timeout-ms needs a value".into()))?;
                o.peer_timeout_ms = Some(
                    v.parse()
                        .map_err(|_| CliError(format!("invalid --peer-timeout-ms value `{v}`")))?,
                );
                i += 2;
            }
            "--ckpt-dir" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--ckpt-dir needs a directory".into()))?;
                o.ckpt_dir = Some(v.clone());
                i += 2;
            }
            "--resume" => {
                o.resume = true;
                i += 1;
            }
            "--recovered" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--recovered needs a value".into()))?;
                o.recovered = v
                    .parse()
                    .map_err(|_| CliError(format!("invalid --recovered value `{v}`")))?;
                i += 2;
            }
            "--trace-out" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--trace-out needs a file path".into()))?;
                o.trace_out = Some(v.clone());
                i += 2;
            }
            "--metrics-out" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--metrics-out needs a file path".into()))?;
                o.metrics_out = Some(v.clone());
                i += 2;
            }
            "--live" => {
                o.live = true;
                i += 1;
            }
            "--stats-out" => {
                let v = args
                    .get(i + 1)
                    .ok_or(CliError("--stats-out needs a file path".into()))?;
                o.stats_out = Some(v.clone());
                i += 2;
            }
            other => return err(format!("unknown option `{other}`")),
        }
    }
    Ok(o)
}

fn load(path: &str) -> Result<Algorithm, CliError> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read `{path}`: {e}")))?;
    if path.ends_with(".tk") {
        // Kernel DSL: errors carry line:col and render a caret snippet.
        tilecc_frontend::compile_kernel(&src).map_err(|e| CliError(e.render(path, &src)))
    } else {
        compile(&src).map_err(|e| CliError(format!("{path}: {e}")))
    }
}

/// The input file of a command: either the first positional argument or the
/// explicit `--kernel <file>` form. Returns the path and the index where
/// the remaining options start.
fn input_path(args: &[String]) -> Result<(&str, usize), CliError> {
    match args.get(1).map(String::as_str) {
        Some("--kernel") => args
            .get(2)
            .map(|p| (p.as_str(), 3))
            .ok_or_else(|| CliError("--kernel needs a file path".into())),
        Some(p) => Ok((p, 2)),
        None => Err(CliError(USAGE.into())),
    }
}

fn load_program(path: &str) -> Result<Program, CliError> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read `{path}`: {e}")))?;
    parse(&src).map_err(|e| CliError(format!("{path}: {e}")))
}

/// Build the C kernel/boundary source from the parsed program. Skewed
/// programs get a prelude computing the original coordinates `jo` via the
/// inverse skewing matrix, since the generated code iterates in skewed
/// coordinates.
fn kernel_source(program: &Program) -> tilecc_parcode::KernelSource {
    use std::fmt::Write as _;
    let (coord, prelude) = match &program.skew {
        None => ("j".to_string(), String::new()),
        Some(rows) => {
            let n = program.dim();
            let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
            let t = tilecc_linalg::IMat::from_rows(&refs);
            let tinv = t.inverse().to_imat();
            let mut pre = String::new();
            let _ = writeln!(pre, "    long jo[{n}];");
            for r in 0..n {
                let terms: Vec<String> = (0..n)
                    .filter(|&k| tinv[(r, k)] != 0)
                    .map(|k| format!("({}L * j[{k}])", tinv[(r, k)]))
                    .collect();
                let rhs = if terms.is_empty() {
                    "0".to_string()
                } else {
                    terms.join(" + ")
                };
                let _ = writeln!(pre, "    jo[{r}] = {rhs};");
            }
            pre.push_str("    (void)jo;");
            ("jo".to_string(), pre)
        }
    };
    tilecc_parcode::KernelSource {
        prelude,
        body: program.body.to_c(&coord),
        boundary: program.boundary.to_c(&coord),
    }
}

/// Render a saved `tilecc-metrics-v1` JSON file (written by
/// `--metrics-out`) as the textual run summary.
fn render_saved_metrics(path: &str) -> Result<String, CliError> {
    let j = load_saved_metrics(path)?;
    let makespan = j
        .get("makespan")
        .and_then(Json::as_f64)
        .ok_or_else(|| CliError(format!("{path}: missing makespan")))?;
    let ranks = j
        .get("ranks")
        .and_then(Json::as_arr)
        .ok_or_else(|| CliError(format!("{path}: missing ranks")))?;
    let field = |r: &Json, k: &str| r.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    let counter = |r: &Json, k: &str| {
        r.get("counters")
            .and_then(|c| c.get(k))
            .and_then(Json::as_u64)
            .unwrap_or(0)
    };
    let mut out = String::new();
    let n = ranks.len();
    let _ = writeln!(
        out,
        "run report: {n} rank{}, makespan {makespan:.6} s",
        if n == 1 { "" } else { "s" }
    );
    let (mut tc, mut tw, mut tm, mut tt) = (0.0, 0.0, 0.0, 0.0);
    for r in ranks {
        tc += field(r, "compute");
        tw += field(r, "wait");
        tm += field(r, "comm");
        tt += field(r, "local_time");
    }
    if tt > 0.0 {
        let _ = writeln!(
            out,
            "  split      : compute {:.1}%  wait {:.1}%  comm {:.1}%  (of total rank time)",
            100.0 * tc / tt,
            100.0 * tw / tt,
            100.0 * tm / tt
        );
    }
    let total = |k: &str| ranks.iter().map(|r| counter(r, k)).sum::<u64>();
    let _ = writeln!(
        out,
        "  traffic    : {} messages, {} bytes on the wire, {} retransmits, {} dups suppressed",
        total("messages_sent"),
        total("bytes_sent"),
        total("retransmits"),
        total("dups_suppressed"),
    );
    let _ = writeln!(
        out,
        "  tiles      : {} ({} interior, {} boundary), {} iterations",
        total("tiles"),
        total("interior_tiles"),
        total("boundary_tiles"),
        total("iterations"),
    );
    for r in ranks {
        let local = field(r, "local_time");
        let _ = writeln!(
            out,
            "  rank {:>3}   : {:.6} s  compute {:.6}  wait {:.6}  comm {:.6}  util {:>5.1}%",
            r.get("rank").and_then(Json::as_u64).unwrap_or(0),
            local,
            field(r, "compute"),
            field(r, "wait"),
            field(r, "comm"),
            100.0 * field(r, "utilization"),
        );
    }
    if let Some(cp) = j.get("critical_path") {
        let length = cp.get("length").and_then(Json::as_f64).unwrap_or(0.0);
        let hops = cp.get("hops").and_then(Json::as_arr).map_or(&[][..], |h| h);
        let cross = hops
            .iter()
            .filter(|h| h.get("from_rank").and_then(Json::as_u64).is_some())
            .count();
        let _ = writeln!(
            out,
            "  critical   : {length:.6} s dependency chain, {} hops ({cross} cross-rank)",
            hops.len(),
        );
        const SHOWN: usize = 16;
        for h in hops.iter().take(SHOWN) {
            let start = field(h, "start");
            let end = field(h, "end");
            let via = match h.get("from_rank").and_then(Json::as_u64) {
                Some(s) => format!("  <- rank {s}"),
                None => String::new(),
            };
            let _ = writeln!(
                out,
                "    {:>12.6} .. {:>12.6}  rank {:>3}  {:<8} {:.6} s{via}",
                start,
                end,
                h.get("rank").and_then(Json::as_u64).unwrap_or(0),
                h.get("phase").and_then(Json::as_str).unwrap_or("?"),
                end - start,
            );
        }
        if hops.len() > SHOWN {
            let _ = writeln!(out, "    ... {} more hops", hops.len() - SHOWN);
        }
    }
    Ok(out)
}

/// Load a saved `tilecc-metrics-v1` file and validate its schema line.
fn load_saved_metrics(path: &str) -> Result<Json, CliError> {
    let src = std::fs::read_to_string(path)
        .map_err(|e| CliError(format!("cannot read `{path}`: {e}")))?;
    let j = tilecc_cluster::obs::json::parse(&src).map_err(|e| CliError(format!("{path}: {e}")))?;
    let schema = j.get("schema").and_then(Json::as_str);
    if schema != Some("tilecc-metrics-v1") {
        return err(format!(
            "{path}: unsupported metrics schema {schema:?} (expected \"tilecc-metrics-v1\")"
        ));
    }
    Ok(j)
}

/// Compare the deterministic subset of two saved metrics files — the
/// JSON-level mirror of `RunReport::deterministic_diff`: makespan, every
/// rank's clock-partition terms and utilization, and every logical counter.
/// Gauges, histograms and the transport-local checkpoint-persistence
/// counters (`ckpt_writes`, `ckpt_write_bytes`) legitimately differ between
/// backends and are skipped. Mismatches are a [`CliError`] (nonzero exit).
fn diff_saved_metrics(path_a: &str, path_b: &str) -> Result<String, CliError> {
    let a = load_saved_metrics(path_a)?;
    let b = load_saved_metrics(path_b)?;
    let mut diffs: Vec<String> = Vec::new();
    let f = |j: &Json, k: &str| j.get(k).and_then(Json::as_f64).unwrap_or(0.0);
    let ma = f(&a, "makespan");
    let mb = f(&b, "makespan");
    if ma.to_bits() != mb.to_bits() {
        diffs.push(format!("makespan: {ma:.9} vs {mb:.9}"));
    }
    let empty: Vec<Json> = Vec::new();
    let ranks_a = a.get("ranks").and_then(Json::as_arr).unwrap_or(&empty);
    let ranks_b = b.get("ranks").and_then(Json::as_arr).unwrap_or(&empty);
    if ranks_a.len() != ranks_b.len() {
        diffs.push(format!(
            "rank count: {} vs {}",
            ranks_a.len(),
            ranks_b.len()
        ));
    }
    for (r, (ra, rb)) in ranks_a.iter().zip(ranks_b).enumerate() {
        for k in [
            "local_time",
            "compute",
            "wait",
            "comm",
            "recovery",
            "overlap_hidden",
            "utilization",
        ] {
            let (x, y) = (f(ra, k), f(rb, k));
            if x.to_bits() != y.to_bits() {
                diffs.push(format!("rank {r} {k}: {x:.9} vs {y:.9}"));
            }
        }
        for c in Counter::ALL {
            if matches!(c, Counter::CkptWrites | Counter::CkptBytes) {
                continue;
            }
            let get = |j: &Json| {
                j.get("counters")
                    .and_then(|cs| cs.get(c.name()))
                    .and_then(Json::as_u64)
                    .unwrap_or(0)
            };
            let (x, y) = (get(ra), get(rb));
            if x != y {
                diffs.push(format!("rank {r} {}: {x} vs {y}", c.name()));
            }
        }
    }
    if diffs.is_empty() {
        Ok(format!(
            "reports agree on the deterministic subset ({} ranks, makespan {ma:.6} s)\n",
            ranks_a.len()
        ))
    } else {
        err(format!(
            "{path_a} and {path_b} disagree on the deterministic subset:\n  {}",
            diffs.join("\n  ")
        ))
    }
}

/// How long the TCP driver waits for every worker to reach the rendezvous.
const RENDEZVOUS_DEADLINE: Duration = Duration::from_secs(30);
/// Wall-clock cap on a whole multi-process run (driver side).
const DRIVER_WALL_CAP: Duration = Duration::from_secs(300);

/// Print the run summary lines shared by every backend. `checksum` is the
/// gathered data-space checksum (full-mode runs only); printing it lets two
/// backends be compared for bitwise-identical results from their stdout.
fn render_run_summary(
    out: &mut String,
    opts: &Options,
    summary: &RunSummary,
    checksum: Option<f64>,
) -> Result<(), CliError> {
    if opts.strategy != ExecStrategy::default() {
        let _ = writeln!(out, "strategy   : {:?}", opts.strategy);
    }
    if opts.backend == Backend::Tcp {
        let _ = writeln!(out, "backend    : tcp ({} worker processes)", summary.procs);
    }
    let _ = writeln!(out, "processors : {}", summary.procs);
    let _ = writeln!(out, "iterations : {}", summary.iterations);
    let _ = writeln!(out, "seq time   : {:.6} s", summary.sequential_time);
    let _ = writeln!(out, "makespan   : {:.6} s", summary.makespan);
    let _ = writeln!(out, "speedup    : {:.3}", summary.speedup);
    let _ = writeln!(out, "messages   : {}", summary.messages);
    let _ = writeln!(out, "bytes      : {}", summary.bytes);
    if summary.retransmissions > 0 || summary.duplicates_suppressed > 0 {
        let _ = writeln!(out, "retransmits: {}", summary.retransmissions);
        let _ = writeln!(out, "dups suppr : {}", summary.duplicates_suppressed);
    }
    if summary.recoveries > 0 {
        let _ = writeln!(out, "recoveries : {}", summary.recoveries);
        let _ = writeln!(out, "rec time   : {:.6} s", summary.recovery_time);
    }
    if let Some(c) = checksum {
        let _ = writeln!(out, "checksum   : {:016x}", c.to_bits());
    }
    if let Some(v) = summary.verified {
        let _ = writeln!(out, "verified   : {v}");
        if !v {
            return err("verification FAILED: parallel result differs");
        }
    }
    Ok(())
}

/// A TCP worker's decoded `RESULT` payload (see `docs/wire-protocol.md`,
/// "Worker RESULT payload"): its comm statistics, iteration count, and — in
/// full mode — the data points of the tiles it owns.
struct WorkerPayload {
    stats: CommStats,
    iterations: u64,
    cells: Option<Vec<(Vec<i64>, Vec<f64>)>>,
}

/// Serialize a worker's `RESULT` payload. All fields little-endian; `f64`s
/// travel as IEEE-754 bit patterns so the driver rebuilds values bitwise.
fn encode_worker_payload(
    stats: &CommStats,
    iterations: u64,
    cells: Option<&[(Vec<i64>, Vec<f64>)]>,
) -> Vec<u8> {
    let mut buf = Vec::new();
    for v in [
        stats.messages_sent,
        stats.bytes_sent,
        stats.messages_received,
        stats.bytes_received,
    ] {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf.extend_from_slice(&stats.wait_time.to_le_bytes());
    buf.extend_from_slice(&stats.compute_time.to_le_bytes());
    buf.extend_from_slice(&stats.retransmissions.to_le_bytes());
    buf.extend_from_slice(&stats.retrans_time.to_le_bytes());
    buf.extend_from_slice(&stats.duplicates_suppressed.to_le_bytes());
    buf.extend_from_slice(&stats.recoveries.to_le_bytes());
    buf.extend_from_slice(&stats.recovery_time.to_le_bytes());
    buf.extend_from_slice(&iterations.to_le_bytes());
    match cells {
        None => buf.push(0),
        Some(points) => {
            buf.push(1);
            let n = points.first().map_or(0, |(j, _)| j.len()) as u32;
            let w = points.first().map_or(0, |(_, v)| v.len()) as u32;
            buf.extend_from_slice(&n.to_le_bytes());
            buf.extend_from_slice(&w.to_le_bytes());
            buf.extend_from_slice(&(points.len() as u64).to_le_bytes());
            for (j, vals) in points {
                for c in j {
                    buf.extend_from_slice(&c.to_le_bytes());
                }
                for v in vals {
                    buf.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
    }
    buf
}

/// Cursor over a `RESULT` payload; every read is bounds-checked so a
/// malformed worker payload surfaces as an error, never a panic.
struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| format!("payload truncated at byte {}", self.pos))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }
    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
    fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }
}

/// Inverse of [`encode_worker_payload`].
fn decode_worker_payload(buf: &[u8]) -> Result<WorkerPayload, String> {
    let mut r = PayloadReader { buf, pos: 0 };
    let stats = CommStats {
        messages_sent: r.u64()?,
        bytes_sent: r.u64()?,
        messages_received: r.u64()?,
        bytes_received: r.u64()?,
        wait_time: r.f64()?,
        compute_time: r.f64()?,
        retransmissions: r.u64()?,
        retrans_time: r.f64()?,
        duplicates_suppressed: r.u64()?,
        recoveries: r.u64()?,
        recovery_time: r.f64()?,
    };
    let iterations = r.u64()?;
    let cells = match r.u8()? {
        0 => None,
        1 => {
            let n = r.u32()? as usize;
            let w = r.u32()? as usize;
            let count = r.u64()? as usize;
            // Reject sizes the remaining bytes cannot possibly hold before
            // allocating anything.
            let per = 8usize
                .checked_mul(n + w)
                .ok_or("cell size overflow".to_string())?;
            if count
                .checked_mul(per)
                .is_none_or(|total| total > buf.len() - r.pos)
            {
                return Err(format!("cell table claims {count} cells of {per} bytes"));
            }
            let mut points = Vec::with_capacity(count);
            for _ in 0..count {
                let mut j = Vec::with_capacity(n);
                for _ in 0..n {
                    j.push(r.i64()?);
                }
                let mut vals = Vec::with_capacity(w);
                for _ in 0..w {
                    vals.push(r.f64()?);
                }
                points.push((j, vals));
            }
            Some(points)
        }
        k => return Err(format!("unknown cell-table marker {k}")),
    };
    if r.pos != buf.len() {
        return Err(format!(
            "{} trailing bytes after payload",
            buf.len() - r.pos
        ));
    }
    Ok(WorkerPayload {
        stats,
        iterations,
        cells,
    })
}

/// The comm scheme, fault plan and execution mode implied by the run flags —
/// identical for the worker, the driver, and the in-process path so every
/// backend executes the same program.
fn engine_setup(opts: &Options) -> (CommScheme, Option<FaultPlan>, ExecMode) {
    // The overlapped strategy implies the overlapped scheme, mirroring
    // `execute_backend`.
    let scheme = if opts.overlap || opts.strategy == ExecStrategy::Overlapped {
        CommScheme::Overlapped
    } else {
        CommScheme::Blocking
    };
    let fault = opts.fault_plan();
    let mode = if opts.verify || fault.is_some() {
        ExecMode::Full
    } else {
        ExecMode::TimingOnly
    };
    (scheme, fault, mode)
}

/// Run as a TCP worker process (`--worker-rank R --connect host:port`):
/// recompile the plan deterministically, execute this rank's chain over the
/// socket mesh, report the `RESULT` frame, and wait for the driver's `BYE`.
/// Failures exit nonzero with the typed [`tilecc_cluster::RunError`] text
/// naming the implicated rank.
fn tcp_worker(
    pipe: &Pipeline,
    opts: &Options,
    rank: usize,
    reg: Option<Arc<MetricsRegistry>>,
) -> Result<String, CliError> {
    let Some(connect) = opts.connect.clone() else {
        return err("--worker-rank requires --connect <host:port>");
    };
    let size = pipe.num_procs();
    if rank >= size {
        return err(format!(
            "--worker-rank {rank} out of range for a {size}-processor plan"
        ));
    }
    let (scheme, fault, mode) = engine_setup(opts);
    let options = EngineOptions {
        scheme,
        fault,
        obs: reg.clone(),
        // The multi-process watchdog lives in the driver; workers just
        // stream progress heartbeats.
        wall_timeout: None,
        deadlock_detection: false,
        ..EngineOptions::default()
    };
    let mut cfg = WorkerConfig::new(rank, size, connect, opts.model, options);
    if let Some(bind) = &opts.bind_addr {
        cfg.bind_addr = bind.clone();
    }
    if let Some(ms) = opts.heartbeat_ms {
        cfg.heartbeat = Duration::from_millis(ms);
    }
    if let Some(dir) = &opts.ckpt_dir {
        // The driver hands every worker the shared checkpoint directory;
        // each rank owns one file in it.
        cfg.ckpt = Some(WorkerCkptConfig {
            path: std::path::Path::new(dir).join(format!("rank{rank}.ckpt")),
            interval: opts.ckpt_interval.max(1),
            resume: opts.resume,
            recovered: opts.recovered,
        });
    }
    let plan = pipe.plan().clone();
    let strategy = opts.strategy;
    let (result, local_time, stats, handle): (RankOutput, f64, CommStats, _) =
        run_worker(&cfg, move |comm| run_rank_body(&plan, comm, mode, strategy)).map_err(|e| {
            CliError(format!(
                "worker rank {rank} failed: {e}\nranks implicated: {:?}",
                e.ranks()
            ))
        })?;
    let cells = (mode == ExecMode::Full).then(|| rank_data_points(pipe.plan(), rank, &result));
    let payload = encode_worker_payload(&stats, result.iterations, cells.as_deref());
    if let Some(reg) = &reg {
        // Final absolute snapshot, sent before RESULT on the ordered
        // control socket: the driver merges these into one report that is
        // bitwise identical to a registry-built one.
        let snap = StatsSnapshot::capture(&reg.rank_metrics(rank));
        handle
            .send_stats(&snap)
            .map_err(|e| CliError(format!("worker rank {rank}: cannot report stats: {e}")))?;
    }
    handle
        .send_result(local_time, payload)
        .map_err(|e| CliError(format!("worker rank {rank}: cannot report result: {e}")))?;
    if let Some(reg) = &reg {
        // Per-worker artifacts: rank metrics live in this process only, so
        // each worker writes `<path>.rank<R>` next to the requested path.
        let mut local_times = vec![0.0; size];
        local_times[rank] = local_time;
        if let Some(path) = &opts.trace_out {
            let p = format!("{path}.rank{rank}");
            std::fs::write(&p, reg.chrome_trace())
                .map_err(|e| CliError(format!("cannot write trace to `{p}`: {e}")))?;
        }
        if let Some(path) = &opts.metrics_out {
            let p = format!("{path}.rank{rank}");
            std::fs::write(&p, reg.run_report(&local_times).to_json())
                .map_err(|e| CliError(format!("cannot write metrics to `{p}`: {e}")))?;
        }
    }
    handle
        .wait_bye()
        .map_err(|e| CliError(format!("worker rank {rank}: driver went away: {e}")))?;
    // The driver owns stdout; a worker prints nothing on success.
    Ok(String::new())
}

/// Kill and reap every spawned worker — the driver's cleanup on any failure
/// path, so no orphan processes outlive a failed run.
fn kill_children(children: &mut [std::process::Child]) {
    for c in children.iter_mut() {
        let _ = c.kill();
    }
    for c in children.iter_mut() {
        let _ = c.wait();
    }
}

/// The rank whose death explains a failed collection, if the failure is
/// attributable to a single crashed worker — the precondition for a
/// restart-the-world recovery. Deadlocks, wall timeouts, and transport
/// failures outside an established link are not recoverable by respawn.
fn crashed_rank_of(e: &RunError) -> Option<usize> {
    match e {
        RunError::RankPanicked { rank, .. } => Some(*rank),
        RunError::Comm {
            error: CommError::PeerDisconnected { rank },
            ..
        } => Some(*rank),
        RunError::Comm {
            error: CommError::Disconnected { peer },
            ..
        } => Some(*peer),
        _ => None,
    }
}

/// Bounded exponential backoff between restart attempts: 200 ms doubling
/// per restart, capped at 2 s.
fn restart_backoff(restarts: u32) -> Duration {
    let ms = 100u64.saturating_mul(1u64 << restarts.min(5));
    Duration::from_millis(ms.min(2000))
}

/// The live-table phase column for one rank's telemetry row.
fn telemetry_phase(t: &RankTelemetry) -> String {
    if t.done {
        return "done".into();
    }
    match t.phase {
        RankPhase::Running => "running".into(),
        RankPhase::Blocked { from, tag } => format!("recv<-{from}#{tag}"),
        RankPhase::Done => "done".into(),
    }
}

/// Render the `--live` per-rank table. When `redraw` lines were drawn
/// before (stderr is a terminal), the cursor jumps back up and overwrites
/// them in place; otherwise the table is appended. Returns the number of
/// lines drawn.
fn render_live_table(ranks: &[RankTelemetry], redraw: usize) -> usize {
    use std::io::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "\x1b[2K{:>4}  {:<14} {:>12} {:>6} {:>6} {:>6} {:>12} {:>7} {:>4}",
        "rank", "phase", "clock", "comp%", "wait%", "comm%", "bytes", "retx", "rec"
    );
    for t in ranks {
        let phase = telemetry_phase(t);
        match &t.stats {
            Some(st) => {
                let clock = st.local_clock();
                let pct = |v: f64| if clock > 0.0 { 100.0 * v / clock } else { 0.0 };
                let comm = st.virt(VirtAcc::Send)
                    + st.virt(VirtAcc::RecvOverhead)
                    + st.virt(VirtAcc::Retrans)
                    + st.virt(VirtAcc::Drain);
                let _ = writeln!(
                    s,
                    "\x1b[2K{:>4}  {:<14} {:>12.6} {:>6.1} {:>6.1} {:>6.1} {:>12} {:>7} {:>4}",
                    t.rank,
                    phase,
                    clock,
                    pct(st.virt(VirtAcc::Compute)),
                    pct(st.virt(VirtAcc::Wait) + st.virt(VirtAcc::Stall)),
                    pct(comm),
                    st.counter(Counter::BytesSent),
                    st.counter(Counter::Retransmits),
                    st.counter(Counter::Recoveries),
                );
            }
            None => {
                let _ = writeln!(
                    s,
                    "\x1b[2K{:>4}  {:<14} {:>12} (no snapshot yet)",
                    t.rank, phase, "-"
                );
            }
        }
    }
    let lines = ranks.len() + 1;
    let stderr = std::io::stderr();
    let mut h = stderr.lock();
    if redraw > 0 {
        let _ = write!(h, "\x1b[{redraw}A\r");
    }
    let _ = h.write_all(s.as_bytes());
    let _ = h.flush();
    lines
}

/// One `--stats-out` NDJSON record: the driver's wall-clock offset plus
/// every rank's phase, heartbeat progress, and decoded snapshot (clock
/// partition terms and the counters the live table shows).
fn stats_ndjson_line(wall_ms: u128, ranks: &[RankTelemetry]) -> String {
    let mut s = String::new();
    let _ = write!(s, "{{\"t_wall_ms\": {wall_ms}, \"ranks\": [");
    for (i, t) in ranks.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(
            s,
            "{{\"rank\": {}, \"phase\": \"{}\", \"progress\": {}, \"seq\": {}",
            t.rank,
            telemetry_phase(t),
            t.progress,
            t.stats_seq
        );
        if let Some(st) = &t.stats {
            let comm = st.virt(VirtAcc::Send)
                + st.virt(VirtAcc::RecvOverhead)
                + st.virt(VirtAcc::Retrans)
                + st.virt(VirtAcc::Drain);
            let _ = write!(
                s,
                ", \"clock\": {:.9}, \"compute\": {:.9}, \"wait\": {:.9}, \"comm\": {:.9}, \
                 \"recovery\": {:.9}, \"bytes_sent\": {}, \"retransmits\": {}, \
                 \"recoveries\": {}, \"ckpt_writes\": {}",
                st.local_clock(),
                st.virt(VirtAcc::Compute),
                st.virt(VirtAcc::Wait) + st.virt(VirtAcc::Stall),
                comm,
                st.virt(VirtAcc::Recovery),
                st.counter(Counter::BytesSent),
                st.counter(Counter::Retransmits),
                st.counter(Counter::Recoveries),
                st.counter(Counter::CkptWrites),
            );
        }
        s.push('}');
    }
    s.push_str("]}");
    s
}

/// Run as the TCP driver: spawn one worker process per rank of the plan,
/// coordinate the rendezvous, collect every `RESULT`, rebuild the global
/// data space, and print the same summary the threaded backend prints.
fn tcp_driver(
    path: &str,
    run_args: &[String],
    pipe: &Pipeline,
    opts: &Options,
    mut out: String,
) -> Result<String, CliError> {
    let size = pipe.num_procs();
    if let Some(r) = opts.ranks {
        if r != size {
            return err(format!(
                "--ranks {r} does not match the plan's {size} processors; \
                 adjust --rect/--tile/--map or drop --ranks"
            ));
        }
    }
    let (_, _, mode) = engine_setup(opts);

    // Respawn this binary once per rank, forwarding the run options and
    // appending the worker coordinates. `TILECC_BIN` overrides the binary
    // for callers embedding `run_cli` outside the installed executable.
    let exe = std::env::var_os("TILECC_BIN")
        .map(|v| Ok(std::path::PathBuf::from(v)))
        .unwrap_or_else(std::env::current_exe)
        .map_err(|e| CliError(format!("cannot locate the tilecc binary: {e}")))?;
    let mut forwarded: Vec<&String> = Vec::new();
    let mut i = 0;
    while i < run_args.len() {
        match run_args[i].as_str() {
            // Workers derive the world size from the plan; the recovery
            // coordinates below are appended per worker by the driver.
            "--ranks" | "--ckpt-dir" | "--recovered" => i += 2,
            "--resume" => i += 1,
            _ => {
                forwarded.push(&run_args[i]);
                i += 1;
            }
        }
    }

    // Under `--on-crash recover` every worker checkpoints into a shared
    // directory, and a dead worker triggers a restart of the whole world
    // from those files (restart-the-world keeps the virtual clocks exact).
    let recover = opts.on_crash == OnCrash::Recover;
    let ckpt_dir: Option<PathBuf> = if recover {
        static RUN_ID: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let dir = opts.ckpt_dir.clone().map(PathBuf::from).unwrap_or_else(|| {
            std::env::temp_dir().join(format!(
                "tilecc-ckpt-{}-{}",
                std::process::id(),
                RUN_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
            ))
        });
        std::fs::create_dir_all(&dir)
            .map_err(|e| CliError(format!("cannot create checkpoint dir {dir:?}: {e}")))?;
        Some(dir)
    } else {
        None
    };
    let peer_timeout = opts.peer_timeout_ms.map(Duration::from_millis);
    let mut recovered: Vec<u64> = vec![0; size];
    let mut budget = opts.max_recoveries;
    let mut restarts: u32 = 0;

    // Telemetry consumers: the STATS frames piggybacked on worker
    // heartbeats feed an in-place `--live` table on stderr and an
    // NDJSON snapshot stream (`--stats-out`). Both persist across
    // restart-the-world recoveries so the stream shows the recovery.
    let mut stats_file = match &opts.stats_out {
        Some(p) => {
            let f = std::fs::File::create(p)
                .map_err(|e| CliError(format!("cannot write stats stream to `{p}`: {e}")))?;
            Some(std::io::BufWriter::new(f))
        }
        None => None,
    };
    let live_tty = {
        use std::io::IsTerminal as _;
        std::io::stderr().is_terminal()
    };
    let run_start = std::time::Instant::now();
    let mut last_seq_sum: u64 = 0;
    let mut live_lines: usize = 0;
    let mut last_live = run_start;

    let (reports, mut children): (Vec<WorkerReport>, Vec<std::process::Child>) = loop {
        let rendezvous = Rendezvous::bind().map_err(|e| CliError(format!("tcp driver: {e}")))?;
        let addr = rendezvous.addr().to_string();
        let mut children: Vec<std::process::Child> = Vec::with_capacity(size);
        for (rank, &times_recovered) in recovered.iter().enumerate() {
            let mut cmd = std::process::Command::new(&exe);
            cmd.arg("run")
                .arg(path)
                .args(forwarded.iter().map(|s| s.as_str()))
                .arg("--worker-rank")
                .arg(rank.to_string())
                .arg("--connect")
                .arg(&addr);
            if let Some(dir) = &ckpt_dir {
                cmd.arg("--ckpt-dir").arg(dir);
                cmd.arg("--recovered").arg(times_recovered.to_string());
                if restarts > 0 {
                    cmd.arg("--resume");
                }
            }
            let spawned = cmd
                .stdin(std::process::Stdio::null())
                .stdout(std::process::Stdio::null())
                .stderr(std::process::Stdio::inherit())
                .spawn();
            match spawned {
                Ok(c) => children.push(c),
                Err(e) => {
                    kill_children(&mut children);
                    return err(format!("cannot spawn worker rank {rank}: {e}"));
                }
            }
        }

        // Coordinate the rendezvous on a helper thread while watching for
        // workers that die before ever connecting (bad flags, missing file
        // on a worker's view of the world, immediate crash).
        let coord = std::thread::spawn(move || rendezvous.coordinate(size, RENDEZVOUS_DEADLINE));
        let controls = loop {
            if coord.is_finished() {
                break coord.join().unwrap_or_else(|_| {
                    Err(tilecc_cluster::CommError::Transport {
                        detail: "rendezvous coordinator panicked".into(),
                    })
                });
            }
            for (rank, child) in children.iter_mut().enumerate() {
                if let Ok(Some(status)) = child.try_wait() {
                    kill_children(&mut children);
                    return err(format!(
                        "worker rank {rank} exited during startup ({status})"
                    ));
                }
            }
            std::thread::sleep(Duration::from_millis(10));
        };
        let controls = match controls {
            Ok(c) => c,
            Err(e) => {
                kill_children(&mut children);
                return err(format!("tcp rendezvous failed: {e}"));
            }
        };

        let want_obs = opts.live || stats_file.is_some();
        let mut observer = |ranks: &[RankTelemetry]| {
            // Re-render only when a new snapshot actually arrived: the
            // supervisor sweeps every few milliseconds, the heartbeats
            // tick at `--heartbeat-ms`.
            let seq_sum: u64 = ranks.iter().map(|t| t.stats_seq).sum();
            if seq_sum == last_seq_sum {
                return;
            }
            last_seq_sum = seq_sum;
            if let Some(w) = &mut stats_file {
                use std::io::Write as _;
                let line = stats_ndjson_line(run_start.elapsed().as_millis(), ranks);
                let _ = writeln!(w, "{line}");
            }
            if opts.live {
                // On a terminal every update redraws in place; a
                // redirected stderr gets an appended table at most twice
                // a second.
                if live_tty {
                    live_lines = render_live_table(ranks, live_lines);
                } else if last_live.elapsed() >= Duration::from_millis(500)
                    || ranks.iter().all(|t| t.done)
                {
                    last_live = std::time::Instant::now();
                    render_live_table(ranks, 0);
                }
            }
        };
        let collected = if want_obs {
            collect_workers_observed(
                controls,
                Some(DRIVER_WALL_CAP),
                true,
                peer_timeout,
                Some(&mut observer),
            )
        } else {
            collect_workers(controls, Some(DRIVER_WALL_CAP), true, peer_timeout)
        };
        match collected {
            Ok(r) => break (r, children),
            Err(e) => {
                kill_children(&mut children);
                let dead = if recover { crashed_rank_of(&e) } else { None };
                let Some(dead) = dead else {
                    return err(format!(
                        "run failed: {e}\nranks implicated: {:?}",
                        e.ranks()
                    ));
                };
                if budget == 0 {
                    return err(format!(
                        "run failed: {e}\nranks implicated: {:?}\n\
                         recovery budget exhausted after {restarts} restart(s)",
                        e.ranks()
                    ));
                }
                budget -= 1;
                recovered[dead] += 1;
                restarts += 1;
                eprintln!(
                    "tilecc: rank {dead} failed ({e}); \
                     restarting the world from checkpoints (restart {restarts})"
                );
                std::thread::sleep(restart_backoff(restarts));
            }
        }
    };
    // Every result is in; workers exit after the BYE. Reap them so artifact
    // write failures (nonzero exits after reporting) still surface.
    for (rank, child) in children.iter_mut().enumerate() {
        match child.wait() {
            Ok(st) if st.success() => {}
            Ok(st) => {
                return err(format!(
                    "worker rank {rank} exited with {st} after reporting its result"
                ))
            }
            Err(e) => return err(format!("cannot reap worker rank {rank}: {e}")),
        }
    }

    let mut payloads: Vec<WorkerPayload> = Vec::with_capacity(size);
    for rep in &reports {
        payloads.push(decode_worker_payload(&rep.payload).map_err(|e| {
            CliError(format!(
                "worker rank {} sent a malformed result payload: {e}",
                rep.rank
            ))
        })?);
    }
    let total_iterations: u64 = payloads.iter().map(|p| p.iterations).sum();
    let local_times: Vec<f64> = reports.iter().map(|r| r.local_time).collect();
    let makespan = local_times.iter().cloned().fold(0.0, f64::max);
    let sequential_time = opts.model.compute_cost(total_iterations);
    let (verified, checksum) = if mode == ExecMode::Full {
        let (lo, hi) = pipe.plan().algorithm.nest.bounding_box();
        let mut parallel = DataSpace::with_width(&lo, &hi, pipe.plan().algorithm.width());
        for p in &payloads {
            for (j, vals) in p.cells.as_deref().unwrap_or(&[]) {
                parallel.set_all(j, vals);
            }
        }
        let sequential = pipe.plan().algorithm.execute_sequential();
        (
            Some(sequential.diff(&parallel).is_none()),
            Some(parallel.checksum()),
        )
    } else {
        (None, None)
    };
    let summary = RunSummary {
        procs: size,
        iterations: total_iterations,
        sequential_time,
        makespan,
        speedup: sequential_time / makespan,
        bytes: payloads.iter().map(|p| p.stats.bytes_sent).sum(),
        messages: payloads.iter().map(|p| p.stats.messages_sent).sum(),
        verified,
        retransmissions: payloads.iter().map(|p| p.stats.retransmissions).sum(),
        duplicates_suppressed: payloads.iter().map(|p| p.stats.duplicates_suppressed).sum(),
        recoveries: payloads.iter().map(|p| p.stats.recoveries).sum(),
        recovery_time: payloads.iter().map(|p| p.stats.recovery_time).sum(),
        local_times,
    };
    if opts.ckpt_dir.is_none() {
        // The driver created the checkpoint directory; a finished run has
        // no further use for it.
        if let Some(dir) = &ckpt_dir {
            let _ = std::fs::remove_dir_all(dir);
        }
    }
    render_run_summary(&mut out, opts, &summary, checksum)?;
    if let Some(mut w) = stats_file {
        use std::io::Write as _;
        w.flush().map_err(|e| {
            CliError(format!(
                "cannot write stats stream to `{}`: {e}",
                opts.stats_out.as_deref().unwrap_or("?")
            ))
        })?;
        if let Some(p) = &opts.stats_out {
            let _ = writeln!(out, "stats      : {p}");
        }
    }
    if let Some(p) = &opts.trace_out {
        let _ = writeln!(out, "trace      : {p}.rank0 .. {p}.rank{}", size - 1);
    }
    if let Some(p) = &opts.metrics_out {
        // Every worker shipped its final absolute snapshot before its
        // RESULT, so the driver can merge one report over all ranks —
        // bitwise identical to the report a threaded run of the same
        // program writes (`tilecc report a --diff b` checks this).
        let snaps: Option<Vec<StatsSnapshot>> = reports.iter().map(|r| r.stats.clone()).collect();
        match snaps {
            Some(snaps) => {
                let merged = MetricsReport::from_snapshots(&snaps, &summary.local_times);
                std::fs::write(p, merged.to_json())
                    .map_err(|e| CliError(format!("cannot write metrics to `{p}`: {e}")))?;
                let _ = writeln!(
                    out,
                    "metrics    : {p} (driver-merged), per-rank {p}.rank0 .. {p}.rank{}",
                    size - 1
                );
                out.push('\n');
                out.push_str(&merged.render());
            }
            None => {
                // A worker without observability enabled sends no final
                // snapshot; only the per-rank artifacts exist then.
                let _ = writeln!(out, "metrics    : {p}.rank0 .. {p}.rank{}", size - 1);
            }
        }
    }
    Ok(out)
}

fn fmt_matrix(m: &RMat) -> String {
    let mut s = String::new();
    for i in 0..m.rows() {
        let row: Vec<String> = (0..m.cols()).map(|j| m[(i, j)].to_string()).collect();
        let _ = writeln!(s, "  [ {} ]", row.join("  "));
    }
    s
}

const USAGE: &str = "usage: tilecc <command> <nest.tcc|kernel.tk> [options]

Inputs are not limited to the built-in workloads: any `.tcc` nest file
(single-array, paper notation) or `.tk` kernel-DSL file (arbitrary
uniform-dependence stencils, multiple arrays, `let` bindings — see
docs/kernel-dsl.md) compiles through the same pipeline and runs on every
backend and strategy. The file extension selects the frontend.

commands:
  parse <file>               inspect the parsed loop nest / kernel
  cone  <file>               print the tiling cone's extreme rays
  tune  <file> --volume <n>  search legal tilings of volume n drawn from
                              the tiling cone, rank by modeled makespan
  plan  <file> --tile|--rect print the derived parallelization plan
  run   <file> --tile|--rect simulate on the modelled cluster
  emit  <file> --tile|--rect emit a complete C/MPI program to stdout
                              (`.tcc` nests only)
  emit-skeleton <file> …      emit the paper-style code skeleton only
  report <metrics.json>       render a saved metrics file as a summary
                              (works for runs of any workload, built-in,
                              `.tcc`, or `.tk`)
  report <a> --diff <b>       compare two saved metrics files on the
                              deterministic subset (exit nonzero on any
                              mismatch)

options:
  --kernel <file.tk>          explicit input-file spelling for kernel-DSL
                              files (equivalent to passing the path
                              positionally): `tilecc run --kernel f.tk …`
  --tile \"r11,r12;r21,r22\"   tiling matrix H (rows `;`, entries `,`, a/b);
                              for `tune`: a seed candidate that is always
                              evaluated (e.g. the paper's fixed H)
  --rect x,y[,z…]             rectangular tiling of the given edge sizes;
                              for `tune`: a seed candidate
  --map <k>                   mapping dimension (default: longest;
                              `tune` default: 0)
  --volume <n>                tune: target tile volume |det P|
  --top <n>                   tune: ranking rows to print (default 10)
  --max-candidates <n>        tune: cap on simulated candidates
                              (default 128)
  --json <file>               tune: write the full outcome (winning H,
                              ranking, counters) as JSON
  --verify                    full run, compare against sequential (run)
  --overlap                   overlapped communication scheme (run)
  --strategy <s>              tile execution strategy: compiled (default),
                              reference, or overlapped — compute the tile's
                              boundary slab first and hide its sends behind
                              the private interior (run)
  --zero-comm                 zero-cost network model (run)
  --backend <b>               cluster substrate: threaded (default, one
                              thread per rank) or tcp — spawn one worker
                              process per rank, every message over real
                              sockets in the TCMP wire format (run)
  --ranks <n>                 assert the worker-process count for
                              --backend tcp; must equal the plan's
                              processor count (run)
  --worker-rank <r>           internal: run as TCP worker process r
                              (spawned by the driver, not by hand)
  --connect <host:port>       internal: the driver's rendezvous address
                              for --worker-rank
  --fault-seed <s>            seed for deterministic fault injection (run)
  --drop-rate <p>             drop each send attempt with probability p;
                              the reliability layer retransmits (run)
  --crash-rank <r[@t]>        crash rank r at virtual time t (default 0) to
                              exercise failure reporting (run)
  --on-crash <fail|recover>   crash policy (default fail): `recover` takes
                              a checkpoint every --ckpt-interval chain
                              steps and survives crashed ranks — rewinding
                              in place on the threaded backend, respawning
                              dead worker processes from their checkpoint
                              files on tcp — with results bitwise identical
                              to a fault-free run (run)
  --max-recoveries <n>        run-wide restore budget for --on-crash
                              recover (default 1) (run)
  --ckpt-interval <k>         chain steps between checkpoints (default 4)
                              (run)
  --bind-addr <host:port>     mesh listener bind address for tcp workers
                              (default 127.0.0.1:0) (run)
  --heartbeat-ms <ms>         worker heartbeat cadence to the driver
                              (default 50) (run)
  --peer-timeout-ms <ms>      driver declares a silent worker dead after
                              this long without control-socket traffic
                              (default: socket EOF only) (run)
  --ckpt-dir <dir>            internal: per-rank checkpoint directory
                              (managed by the driver)
  --resume                    internal: restore workers from checkpoints
  --recovered <n>             internal: restores this worker's rank has
                              undergone
  --trace-out <file>          write a Chrome trace-event JSON of the run,
                              loadable in Perfetto / chrome://tracing (run)
  --metrics-out <file>        write the aggregated per-rank metrics JSON
                              (tilecc-metrics-v1; see `tilecc report`); on
                              --backend tcp the driver also merges every
                              worker's final STATS snapshot into one
                              report at this exact path (run)
  --live                      render a live per-rank telemetry table on
                              stderr while the tcp driver waits: phase,
                              virtual clock, compute/wait/comm split,
                              bytes, retransmits, recoveries (run)
  --stats-out <file>          append one newline-delimited JSON telemetry
                              snapshot per heartbeat STATS delta while the
                              tcp driver waits (run)
";

/// Run the CLI. Returns the output text; errors carry user messages.
pub fn run_cli(args: &[String]) -> Result<String, CliError> {
    let mut out = String::new();
    let Some(cmd) = args.first() else {
        return err(USAGE);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => {
            out.push_str(USAGE);
            Ok(out)
        }
        "parse" => {
            let (path, _) = input_path(args)?;
            let alg = load(path)?;
            let _ = writeln!(out, "algorithm : {}", alg.name);
            let _ = writeln!(out, "dimension : {}", alg.nest.dim());
            let _ = writeln!(out, "components: {}", alg.width());
            let _ = writeln!(out, "iterations: {}", alg.nest.num_points());
            let _ = writeln!(out, "dependence columns:");
            for q in 0..alg.nest.deps().cols() {
                let _ = writeln!(out, "  d{q} = {:?}", alg.nest.deps().col(q));
            }
            Ok(out)
        }
        "cone" => {
            let (path, _) = input_path(args)?;
            let alg = load(path)?;
            let rays = tiling_cone_rays(alg.nest.deps());
            let _ = writeln!(out, "tiling cone extreme rays:");
            for r in rays {
                let _ = writeln!(out, "  {r:?}");
            }
            Ok(out)
        }
        "tune" => {
            let (path, rest) = input_path(args)?;
            let alg = load(path)?;
            let topts = parse_tune_options(&args[rest..], alg.nest.dim())?;
            let outcome = tilecc::tune_labeled(
                &alg,
                &topts.opts,
                MachineModel::fast_ethernet_p3(),
                &alg.name,
            );
            out.push_str(&outcome.report_top(topts.top));
            match outcome.best() {
                None => return err("tune: no legal candidate survived"),
                Some(best) => {
                    let _ = writeln!(
                        out,
                        "winner: {} makespan {:.6} bytes {}",
                        tilecc::tune::fmt_h(&best.h),
                        best.summary.makespan,
                        best.summary.bytes
                    );
                }
            }
            if let Some(json_path) = &topts.json_out {
                std::fs::write(json_path, outcome.to_json(0))
                    .map_err(|e| CliError(format!("cannot write `{json_path}`: {e}")))?;
                let _ = writeln!(out, "json   : {json_path}");
            }
            Ok(out)
        }
        "report" => {
            let path = args.get(1).ok_or(CliError(USAGE.into()))?;
            match args.get(2).map(String::as_str) {
                None => out.push_str(&render_saved_metrics(path)?),
                Some("--diff") => {
                    let other = args
                        .get(3)
                        .ok_or(CliError("--diff needs a second metrics file".into()))?;
                    out.push_str(&diff_saved_metrics(path, other)?);
                }
                Some(extra) => return err(format!("unknown report option `{extra}`")),
            }
            Ok(out)
        }
        "plan" | "run" | "emit" | "emit-skeleton" => {
            let (path, rest) = input_path(args)?;
            let opts = parse_options(&args[rest..])?;
            // One registry per invocation when an artifact was requested;
            // the frontend, planner and engine all record into it.
            let reg: Option<Arc<MetricsRegistry>> = (opts.trace_out.is_some()
                || opts.metrics_out.is_some()
                || opts.live
                || opts.stats_out.is_some())
            .then(MetricsRegistry::new);
            let lower_t0 = reg.as_ref().map(|r| r.now_ns());
            let alg = load(path)?;
            if let (Some(r), Some(t0)) = (&reg, lower_t0) {
                r.driver_span(Phase::Lower, "lower", t0, alg.nest.num_points() as u64);
            }
            let h = opts
                .tile
                .clone()
                .ok_or(CliError("missing --tile or --rect".into()))?;
            if h.rows() != alg.nest.dim() {
                return err(format!(
                    "tile matrix is {}×{} but the nest is {}-dimensional",
                    h.rows(),
                    h.cols(),
                    alg.nest.dim()
                ));
            }
            let transform = tilecc_tiling::TilingTransform::new(h)
                .map_err(|e| CliError(format!("tiling rejected: {e}")))?;
            let pipe = Pipeline::compile_observed(alg, transform, opts.map, reg.as_deref())
                .map_err(|e| CliError(format!("tiling rejected: {e}")))?;
            match cmd.as_str() {
                "plan" => {
                    let plan = pipe.plan();
                    let t = plan.tiled.transform();
                    let _ = writeln!(out, "H =\n{}", fmt_matrix(t.h()));
                    let _ = writeln!(out, "P = H^-1 =\n{}", fmt_matrix(t.p()));
                    let _ = writeln!(out, "V diag      : {:?}", t.v());
                    let _ = writeln!(out, "H' = V*H    : {:?}", t.h_prime());
                    let _ = writeln!(out, "HNF(H')     : {:?}", t.hnf());
                    let _ = writeln!(out, "strides c   : {:?}", t.strides());
                    let _ = writeln!(out, "tile size   : {}", t.tile_size());
                    let _ = writeln!(out, "mapping dim : {}", plan.m());
                    let _ = writeln!(out, "processors  : {}", plan.num_procs());
                    let _ = writeln!(out, "CC          : {:?}", plan.comm.cc);
                    let _ = writeln!(out, "offsets     : {:?}", plan.comm.off);
                    let _ = writeln!(out, "D^S         : {:?}", plan.comm.tile_deps);
                    let _ = writeln!(out, "D^m         : {:?}", plan.comm.proc_deps);
                    Ok(out)
                }
                "run" => {
                    if let Some(rank) = opts.worker_rank {
                        return tcp_worker(&pipe, &opts, rank, reg);
                    }
                    if opts.connect.is_some() {
                        return err("--connect is only meaningful together with --worker-rank");
                    }
                    if opts.backend == Backend::Tcp {
                        return tcp_driver(path, &args[rest..], &pipe, &opts, out);
                    }
                    if opts.ranks.is_some() {
                        return err("--ranks is only meaningful with --backend tcp");
                    }
                    if opts.live || opts.stats_out.is_some() {
                        return err("--live/--stats-out stream worker telemetry and are only \
                             meaningful with --backend tcp");
                    }
                    let scheme = if opts.overlap {
                        CommScheme::Overlapped
                    } else {
                        CommScheme::Blocking
                    };
                    let fault = opts.fault_plan();
                    let options = EngineOptions {
                        scheme,
                        fault: fault.clone(),
                        recovery: opts.recovery_options(),
                        obs: reg.clone(),
                        ..EngineOptions::default()
                    };
                    let run_err = |e: tilecc_cluster::RunError| {
                        CliError(format!(
                            "run failed: {e}\nranks implicated: {:?}",
                            e.ranks()
                        ))
                    };
                    let (summary, data) = if opts.verify || fault.is_some() {
                        // Fault-injected runs go through the fallible engine
                        // entry point so failures carry rank-level context.
                        let (s, d) = pipe
                            .run_verified_strategy(opts.model, opts.strategy, options)
                            .map_err(run_err)?;
                        (s, Some(d))
                    } else {
                        (
                            pipe.simulate_strategy(opts.model, opts.strategy, options)
                                .map_err(run_err)?,
                            None,
                        )
                    };
                    render_run_summary(
                        &mut out,
                        &opts,
                        &summary,
                        data.as_ref().map(DataSpace::checksum),
                    )?;
                    if let Some(reg) = &reg {
                        // The dependency-true critical path replaces the
                        // slowest-rank approximation in the rendered
                        // report and is highlighted as a Perfetto flow in
                        // the exported trace.
                        let report = reg
                            .run_report(&summary.local_times)
                            .with_critical_path(reg.critical_path(&summary.local_times));
                        if let Some(path) = &opts.trace_out {
                            let trace = reg.chrome_trace_with_path(
                                ExportClock::Virtual,
                                report.critical_path.as_ref(),
                            );
                            std::fs::write(path, trace).map_err(|e| {
                                CliError(format!("cannot write trace to `{path}`: {e}"))
                            })?;
                            let _ = writeln!(out, "trace      : {path}");
                        }
                        if let Some(path) = &opts.metrics_out {
                            std::fs::write(path, report.to_json()).map_err(|e| {
                                CliError(format!("cannot write metrics to `{path}`: {e}"))
                            })?;
                            let _ = writeln!(out, "metrics    : {path}");
                        }
                        out.push('\n');
                        out.push_str(&report.render());
                    }
                    Ok(out)
                }
                "emit" => {
                    if path.ends_with(".tk") {
                        return err("emit does not support `.tk` kernel DSL files yet \
                             (multi-array C emission is future work); \
                             use run/plan/tune, or emit-skeleton for the schedule shape");
                    }
                    let program = load_program(path)?;
                    // Consistency: the pipeline compiled from the same file.
                    let _ = lower(&program).map_err(|e| CliError(format!("{path}: {e}")))?;
                    let srck = kernel_source(&program);
                    out.push_str(&tilecc_parcode::emit_c_program(pipe.plan(), &srck));
                    Ok(out)
                }
                "emit-skeleton" => {
                    out.push_str(&pipe.emit_c("F(/* reads at LA[MAP(t, j - d')] */)"));
                    Ok(out)
                }
                _ => unreachable!(),
            }
        }
        other => err(format!("unknown command `{other}`\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Self-cleaning temp file (avoids external tempfile dependencies).
    struct TempNest(std::path::PathBuf);

    impl TempNest {
        fn to_str(&self) -> &str {
            self.0.to_str().unwrap()
        }
    }

    impl Drop for TempNest {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    fn write_nest(content: &str) -> TempNest {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let id = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("tilecc-cli-test-{}-{id}.tcc", std::process::id()));
        std::fs::write(&path, content).unwrap();
        TempNest(path)
    }

    const ADI_SRC: &str = r#"
param T = 6
param N = 9
for t = 1 to T
for i = 1 to N
for j = 1 to N
X[t,i,j] = X[t-1,i,j] + 0.3*X[t-1,i-1,j] - 0.2*X[t-1,i,j-1]
boundary = 0.25
"#;

    fn args(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_command_reports_structure() {
        let p = write_nest(ADI_SRC);
        let out = run_cli(&args(&["parse", p.to_str()])).unwrap();
        assert!(out.contains("dimension : 3"));
        assert!(out.contains("iterations: 486"));
        assert!(out.contains("d0 = [1, 0, 0]"));
    }

    #[test]
    fn cone_command_prints_rays() {
        let p = write_nest(ADI_SRC);
        let out = run_cli(&args(&["cone", p.to_str()])).unwrap();
        assert!(out.contains("[1, -1, -1]"), "{out}");
    }

    #[test]
    fn tune_command_ranks_and_beats_rect_seed() {
        let p = write_nest(ADI_SRC);
        let json = std::env::temp_dir().join(format!(
            "tilecc-cli-tune-{}-{}.json",
            std::process::id(),
            line!()
        ));
        let out = run_cli(&args(&[
            "tune",
            p.to_str(),
            "--volume",
            "8",
            "--rect",
            "2,2,2",
            "--top",
            "200",
            "--json",
            json.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("winner:"), "{out}");
        assert!(out.contains("evaluated"), "{out}");
        // The rect seed was evaluated (marked * in the ranking).
        assert!(out.lines().any(|l| l.trim_end().ends_with('*')), "{out}");
        let saved = std::fs::read_to_string(&json).unwrap();
        let _ = std::fs::remove_file(&json);
        assert!(saved.contains("\"ranking\""), "{saved}");
        assert!(saved.contains("\"included\": true"), "{saved}");
    }

    #[test]
    fn tune_command_rejects_missing_volume_and_bad_map() {
        let p = write_nest(ADI_SRC);
        assert!(run_cli(&args(&["tune", p.to_str()])).is_err());
        assert!(run_cli(&args(&["tune", p.to_str(), "--volume", "8", "--map", "3"])).is_err());
        assert!(run_cli(&args(&["tune", p.to_str(), "--volume", "-2"])).is_err());
    }

    #[test]
    fn run_with_verification_succeeds() {
        let p = write_nest(ADI_SRC);
        let out = run_cli(&args(&[
            "run",
            p.to_str(),
            "--rect",
            "2,4,4",
            "--map",
            "0",
            "--verify",
        ]))
        .unwrap();
        assert!(out.contains("verified   : true"), "{out}");
    }

    #[test]
    fn run_with_cone_tiling_and_overlap() {
        let p = write_nest(ADI_SRC);
        let out = run_cli(&args(&[
            "run",
            p.to_str(),
            "--tile",
            "1/2,-1/2,-1/2; 0,1/4,0; 0,0,1/4",
            "--map",
            "0",
            "--overlap",
        ]))
        .unwrap();
        assert!(out.contains("speedup"), "{out}");
    }

    #[test]
    fn overlapped_strategy_verifies_and_is_no_slower() {
        let p = write_nest(ADI_SRC);
        let makespan = |out: &str| -> f64 {
            out.lines()
                .find_map(|l| l.strip_prefix("makespan   :"))
                .unwrap()
                .trim()
                .trim_end_matches(" s")
                .parse()
                .unwrap()
        };
        let run = |strategy: &str| {
            run_cli(&args(&[
                "run",
                p.to_str(),
                "--rect",
                "2,4,4",
                "--map",
                "0",
                "--verify",
                "--strategy",
                strategy,
            ]))
            .unwrap()
        };
        let overlapped = run("overlapped");
        assert!(
            overlapped.contains("strategy   : Overlapped"),
            "{overlapped}"
        );
        assert!(overlapped.contains("verified   : true"), "{overlapped}");
        let compiled = run("compiled");
        assert!(
            makespan(&overlapped) <= makespan(&compiled) + 1e-12,
            "overlapped must not be slower\n{overlapped}\n{compiled}"
        );
    }

    #[test]
    fn unknown_strategy_is_rejected() {
        let p = write_nest(ADI_SRC);
        let e = run_cli(&args(&[
            "run",
            p.to_str(),
            "--rect",
            "2,4,4",
            "--strategy",
            "turbo",
        ]))
        .unwrap_err();
        assert!(e.0.contains("unknown --strategy `turbo`"), "{e}");
    }

    #[test]
    fn unwritable_artifact_paths_are_reported_not_panicked() {
        // A nonexistent parent directory must surface as a CliError naming
        // the artifact and path — never a panic or a silent success.
        let p = write_nest(ADI_SRC);
        let base = args(&["run", p.to_str(), "--rect", "2,4,4", "--map", "0"]);
        for (flag, what) in [("--trace-out", "trace"), ("--metrics-out", "metrics")] {
            let bad = "/nonexistent-tilecc-dir/artifact.json";
            let mut a = base.clone();
            a.extend(args(&[flag, bad]));
            let e = run_cli(&a).unwrap_err();
            assert!(
                e.0.contains(&format!("cannot write {what} to `{bad}`")),
                "{flag}: {e}"
            );
        }
    }

    #[test]
    fn plan_command_shows_comm_data() {
        let p = write_nest(ADI_SRC);
        let out = run_cli(&args(&["plan", p.to_str(), "--rect", "2,4,4"])).unwrap();
        assert!(out.contains("CC"), "{out}");
        assert!(out.contains("tile size   : 32"), "{out}");
    }

    #[test]
    fn emit_command_produces_c() {
        let p = write_nest(ADI_SRC);
        let out = run_cli(&args(&["emit", p.to_str(), "--rect", "2,4,4"])).unwrap();
        assert!(out.contains("#include <mpi.h>"));
    }

    #[test]
    fn lossy_run_verifies_and_reports_retransmissions() {
        let p = write_nest(ADI_SRC);
        let out = run_cli(&args(&[
            "run",
            p.to_str(),
            "--rect",
            "2,4,4",
            "--map",
            "0",
            "--fault-seed",
            "7",
            "--drop-rate",
            "0.25",
        ]))
        .unwrap();
        assert!(out.contains("verified   : true"), "{out}");
        assert!(out.contains("retransmits:"), "{out}");
        let n: u64 = out
            .lines()
            .find_map(|l| l.strip_prefix("retransmits:"))
            .unwrap()
            .trim()
            .parse()
            .unwrap();
        assert!(n > 0, "a 25% drop rate must force retransmissions\n{out}");
    }

    #[test]
    fn observed_run_writes_artifacts_and_report_reads_them_back() {
        let p = write_nest(ADI_SRC);
        let trace = write_nest("");
        let metrics = write_nest("");
        let out = run_cli(&args(&[
            "run",
            p.to_str(),
            "--rect",
            "2,4,4",
            "--map",
            "0",
            "--verify",
            "--trace-out",
            trace.to_str(),
            "--metrics-out",
            metrics.to_str(),
        ]))
        .unwrap();
        assert!(out.contains("verified   : true"), "{out}");
        assert!(out.contains("trace      :"), "{out}");
        assert!(out.contains("run report"), "{out}");

        // The trace must be valid JSON with Chrome trace-event structure.
        let trace_txt = std::fs::read_to_string(trace.to_str()).unwrap();
        let doc = tilecc_cluster::obs::json::parse(&trace_txt).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert!(!events.is_empty());
        assert!(events
            .iter()
            .any(|e| e.get("ph").and_then(Json::as_str) == Some("X")));

        // The metrics file round-trips through the `report` subcommand.
        let rendered = run_cli(&args(&["report", metrics.to_str()])).unwrap();
        assert!(rendered.contains("run report"), "{rendered}");
        assert!(rendered.contains("rank"), "{rendered}");
    }

    #[test]
    fn report_rejects_non_metrics_files() {
        let bogus = write_nest("{\"schema\": \"other\"}");
        let e = run_cli(&args(&["report", bogus.to_str()])).unwrap_err();
        assert!(e.0.contains("schema"), "{e}");
    }

    #[test]
    fn report_rejects_schema_version_mismatch() {
        // A future schema rev must be refused with a typed error naming
        // both the found and the expected version — not misrendered.
        let v2 =
            write_nest("{\"schema\": \"tilecc-metrics-v2\", \"makespan\": 1.0, \"ranks\": []}");
        let e = run_cli(&args(&["report", v2.to_str()])).unwrap_err();
        assert!(e.0.contains("tilecc-metrics-v2"), "{e}");
        assert!(e.0.contains("tilecc-metrics-v1"), "{e}");
        // Same contract on the diff path, for either argument.
        let good =
            write_nest("{\"schema\": \"tilecc-metrics-v1\", \"makespan\": 1.0, \"ranks\": []}");
        let e = run_cli(&args(&["report", good.to_str(), "--diff", v2.to_str()])).unwrap_err();
        assert!(e.0.contains("unsupported metrics schema"), "{e}");
    }

    #[test]
    fn report_rejects_truncated_metrics_json() {
        // A metrics file cut off mid-write (crashed run, full disk) must
        // surface as a typed parse error naming the file — never a panic.
        let full =
            "{\"schema\": \"tilecc-metrics-v1\", \"makespan\": 1.0, \"ranks\": [{\"rank\": 0";
        for cut in [full.len(), full.len() - 20, 30, 1] {
            let t = write_nest(&full[..cut]);
            let e = run_cli(&args(&["report", t.to_str()])).unwrap_err();
            assert!(
                e.0.contains(t.to_str()),
                "error must name the file at cut {cut}: {e}"
            );
        }
    }

    #[test]
    fn report_diff_agrees_and_detects_mismatches() {
        let p = write_nest(ADI_SRC);
        let metrics = write_nest("");
        run_cli(&args(&[
            "run",
            p.to_str(),
            "--rect",
            "2,4,4",
            "--map",
            "0",
            "--metrics-out",
            metrics.to_str(),
        ]))
        .unwrap();
        // A report agrees with itself.
        let out = run_cli(&args(&[
            "report",
            metrics.to_str(),
            "--diff",
            metrics.to_str(),
        ]))
        .unwrap();
        assert!(out.contains("agree"), "{out}");
        // Perturbing one deterministic field must fail the diff and name it.
        let src = std::fs::read_to_string(metrics.to_str()).unwrap();
        let tampered = write_nest(&src.replacen("\"messages_sent\": ", "\"messages_sent\": 1", 1));
        let e = run_cli(&args(&[
            "report",
            metrics.to_str(),
            "--diff",
            tampered.to_str(),
        ]))
        .unwrap_err();
        assert!(e.0.contains("messages_sent"), "{e}");
        // But a transport-local counter may differ freely.
        let ckpt = write_nest(&src.replacen("\"ckpt_writes\": ", "\"ckpt_writes\": 9", 1));
        let out = run_cli(&args(&[
            "report",
            metrics.to_str(),
            "--diff",
            ckpt.to_str(),
        ]))
        .unwrap();
        assert!(out.contains("agree"), "{out}");
        let e = run_cli(&args(&["report", metrics.to_str(), "--bogus"])).unwrap_err();
        assert!(e.0.contains("unknown report option"), "{e}");
    }

    #[test]
    fn live_and_stats_out_require_tcp_backend() {
        let p = write_nest(ADI_SRC);
        for extra in [&["--live"][..], &["--stats-out", "/tmp/x.ndjson"][..]] {
            let mut v = vec!["run", p.to_str(), "--rect", "2,4,4", "--map", "0"];
            v.extend_from_slice(extra);
            let e = run_cli(&args(&v)).unwrap_err();
            assert!(e.0.contains("--backend tcp"), "{extra:?}: {e}");
        }
    }

    #[test]
    fn stats_ndjson_lines_are_valid_json() {
        let reg = MetricsRegistry::new();
        let m = reg.rank_metrics(0);
        m.add(Counter::BytesSent, 4096);
        m.virt_add(VirtAcc::Compute, 0.5);
        m.virt_add(VirtAcc::Wait, 0.25);
        let ranks = vec![
            RankTelemetry {
                rank: 0,
                phase: RankPhase::Running,
                progress: 3,
                done: false,
                stats: Some(StatsSnapshot::capture(&m)),
                stats_seq: 2,
            },
            RankTelemetry {
                rank: 1,
                phase: RankPhase::Blocked { from: 0, tag: 7 },
                progress: 1,
                done: false,
                stats: None,
                stats_seq: 0,
            },
        ];
        let line = stats_ndjson_line(1234, &ranks);
        let j = tilecc_cluster::obs::json::parse(&line).expect("NDJSON line must parse");
        assert_eq!(j.get("t_wall_ms").and_then(Json::as_u64), Some(1234));
        let rs = j.get("ranks").and_then(Json::as_arr).unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].get("clock").and_then(Json::as_f64), Some(0.75));
        assert_eq!(rs[0].get("bytes_sent").and_then(Json::as_u64), Some(4096));
        assert_eq!(
            rs[1].get("phase").and_then(Json::as_str),
            Some("recv<-0#7"),
            "{line}"
        );
        // A rank without a snapshot yet reports identity only.
        assert!(rs[1].get("clock").is_none());
    }

    #[test]
    fn threaded_report_renders_dependency_critical_path() {
        let p = write_nest(ADI_SRC);
        let metrics = write_nest("");
        let out = run_cli(&args(&[
            "run",
            p.to_str(),
            "--rect",
            "2,4,4",
            "--map",
            "0",
            "--metrics-out",
            metrics.to_str(),
        ]))
        .unwrap();
        // The dependency chain replaces the slowest-rank approximation:
        // hops are listed with virtual intervals and cross-rank hand-offs.
        assert!(out.contains("dependency chain"), "{out}");
        assert!(out.contains("<- rank"), "{out}");
        // The saved JSON carries the path and `report` re-renders it.
        let rendered = run_cli(&args(&["report", metrics.to_str()])).unwrap();
        assert!(rendered.contains("dependency chain"), "{rendered}");
        assert!(rendered.contains("<- rank"), "{rendered}");
    }

    #[test]
    fn crashed_rank_is_reported_with_context() {
        let p = write_nest(ADI_SRC);
        let e = run_cli(&args(&[
            "run",
            p.to_str(),
            "--rect",
            "2,4,4",
            "--map",
            "0",
            "--crash-rank",
            "1",
        ]))
        .unwrap_err();
        assert!(e.0.contains("run failed"), "{e}");
        assert!(e.0.contains("rank 1"), "{e}");
        assert!(e.0.contains("injected crash"), "{e}");
    }

    /// Extract the value of a `key : value` summary line.
    fn field<'a>(out: &'a str, key: &str) -> &'a str {
        out.lines()
            .find_map(|l| {
                let (k, v) = l.split_once(':')?;
                (k.trim() == key).then(|| v.trim())
            })
            .unwrap_or_else(|| panic!("no `{key}` line in:\n{out}"))
    }

    #[test]
    fn crashed_rank_recovers_bitwise_with_on_crash_recover() {
        let p = write_nest(ADI_SRC);
        let base = [
            "run",
            p.to_str(),
            "--rect",
            "2,4,4",
            "--map",
            "0",
            "--verify",
        ];
        let clean = run_cli(&args(&base)).unwrap();
        let mut rec_args = base.to_vec();
        rec_args.extend_from_slice(&[
            "--crash-rank",
            "1",
            "--on-crash",
            "recover",
            "--ckpt-interval",
            "2",
        ]);
        let rec = run_cli(&args(&rec_args)).unwrap();
        assert_eq!(field(&rec, "verified"), "true", "{rec}");
        assert_eq!(
            field(&clean, "checksum"),
            field(&rec, "checksum"),
            "recovered run must reproduce the clean data bitwise\n{rec}"
        );
        assert_eq!(field(&rec, "recoveries"), "1", "{rec}");
        assert!(rec.contains("rec time"), "{rec}");
        // The clean run never prints recovery lines.
        assert!(!clean.contains("recoveries"), "{clean}");
    }

    #[test]
    fn exhausted_recovery_budget_still_fails() {
        let p = write_nest(ADI_SRC);
        let e = run_cli(&args(&[
            "run",
            p.to_str(),
            "--rect",
            "2,4,4",
            "--map",
            "0",
            "--crash-rank",
            "1",
            "--on-crash",
            "recover",
            "--max-recoveries",
            "0",
        ]))
        .unwrap_err();
        assert!(e.0.contains("run failed"), "{e}");
        assert!(e.0.contains("injected crash"), "{e}");
    }

    #[test]
    fn recovery_flag_values_are_validated() {
        let p = write_nest(ADI_SRC);
        let run_with = |extra: &[&str]| {
            let mut v = vec!["run", p.to_str(), "--rect", "2,4,4"];
            v.extend_from_slice(extra);
            run_cli(&args(&v))
        };
        let e = run_with(&["--on-crash", "explode"]).unwrap_err();
        assert!(e.0.contains("--on-crash"), "{e}");
        let e = run_with(&["--ckpt-interval", "0"]).unwrap_err();
        assert!(e.0.contains("--ckpt-interval"), "{e}");
        let e = run_with(&["--heartbeat-ms", "0"]).unwrap_err();
        assert!(e.0.contains("--heartbeat-ms"), "{e}");
    }

    #[test]
    fn fault_flag_values_are_validated() {
        assert!(parse_crash_spec("2").unwrap() == (2, 0.0));
        assert!(parse_crash_spec("3@0.5").unwrap() == (3, 0.5));
        assert!(parse_crash_spec("x").is_err());
        assert!(parse_crash_spec("1@y").is_err());
        let p = write_nest(ADI_SRC);
        let e = run_cli(&args(&[
            "run",
            p.to_str(),
            "--rect",
            "2,4,4",
            "--drop-rate",
            "1.5",
        ]))
        .unwrap_err();
        assert!(e.0.contains("--drop-rate"), "{e}");
    }

    #[test]
    fn bad_tile_spec_is_reported() {
        assert!(parse_tile_spec("1/x,0;0,1").is_err());
        assert!(parse_tile_spec("1,0;0").is_err());
        assert!(parse_tile_spec("1/0,0;0,1").is_err());
        assert!(parse_rect_spec("4,0").is_err());
        assert!(parse_rect_spec("a").is_err());
    }

    #[test]
    fn illegal_tiling_is_rejected_with_message() {
        let p = write_nest(ADI_SRC);
        let e = run_cli(&args(&[
            "run",
            p.to_str(),
            "--tile",
            "-1/2,0,0; 0,1/4,0; 0,0,1/4",
        ]))
        .unwrap_err();
        assert!(e.0.contains("tiling rejected"), "{e}");
    }

    #[test]
    fn dimension_mismatch_is_rejected() {
        let p = write_nest(ADI_SRC);
        let e = run_cli(&args(&["run", p.to_str(), "--rect", "4,4"])).unwrap_err();
        assert!(e.0.contains("3-dimensional"), "{e}");
    }
}
