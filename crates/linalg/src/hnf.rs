//! Column-style Hermite Normal Form.
//!
//! The paper derives the strides `c_k` and incremental offsets `a_kl` of the
//! loops traversing the Transformed Tile Iteration Space (TTIS) directly from
//! the (column-style) Hermite Normal Form `H̃'` of the integralized tiling
//! transformation `H' = V·H`:  `c_k = h̃'_kk` and `a_kl = h̃'_kl` (§2.3).
//!
//! For a non-singular integer matrix `A`, the column-style HNF is the unique
//! matrix `H = A·U` with `U` unimodular, `H` **lower triangular** with
//! positive diagonal, and every entry left of the diagonal reduced modulo the
//! diagonal of its row: `0 ≤ h_kl < h_kk` for `l < k`. `H` spans the same
//! column lattice as `A` — exactly the lattice of TTIS points.

use crate::imat::IMat;

/// Result of a Hermite Normal Form computation: `a · unimodular = hnf`.
#[derive(Clone, Debug)]
pub struct HnfResult {
    /// The lower-triangular Hermite Normal Form.
    pub hnf: IMat,
    /// The unimodular column-operation witness (determinant ±1).
    pub unimodular: IMat,
}

/// Compute the column-style Hermite Normal Form of a non-singular square
/// integer matrix.
///
/// # Panics
/// Panics if `a` is not square or is singular.
pub fn column_hnf(a: &IMat) -> HnfResult {
    assert!(a.is_square(), "HNF requires a square matrix");
    let n = a.rows();
    assert!(a.det() != 0, "HNF of a singular matrix is not supported");
    let mut h = a.clone();
    let mut u = IMat::identity(n);

    // Column operation helpers (applied to both h and u to maintain a·u = h).
    let add_col = |m: &mut IMat, dst: usize, src: usize, factor: i64| {
        for i in 0..m.rows() {
            let v = m[(i, src)].checked_mul(factor).expect("hnf overflow");
            m[(i, dst)] = m[(i, dst)].checked_add(v).expect("hnf overflow");
        }
    };
    let swap_col = |m: &mut IMat, x: usize, y: usize| {
        for i in 0..m.rows() {
            let t = m[(i, x)];
            m[(i, x)] = m[(i, y)];
            m[(i, y)] = t;
        }
    };
    let negate_col = |m: &mut IMat, c: usize| {
        for i in 0..m.rows() {
            m[(i, c)] = -m[(i, c)];
        }
    };

    for k in 0..n {
        // Eliminate h[k][j] for j > k with Euclidean column reductions.
        loop {
            // Pick the column in k..n with the smallest non-zero |h[k][j]|.
            let mut best: Option<(usize, i64)> = None;
            for j in k..n {
                let v = h[(k, j)];
                if v != 0 && best.is_none_or(|(_, bv)| v.abs() < bv.abs()) {
                    best = Some((j, v));
                }
            }
            let (jmin, _) = best.expect("singular matrix encountered during HNF");
            if jmin != k {
                swap_col(&mut h, k, jmin);
                swap_col(&mut u, k, jmin);
            }
            let pivot = h[(k, k)];
            let mut done = true;
            for j in k + 1..n {
                let v = h[(k, j)];
                if v == 0 {
                    continue;
                }
                // Floor quotient keeps the remainder in [0, |pivot|).
                let q = v.div_euclid(pivot);
                add_col(&mut h, j, k, -q);
                add_col(&mut u, j, k, -q);
                if h[(k, j)] != 0 {
                    done = false;
                }
            }
            if done {
                break;
            }
        }
        if h[(k, k)] < 0 {
            negate_col(&mut h, k);
            negate_col(&mut u, k);
        }
        // Reduce the entries left of the diagonal: 0 ≤ h[k][j] < h[k][k].
        let pivot = h[(k, k)];
        for j in 0..k {
            let q = h[(k, j)].div_euclid(pivot);
            if q != 0 {
                add_col(&mut h, j, k, -q);
                add_col(&mut u, j, k, -q);
            }
        }
    }

    debug_assert_eq!(a.mul(&u), h, "HNF witness invariant violated");
    HnfResult {
        hnf: h,
        unimodular: u,
    }
}

/// Check the structural HNF invariants (used by tests and property checks).
pub fn is_column_hnf(h: &IMat) -> bool {
    if !h.is_square() {
        return false;
    }
    let n = h.rows();
    for i in 0..n {
        if h[(i, i)] <= 0 {
            return false;
        }
        for j in i + 1..n {
            if h[(i, j)] != 0 {
                return false;
            }
        }
        for j in 0..i {
            if h[(i, j)] < 0 || h[(i, j)] >= h[(i, i)] {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hnf_of_identity_is_identity() {
        let r = column_hnf(&IMat::identity(3));
        assert_eq!(r.hnf, IMat::identity(3));
        assert_eq!(r.unimodular, IMat::identity(3));
    }

    #[test]
    fn hnf_of_diagonal_with_negative_entries() {
        let a = IMat::diag(&[2, -3, 5]);
        let r = column_hnf(&a);
        assert_eq!(r.hnf, IMat::diag(&[2, 3, 5]));
        assert!(is_column_hnf(&r.hnf));
        assert_eq!(r.unimodular.det().abs(), 1);
    }

    #[test]
    fn hnf_witness_and_shape() {
        let a = IMat::from_rows(&[&[3, 1, 0], &[-1, 4, 2], &[5, 0, 7]]);
        let r = column_hnf(&a);
        assert!(is_column_hnf(&r.hnf));
        assert_eq!(r.unimodular.det().abs(), 1);
        assert_eq!(a.mul(&r.unimodular), r.hnf);
        // |det| is preserved by unimodular column ops.
        assert_eq!(r.hnf.det().abs(), a.det().abs());
    }

    #[test]
    fn hnf_of_paper_sor_hprime() {
        // SOR non-rectangular tiling with x=y=z=2:
        // H' = V·H = diag(2,2,2)·[[1/2,0,0],[0,1/2,0],[-1/2,0,1/2]]
        //    = [[1,0,0],[0,1,0],[-1,0,1]].
        let hp = IMat::from_rows(&[&[1, 0, 0], &[0, 1, 0], &[-1, 0, 1]]);
        let r = column_hnf(&hp);
        // Already lower triangular with positive diagonal, but the (-1) entry
        // must be reduced into [0, 1): column op adds column 3 to column 1.
        assert!(is_column_hnf(&r.hnf));
        assert_eq!(
            r.hnf,
            IMat::from_rows(&[&[1, 0, 0], &[0, 1, 0], &[0, 0, 1]])
        );
    }

    #[test]
    fn hnf_strides_for_skewed_lattice() {
        // A lattice with a genuine non-unit stride: H' = [[2,1],[0,2]].
        let hp = IMat::from_rows(&[&[2, 1], &[0, 2]]);
        let r = column_hnf(&hp);
        assert!(is_column_hnf(&r.hnf));
        assert_eq!(r.hnf.det(), 4);
        // c_1 = h̃'_11, c_2 = h̃'_22 per the paper's stride formula.
        assert_eq!(r.hnf[(0, 0)], 1);
        assert_eq!(r.hnf[(1, 1)], 4);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn hnf_rejects_singular() {
        let _ = column_hnf(&IMat::from_rows(&[&[1, 2], &[2, 4]]));
    }
}
