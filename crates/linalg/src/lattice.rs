#![allow(clippy::needless_range_loop)] // index loops mirror the paper's matrix notation
//! Integer lattices and enumeration of lattice points inside boxes.
//!
//! The TTIS of the paper is the image of `Zⁿ` under the integer matrix `H'`,
//! i.e. the column lattice of `H'`, intersected with the box `[0, v)`.
//! Enumerating those points with the right strides and incremental offsets is
//! exactly a forward-substitution walk over the lower-triangular Hermite
//! basis `H̃'` — which is what the paper's generated loops do with
//! `STEP = c_k` and offsets `a_kl` (§2.3, Fig. 2).

use crate::hnf::{column_hnf, is_column_hnf};
use crate::imat::IMat;

/// A full-rank integer lattice in `Zⁿ`, stored via its lower-triangular
/// Hermite basis (columns span the lattice).
#[derive(Clone, Debug)]
pub struct Lattice {
    basis: IMat, // lower triangular, positive diagonal (column HNF)
}

impl Lattice {
    /// The lattice spanned by the columns of `m` (any non-singular square
    /// integer matrix).
    pub fn from_columns(m: &IMat) -> Self {
        let h = column_hnf(m).hnf;
        debug_assert!(is_column_hnf(&h));
        Lattice { basis: h }
    }

    /// The standard lattice `Zⁿ`.
    pub fn standard(n: usize) -> Self {
        Lattice {
            basis: IMat::identity(n),
        }
    }

    /// Lattice dimension.
    pub fn dim(&self) -> usize {
        self.basis.rows()
    }

    /// The Hermite basis (lower triangular, positive diagonal).
    pub fn hermite_basis(&self) -> &IMat {
        &self.basis
    }

    /// The stride of coordinate `k`: the diagonal entry `h̃_kk`, i.e. the
    /// paper's loop stride `c_k`.
    pub fn stride(&self, k: usize) -> i64 {
        self.basis[(k, k)]
    }

    /// The lattice index (number of integer points per lattice point).
    pub fn index(&self) -> i64 {
        (0..self.dim()).map(|k| self.basis[(k, k)]).product()
    }

    /// Solve `basis · m = j` by forward substitution. Returns `None` when `j`
    /// is not a lattice point.
    pub fn coordinates(&self, j: &[i64]) -> Option<Vec<i64>> {
        let n = self.dim();
        assert_eq!(j.len(), n, "dimension mismatch");
        let mut m = vec![0i64; n];
        for k in 0..n {
            let mut rem = j[k];
            for l in 0..k {
                rem = rem
                    .checked_sub(self.basis[(k, l)].checked_mul(m[l])?)
                    .expect("lattice coordinate overflow");
            }
            let d = self.basis[(k, k)];
            if rem.rem_euclid(d) != 0 {
                return None;
            }
            m[k] = rem.div_euclid(d);
        }
        Some(m)
    }

    /// True iff `j` lies on the lattice.
    pub fn contains(&self, j: &[i64]) -> bool {
        self.coordinates(j).is_some()
    }

    /// The lattice point with coordinates `m`.
    pub fn point(&self, m: &[i64]) -> Vec<i64> {
        self.basis.mul_vec(m)
    }

    /// Iterate all lattice points `j` with `lo_k ≤ j_k < hi_k` for every `k`,
    /// in lexicographic order of `j` (outermost coordinate slowest) — the
    /// same order as the paper's generated strided loops.
    pub fn points_in_box<'a>(&'a self, lo: &[i64], hi: &[i64]) -> LatticeBoxIter<'a> {
        let n = self.dim();
        assert_eq!(lo.len(), n, "dimension mismatch");
        assert_eq!(hi.len(), n, "dimension mismatch");
        LatticeBoxIter::new(self, lo.to_vec(), hi.to_vec())
    }

    /// Number of lattice points in the box `[lo, hi)` along each dimension,
    /// assuming a dense product structure. Exact for any lower-triangular
    /// basis because the count per level is independent of the outer levels'
    /// residues only in total (we count by iteration otherwise).
    pub fn count_in_box(&self, lo: &[i64], hi: &[i64]) -> usize {
        self.points_in_box(lo, hi).count()
    }

    /// Visit every lattice point of the box `[lo, hi)` in the same order as
    /// [`Lattice::points_in_box`], reusing one internal point buffer — no
    /// per-point allocation. This is the walk the compiled execution path
    /// uses at plan time to lower communication regions and tile traversals
    /// to flat indices.
    pub fn for_each_in_box(&self, lo: &[i64], hi: &[i64], mut f: impl FnMut(&[i64])) {
        let n = self.dim();
        assert_eq!(lo.len(), n, "dimension mismatch");
        assert_eq!(hi.len(), n, "dimension mismatch");
        let mut it = LatticeBoxIter::new(self, lo.to_vec(), hi.to_vec());
        while !it.done {
            f(&it.point);
            it.advance();
        }
    }
}

/// Iterator over lattice points in a half-open box (see
/// [`Lattice::points_in_box`]).
pub struct LatticeBoxIter<'a> {
    lat: &'a Lattice,
    lo: Vec<i64>,
    hi: Vec<i64>,
    /// Current multiplier vector (coordinates w.r.t. the Hermite basis); the
    /// resulting point is maintained incrementally in `point`.
    m: Vec<i64>,
    /// `m_hi[k]`: exclusive upper bound of `m[k]` for the current outer state.
    m_hi: Vec<i64>,
    point: Vec<i64>,
    done: bool,
}

impl<'a> LatticeBoxIter<'a> {
    fn new(lat: &'a Lattice, lo: Vec<i64>, hi: Vec<i64>) -> Self {
        let n = lat.dim();
        let mut it = LatticeBoxIter {
            lat,
            lo,
            hi,
            m: vec![0; n],
            m_hi: vec![0; n],
            point: vec![0; n],
            done: false,
        };
        if !it.seek(0) {
            it.done = true;
        }
        it
    }

    /// Partial coordinate `j_k` contribution from levels `< k`.
    fn partial(&self, k: usize) -> i64 {
        let mut acc = 0i64;
        for l in 0..k {
            acc += self.lat.basis[(k, l)] * self.m[l];
        }
        acc
    }

    /// Reset levels `k..n` to their first valid multipliers. Returns
    /// `Err(lvl)` when level `lvl` has an empty range for the current outer
    /// multipliers.
    fn rewind_from(&mut self, k: usize) -> Result<(), usize> {
        let n = self.lat.dim();
        for lvl in k..n {
            let base = self.partial(lvl);
            let d = self.lat.basis[(lvl, lvl)]; // > 0
                                                // Need lo ≤ base + d·m < hi  ⇒  ceil((lo-base)/d) ≤ m < ceil((hi-base)/d)
            let m_lo = (self.lo[lvl] - base).div_euclid(d)
                + i64::from((self.lo[lvl] - base).rem_euclid(d) != 0);
            let m_hi = (self.hi[lvl] - base).div_euclid(d)
                + i64::from((self.hi[lvl] - base).rem_euclid(d) != 0);
            if m_lo >= m_hi {
                return Err(lvl);
            }
            self.m[lvl] = m_lo;
            self.m_hi[lvl] = m_hi;
            self.point[lvl] = base + d * m_lo;
        }
        Ok(())
    }

    /// Step the deepest level strictly below `lvl` that still has room,
    /// returning its index; `None` when the iteration is exhausted.
    fn step_below(&mut self, lvl: usize) -> Option<usize> {
        let mut k = lvl;
        while k > 0 {
            k -= 1;
            self.m[k] += 1;
            if self.m[k] < self.m_hi[k] {
                self.point[k] += self.lat.basis[(k, k)];
                return Some(k);
            }
        }
        None
    }

    /// Find the first valid configuration with all levels `≥ from` reset,
    /// backtracking across empty inner ranges. Returns false when exhausted.
    fn seek(&mut self, mut from: usize) -> bool {
        loop {
            match self.rewind_from(from) {
                Ok(()) => return true,
                Err(lvl) => match self.step_below(lvl) {
                    Some(stepped) => from = stepped + 1,
                    None => return false,
                },
            }
        }
    }

    /// Advance to the next multiplier vector.
    fn advance(&mut self) {
        let n = self.lat.dim();
        match self.step_below(n) {
            Some(k) => {
                if !self.seek(k + 1) {
                    self.done = true;
                }
            }
            None => self.done = true,
        }
    }
}

impl<'a> Iterator for LatticeBoxIter<'a> {
    type Item = Vec<i64>;

    fn next(&mut self) -> Option<Vec<i64>> {
        if self.done {
            return None;
        }
        let out = self.point.clone();
        self.advance();
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force(lat: &Lattice, lo: &[i64], hi: &[i64]) -> Vec<Vec<i64>> {
        // Enumerate every integer point of the box and filter by membership.
        let n = lat.dim();
        let mut out = vec![];
        let mut p: Vec<i64> = lo.to_vec();
        'outer: loop {
            if lat.contains(&p) {
                out.push(p.clone());
            }
            for k in (0..n).rev() {
                p[k] += 1;
                if p[k] < hi[k] {
                    continue 'outer;
                }
                p[k] = lo[k];
                if k == 0 {
                    break 'outer;
                }
            }
        }
        out
    }

    #[test]
    fn standard_lattice_enumerates_full_box() {
        let lat = Lattice::standard(2);
        let pts: Vec<_> = lat.points_in_box(&[0, 0], &[2, 3]).collect();
        assert_eq!(pts.len(), 6);
        assert_eq!(pts[0], vec![0, 0]);
        assert_eq!(pts[5], vec![1, 2]);
    }

    #[test]
    fn skewed_lattice_matches_brute_force() {
        let basis = IMat::from_rows(&[&[2, 0], &[1, 3]]);
        let lat = Lattice::from_columns(&basis);
        let fast: Vec<_> = lat.points_in_box(&[-3, -3], &[7, 8]).collect();
        let slow = brute_force(&lat, &[-3, -3], &[7, 8]);
        assert_eq!(fast, slow);
    }

    #[test]
    fn three_dimensional_lattice_matches_brute_force() {
        let basis = IMat::from_rows(&[&[2, 0, 0], &[1, 2, 0], &[0, 1, 3]]);
        let lat = Lattice::from_columns(&basis);
        let fast: Vec<_> = lat.points_in_box(&[0, 0, 0], &[6, 6, 6]).collect();
        let slow = brute_force(&lat, &[0, 0, 0], &[6, 6, 6]);
        assert_eq!(fast, slow);
        assert!(!fast.is_empty());
    }

    #[test]
    fn lexicographic_order() {
        let basis = IMat::from_rows(&[&[2, 0], &[1, 3]]);
        let lat = Lattice::from_columns(&basis);
        let pts: Vec<_> = lat.points_in_box(&[0, 0], &[8, 8]).collect();
        for w in pts.windows(2) {
            assert!(w[0] < w[1], "not lexicographically increasing: {:?}", w);
        }
    }

    #[test]
    fn coordinates_round_trip() {
        let basis = IMat::from_rows(&[&[3, 0], &[2, 5]]);
        let lat = Lattice::from_columns(&basis);
        for m in [[0i64, 0], [1, 2], [-3, 4], [7, -2]] {
            let j = lat.point(&m);
            let back = lat
                .coordinates(&j)
                .expect("lattice point must have coordinates");
            assert_eq!(lat.point(&back), j);
        }
        assert!(!lat.contains(&[1, 0]));
        assert!(lat.contains(&[3, 2]));
    }

    #[test]
    fn empty_box_yields_nothing() {
        let lat = Lattice::standard(3);
        assert_eq!(lat.points_in_box(&[0, 0, 0], &[0, 5, 5]).count(), 0);
        assert_eq!(lat.points_in_box(&[2, 2, 2], &[2, 2, 2]).count(), 0);
    }

    #[test]
    fn index_counts_density() {
        // Lattice of index 6 inside a 6x6 box should have 6 points.
        let basis = IMat::from_rows(&[&[2, 0], &[0, 3]]);
        let lat = Lattice::from_columns(&basis);
        assert_eq!(lat.index(), 6);
        assert_eq!(lat.count_in_box(&[0, 0], &[6, 6]), 6);
    }

    #[test]
    fn for_each_matches_iterator() {
        let basis = IMat::from_rows(&[&[2, 0, 0], &[1, 2, 0], &[0, 1, 3]]);
        let lat = Lattice::from_columns(&basis);
        let lo = [-2i64, 0, -1];
        let hi = [5i64, 6, 7];
        let iter: Vec<_> = lat.points_in_box(&lo, &hi).collect();
        let mut walked = vec![];
        lat.for_each_in_box(&lo, &hi, |p| walked.push(p.to_vec()));
        assert_eq!(iter, walked);
    }

    #[test]
    fn backtracking_handles_sparse_inner_ranges() {
        // Strongly skewed basis where some outer values give empty inner
        // ranges in a narrow box.
        let basis = IMat::from_rows(&[&[1, 0], &[5, 7]]);
        let lat = Lattice::from_columns(&basis);
        let fast: Vec<_> = lat.points_in_box(&[0, 0], &[10, 3]).collect();
        let slow = brute_force(&lat, &[0, 0], &[10, 3]);
        assert_eq!(fast, slow);
    }
}
