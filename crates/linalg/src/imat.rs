//! Dense integer matrices (`i64` entries) with exact operations.
//!
//! These model the integer matrices of the paper: dependence matrices `D`,
//! skewing matrices `T`, the integralized tiling transformation `H' = V·H`,
//! and its Hermite Normal Form `H̃'`. Matrices are small (loop depth × loop
//! depth), so a simple row-major `Vec<i64>` is the right representation.

use crate::rational::Rational;
use crate::rmat::RMat;
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `rows × cols` integer matrix, row-major.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct IMat {
    rows: usize,
    cols: usize,
    data: Vec<i64>,
}

impl IMat {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        IMat {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = IMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1;
        }
        m
    }

    /// Build from row slices.
    ///
    /// # Panics
    /// Panics if the rows have inconsistent lengths or the matrix is empty.
    pub fn from_rows(rows: &[&[i64]]) -> Self {
        assert!(!rows.is_empty(), "empty matrix");
        let cols = rows[0].len();
        assert!(cols > 0, "empty matrix row");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged matrix rows");
            data.extend_from_slice(r);
        }
        IMat {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Build from a nested vector (convenience for tests and kernels).
    pub fn from_vec(rows: Vec<Vec<i64>>) -> Self {
        let refs: Vec<&[i64]> = rows.iter().map(|r| r.as_slice()).collect();
        IMat::from_rows(&refs)
    }

    /// Build a diagonal matrix from its diagonal entries.
    pub fn diag(d: &[i64]) -> Self {
        let mut m = IMat::zeros(d.len(), d.len());
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    #[inline]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[i64] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Column `j` as an owned vector.
    pub fn col(&self, j: usize) -> Vec<i64> {
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> IMat {
        let mut t = IMat::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix product `self · rhs` with overflow checking.
    ///
    /// # Panics
    /// Panics on dimension mismatch or arithmetic overflow.
    pub fn mul(&self, rhs: &IMat) -> IMat {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matrix product");
        let mut out = IMat::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for j in 0..rhs.cols {
                let mut acc: i64 = 0;
                for k in 0..self.cols {
                    acc = acc
                        .checked_add(
                            self[(i, k)]
                                .checked_mul(rhs[(k, j)])
                                .expect("imat mul overflow"),
                        )
                        .expect("imat mul overflow");
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    /// Matrix–vector product `self · v`.
    pub fn mul_vec(&self, v: &[i64]) -> Vec<i64> {
        assert_eq!(
            self.cols,
            v.len(),
            "dimension mismatch in matrix-vector product"
        );
        (0..self.rows)
            .map(|i| {
                self.row(i).iter().zip(v).fold(0i64, |acc, (&a, &b)| {
                    acc.checked_add(a.checked_mul(b).expect("imat mul_vec overflow"))
                        .expect("imat mul_vec overflow")
                })
            })
            .collect()
    }

    /// Determinant by fraction-free Bareiss elimination (exact).
    ///
    /// # Panics
    /// Panics if the matrix is not square.
    pub fn det(&self) -> i64 {
        assert!(self.is_square(), "determinant of non-square matrix");
        let n = self.rows;
        let mut a: Vec<i128> = self.data.iter().map(|&v| v as i128).collect();
        let at = |a: &[i128], i: usize, j: usize| a[i * n + j];
        let mut sign = 1i128;
        let mut prev = 1i128;
        for k in 0..n.saturating_sub(1) {
            if at(&a, k, k) == 0 {
                // Find a pivot row below.
                let Some(p) = (k + 1..n).find(|&p| at(&a, p, k) != 0) else {
                    return 0;
                };
                for j in 0..n {
                    a.swap(k * n + j, p * n + j);
                }
                sign = -sign;
            }
            for i in k + 1..n {
                for j in k + 1..n {
                    let v = at(&a, i, j)
                        .checked_mul(at(&a, k, k))
                        .and_then(|x| x.checked_sub(at(&a, i, k).checked_mul(at(&a, k, j))?))
                        .expect("determinant overflow");
                    a[i * n + j] = v / prev;
                }
                a[i * n + k] = 0;
            }
            prev = at(&a, k, k);
        }
        let d = sign * at(&a, n - 1, n - 1);
        i64::try_from(d).expect("determinant exceeds i64")
    }

    /// Convert to a rational matrix.
    pub fn to_rmat(&self) -> RMat {
        RMat::from_fn(self.rows, self.cols, |i, j| {
            Rational::from_int(self[(i, j)])
        })
    }

    /// Exact inverse as a rational matrix.
    ///
    /// # Panics
    /// Panics if the matrix is singular or not square.
    pub fn inverse(&self) -> RMat {
        self.to_rmat().inverse()
    }

    /// True iff every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|&v| v == 0)
    }
}

impl Index<(usize, usize)> for IMat {
    type Output = i64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &i64 {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for IMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut i64 {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for IMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "IMat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            writeln!(f, "  {:?}", self.row(i))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_product() {
        let a = IMat::from_rows(&[&[1, 2], &[3, 4]]);
        let i = IMat::identity(2);
        assert_eq!(a.mul(&i), a);
        assert_eq!(i.mul(&a), a);
        let b = IMat::from_rows(&[&[0, 1], &[1, 0]]);
        assert_eq!(a.mul(&b), IMat::from_rows(&[&[2, 1], &[4, 3]]));
    }

    #[test]
    fn det_small_cases() {
        assert_eq!(IMat::from_rows(&[&[5]]).det(), 5);
        assert_eq!(IMat::from_rows(&[&[1, 2], &[3, 4]]).det(), -2);
        assert_eq!(IMat::identity(4).det(), 1);
        // Singular.
        assert_eq!(IMat::from_rows(&[&[1, 2], &[2, 4]]).det(), 0);
        // Needs a row swap (zero pivot).
        assert_eq!(IMat::from_rows(&[&[0, 1], &[1, 0]]).det(), -1);
    }

    #[test]
    fn det_matches_cofactor_3x3() {
        let m = IMat::from_rows(&[&[2, -1, 0], &[3, 5, 2], &[1, 1, 1]]);
        // Cofactor expansion: 2*(5-2) +1*(3-2) + 0 = 7
        assert_eq!(m.det(), 7);
    }

    #[test]
    fn det_skewing_matrices_are_unimodular() {
        // The paper's SOR and Jacobi skewing matrices.
        let t_sor = IMat::from_rows(&[&[1, 0, 0], &[1, 1, 0], &[2, 0, 1]]);
        let t_jac = IMat::from_rows(&[&[1, 0, 0], &[1, 1, 0], &[1, 0, 1]]);
        assert_eq!(t_sor.det(), 1);
        assert_eq!(t_jac.det(), 1);
    }

    #[test]
    fn mul_vec_matches_rows() {
        let a = IMat::from_rows(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(a.mul_vec(&[1, 0, -1]), vec![-2, -2]);
    }

    #[test]
    fn transpose_round_trip() {
        let a = IMat::from_rows(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().row(0), &[1, 4]);
        assert_eq!(a.col(2), vec![3, 6]);
    }

    #[test]
    fn diag_builds_diagonal() {
        let d = IMat::diag(&[2, 3, 4]);
        assert_eq!(d.det(), 24);
        assert_eq!(d.mul_vec(&[1, 1, 1]), vec![2, 3, 4]);
    }
}
