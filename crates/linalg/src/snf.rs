//! Smith Normal Form of integer matrices.
//!
//! For a non-singular integer matrix `A`, computes unimodular `U`, `V` with
//! `U·A·V = S`, `S = diag(s_1, …, s_n)`, `s_i > 0` and `s_i | s_{i+1}`.
//! The invariant factors characterize the quotient group `Zⁿ / A·Zⁿ` —
//! e.g. the number of integer points per TTIS lattice cell is `Π s_i`
//! (`= |det A|`), and the factor structure tells how the lattice sits in
//! `Zⁿ` independently of any basis choice. Used by tests to cross-validate
//! the Hermite-based lattice machinery.

use crate::imat::IMat;

/// Result of a Smith Normal Form computation: `u · a · v = s`.
#[derive(Clone, Debug)]
pub struct SnfResult {
    /// Diagonal matrix of invariant factors.
    pub s: IMat,
    /// Left unimodular transform (row operations).
    pub u: IMat,
    /// Right unimodular transform (column operations).
    pub v: IMat,
}

impl SnfResult {
    /// The invariant factors `s_1 | s_2 | … | s_n`.
    pub fn invariant_factors(&self) -> Vec<i64> {
        (0..self.s.rows()).map(|i| self.s[(i, i)]).collect()
    }
}

/// Compute the Smith Normal Form of a non-singular square integer matrix.
///
/// # Panics
/// Panics if the matrix is not square or is singular, or on arithmetic
/// overflow (the pipeline's matrices are tiny).
pub fn smith_normal_form(a: &IMat) -> SnfResult {
    assert!(a.is_square(), "SNF requires a square matrix");
    let n = a.rows();
    assert!(
        a.det() != 0,
        "SNF of a singular matrix is not supported here"
    );
    let mut s = a.clone();
    let mut u = IMat::identity(n);
    let mut v = IMat::identity(n);

    let add_row = |m: &mut IMat, dst: usize, src: usize, f: i64| {
        for j in 0..m.cols() {
            let x = m[(src, j)].checked_mul(f).expect("snf overflow");
            m[(dst, j)] = m[(dst, j)].checked_add(x).expect("snf overflow");
        }
    };
    let add_col = |m: &mut IMat, dst: usize, src: usize, f: i64| {
        for i in 0..m.rows() {
            let x = m[(i, src)].checked_mul(f).expect("snf overflow");
            m[(i, dst)] = m[(i, dst)].checked_add(x).expect("snf overflow");
        }
    };
    let swap_rows = |m: &mut IMat, x: usize, y: usize| {
        for j in 0..m.cols() {
            let t = m[(x, j)];
            m[(x, j)] = m[(y, j)];
            m[(y, j)] = t;
        }
    };
    let swap_cols = |m: &mut IMat, x: usize, y: usize| {
        for i in 0..m.rows() {
            let t = m[(i, x)];
            m[(i, x)] = m[(i, y)];
            m[(i, y)] = t;
        }
    };

    for k in 0..n {
        loop {
            // Move the smallest non-zero entry of the trailing block to (k,k).
            let mut best: Option<(usize, usize, i64)> = None;
            for i in k..n {
                for j in k..n {
                    let x = s[(i, j)];
                    if x != 0 && best.is_none_or(|(_, _, b)| x.abs() < b.abs()) {
                        best = Some((i, j, x));
                    }
                }
            }
            let (bi, bj, _) = best.expect("singular block in SNF");
            if bi != k {
                swap_rows(&mut s, k, bi);
                swap_rows(&mut u, k, bi);
            }
            if bj != k {
                swap_cols(&mut s, k, bj);
                swap_cols(&mut v, k, bj);
            }
            let pivot = s[(k, k)];
            // Reduce the rest of row k and column k.
            let mut dirty = false;
            for i in k + 1..n {
                if s[(i, k)] != 0 {
                    let q = s[(i, k)].div_euclid(pivot);
                    add_row(&mut s, i, k, -q);
                    add_row(&mut u, i, k, -q);
                    if s[(i, k)] != 0 {
                        dirty = true;
                    }
                }
            }
            for j in k + 1..n {
                if s[(k, j)] != 0 {
                    let q = s[(k, j)].div_euclid(pivot);
                    add_col(&mut s, j, k, -q);
                    add_col(&mut v, j, k, -q);
                    if s[(k, j)] != 0 {
                        dirty = true;
                    }
                }
            }
            if dirty {
                continue;
            }
            // Row k and column k are clear; enforce divisibility: if some
            // trailing entry is not divisible by the pivot, fold its row in
            // and restart this k.
            let mut fixed = true;
            'scan: for i in k + 1..n {
                for j in k + 1..n {
                    if s[(i, j)] % pivot != 0 {
                        add_row(&mut s, k, i, 1);
                        add_row(&mut u, k, i, 1);
                        fixed = false;
                        break 'scan;
                    }
                }
            }
            if fixed {
                break;
            }
        }
        if s[(k, k)] < 0 {
            for j in 0..n {
                s[(k, j)] = -s[(k, j)];
                u[(k, j)] = -u[(k, j)];
            }
        }
    }

    debug_assert_eq!(u.mul(a).mul(&v), s, "SNF invariant violated");
    SnfResult { s, u, v }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(a: &IMat) {
        let r = smith_normal_form(a);
        // Witness identity.
        assert_eq!(r.u.mul(a).mul(&r.v), r.s);
        // Unimodular transforms.
        assert_eq!(r.u.det().abs(), 1);
        assert_eq!(r.v.det().abs(), 1);
        // Diagonal, positive, divisibility chain, |det| preserved.
        let n = a.rows();
        let mut prod = 1i64;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    assert_eq!(r.s[(i, j)], 0, "not diagonal");
                }
            }
            assert!(r.s[(i, i)] > 0);
            prod *= r.s[(i, i)];
            if i + 1 < n {
                assert_eq!(r.s[(i + 1, i + 1)] % r.s[(i, i)], 0, "divisibility chain");
            }
        }
        assert_eq!(prod, a.det().abs());
    }

    #[test]
    fn snf_of_identity() {
        let r = smith_normal_form(&IMat::identity(3));
        assert_eq!(r.invariant_factors(), vec![1, 1, 1]);
    }

    #[test]
    fn snf_of_diagonal_reorders_to_divisibility() {
        // diag(4, 6) has invariant factors (2, 12), not (4, 6).
        let r = smith_normal_form(&IMat::diag(&[4, 6]));
        assert_eq!(r.invariant_factors(), vec![2, 12]);
        check(&IMat::diag(&[4, 6]));
    }

    #[test]
    fn snf_of_assorted_matrices() {
        for a in [
            IMat::from_rows(&[&[2, 1], &[0, 2]]),
            IMat::from_rows(&[&[3, 1, -2], &[-1, 4, 2], &[5, 0, 7]]),
            IMat::from_rows(&[&[1, 0, 0], &[0, 1, 0], &[-1, 0, 1]]),
            IMat::from_rows(&[&[6, 4], &[4, 6]]),
            IMat::diag(&[2, -3, 5]),
        ] {
            check(&a);
        }
    }

    #[test]
    fn unimodular_matrices_have_trivial_factors() {
        let t = IMat::from_rows(&[&[1, 0, 0], &[1, 1, 0], &[2, 0, 1]]);
        let r = smith_normal_form(&t);
        assert_eq!(r.invariant_factors(), vec![1, 1, 1]);
    }

    #[test]
    fn lattice_index_equals_product_of_factors() {
        // Cross-check against the Hermite-based lattice index.
        use crate::lattice::Lattice;
        let a = IMat::from_rows(&[&[2, 1, 0], &[0, 3, 1], &[0, 0, 2]]);
        let lat = Lattice::from_columns(&a);
        let r = smith_normal_form(&a);
        let prod: i64 = r.invariant_factors().iter().product();
        assert_eq!(prod, lat.index());
    }
}
