//! Exact rational arithmetic on `i128` with panic-on-overflow semantics.
//!
//! The compiler pipeline manipulates small matrices (loop depth `n ≤ 6` in
//! practice) whose entries stay tiny, so a fixed-width exact rational is both
//! sufficient and fast. All operations are checked: an overflow indicates a
//! logic error in the caller (e.g. a degenerate tiling matrix) and aborts
//! loudly instead of producing silently wrong code.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// Greatest common divisor of two non-negative integers.
#[inline]
pub fn gcd_i128(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

/// Least common multiple; panics on overflow.
#[inline]
pub fn lcm_i128(a: i128, b: i128) -> i128 {
    if a == 0 || b == 0 {
        return 0;
    }
    (a / gcd_i128(a, b))
        .checked_mul(b)
        .expect("lcm overflow")
        .abs()
}

/// An exact rational number `num/den` with `den > 0` and `gcd(num, den) = 1`.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rational {
    num: i128,
    den: i128,
}

impl Rational {
    pub const ZERO: Rational = Rational { num: 0, den: 1 };
    pub const ONE: Rational = Rational { num: 1, den: 1 };

    /// Create a rational from a numerator and denominator.
    ///
    /// # Panics
    /// Panics if `den == 0`.
    pub fn new(num: i128, den: i128) -> Self {
        assert!(den != 0, "rational with zero denominator");
        let g = gcd_i128(num, den);
        let (mut num, mut den) = if g != 0 { (num / g, den / g) } else { (0, 1) };
        if den < 0 {
            num = -num;
            den = -den;
        }
        Rational { num, den }
    }

    /// The integer `v` as a rational.
    #[inline]
    pub fn from_int(v: i64) -> Self {
        Rational {
            num: v as i128,
            den: 1,
        }
    }

    #[inline]
    pub fn num(&self) -> i128 {
        self.num
    }

    #[inline]
    pub fn den(&self) -> i128 {
        self.den
    }

    #[inline]
    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    #[inline]
    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    #[inline]
    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// True iff the value is an integer.
    #[inline]
    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    /// The value as an integer.
    ///
    /// # Panics
    /// Panics if the value is not an integer or does not fit an `i64`.
    pub fn to_integer(&self) -> i64 {
        assert!(self.den == 1, "rational {self} is not an integer");
        i64::try_from(self.num).expect("rational exceeds i64")
    }

    /// Largest integer `≤ self`.
    pub fn floor(&self) -> i64 {
        let q = self.num.div_euclid(self.den);
        i64::try_from(q).expect("floor exceeds i64")
    }

    /// Smallest integer `≥ self`.
    pub fn ceil(&self) -> i64 {
        let q = -(-self.num).div_euclid(self.den);
        i64::try_from(q).expect("ceil exceeds i64")
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    /// Panics if the value is zero.
    pub fn recip(&self) -> Self {
        assert!(self.num != 0, "reciprocal of zero");
        Rational::new(self.den, self.num)
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        Rational {
            num: self.num.abs(),
            den: self.den,
        }
    }

    /// Approximate `f64` value (for reporting only; never used in decisions).
    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }

    fn checked_add(self, rhs: Self) -> Option<Self> {
        let g = gcd_i128(self.den, rhs.den);
        let l = self.den / g;
        let r = rhs.den / g;
        let num = self
            .num
            .checked_mul(r)?
            .checked_add(rhs.num.checked_mul(l)?)?;
        let den = self.den.checked_mul(r)?;
        Some(Rational::new(num, den))
    }

    fn checked_mul_r(self, rhs: Self) -> Option<Self> {
        // Cross-reduce first to keep magnitudes small.
        let g1 = gcd_i128(self.num, rhs.den);
        let g2 = gcd_i128(rhs.num, self.den);
        let num = (self.num / g1).checked_mul(rhs.num / g2)?;
        let den = (self.den / g2).checked_mul(rhs.den / g1)?;
        Some(Rational::new(num, den))
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational::from_int(v)
    }
}

impl Add for Rational {
    type Output = Rational;
    fn add(self, rhs: Self) -> Self {
        self.checked_add(rhs).expect("rational add overflow")
    }
}

impl AddAssign for Rational {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for Rational {
    type Output = Rational;
    fn sub(self, rhs: Self) -> Self {
        self + (-rhs)
    }
}

impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Self {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Mul for Rational {
    type Output = Rational;
    fn mul(self, rhs: Self) -> Self {
        self.checked_mul_r(rhs).expect("rational mul overflow")
    }
}

impl Div for Rational {
    type Output = Rational;
    #[allow(clippy::suspicious_arithmetic_impl)] // division via reciprocal is exact here
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // den > 0 on both sides, so cross-multiplication preserves order.
        let l = self
            .num
            .checked_mul(other.den)
            .expect("rational cmp overflow");
        let r = other
            .num
            .checked_mul(self.den)
            .expect("rational cmp overflow");
        l.cmp(&r)
    }
}

impl fmt::Debug for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_sign_and_gcd() {
        let r = Rational::new(4, -6);
        assert_eq!(r.num(), -2);
        assert_eq!(r.den(), 3);
    }

    #[test]
    fn zero_numerator_normalizes_denominator() {
        let r = Rational::new(0, -17);
        assert_eq!(r, Rational::ZERO);
        assert_eq!(r.den(), 1);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }

    #[test]
    fn arithmetic_identities() {
        let a = Rational::new(3, 4);
        let b = Rational::new(-5, 6);
        assert_eq!(a + b, Rational::new(-1, 12));
        assert_eq!(a - b, Rational::new(19, 12));
        assert_eq!(a * b, Rational::new(-5, 8));
        assert_eq!(a / b, Rational::new(-9, 10));
        assert_eq!(-a + a, Rational::ZERO);
    }

    #[test]
    fn floor_and_ceil_negative_values() {
        assert_eq!(Rational::new(-7, 2).floor(), -4);
        assert_eq!(Rational::new(-7, 2).ceil(), -3);
        assert_eq!(Rational::new(7, 2).floor(), 3);
        assert_eq!(Rational::new(7, 2).ceil(), 4);
        assert_eq!(Rational::new(6, 2).floor(), 3);
        assert_eq!(Rational::new(6, 2).ceil(), 3);
        assert_eq!(Rational::new(-6, 2).floor(), -3);
        assert_eq!(Rational::new(-6, 2).ceil(), -3);
    }

    #[test]
    fn ordering_by_cross_multiplication() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::new(-1, 3));
        assert!(Rational::new(2, 4) == Rational::new(1, 2));
    }

    #[test]
    fn recip_and_integer_conversion() {
        assert_eq!(Rational::new(3, 7).recip(), Rational::new(7, 3));
        assert_eq!(Rational::new(-3, 7).recip(), Rational::new(-7, 3));
        assert!(Rational::new(6, 3).is_integer());
        assert_eq!(Rational::new(6, 3).to_integer(), 2);
    }

    #[test]
    fn gcd_lcm_edge_cases() {
        assert_eq!(gcd_i128(0, 0), 0);
        assert_eq!(gcd_i128(0, 5), 5);
        assert_eq!(gcd_i128(-4, 6), 2);
        assert_eq!(lcm_i128(4, 6), 12);
        assert_eq!(lcm_i128(0, 6), 0);
        assert_eq!(lcm_i128(-4, 6), 12);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Rational::new(5, 1).to_string(), "5");
        assert_eq!(Rational::new(5, 2).to_string(), "5/2");
        assert_eq!(Rational::new(-5, 2).to_string(), "-5/2");
    }
}
