//! # tilecc-linalg
//!
//! Exact integer/rational linear algebra for the `tilecc` compiler framework —
//! a Rust reproduction of *"Compiling Tiled Iteration Spaces for Clusters"*
//! (Goumas, Drosinos, Athanasaki, Koziris; IEEE CLUSTER 2002).
//!
//! The paper's machinery is built on a handful of exact linear-algebra
//! primitives, all provided here:
//!
//! * [`Rational`] — exact rational arithmetic (the tiling matrix `H` has
//!   fractional entries such as `1/x`).
//! * [`IMat`] / [`RMat`] — small dense integer and rational matrices with
//!   exact determinants, products, and inverses (`P = H⁻¹`, `P' = H'⁻¹`).
//! * [`column_hnf`] — the column-style Hermite Normal Form `H̃'` of
//!   `H' = V·H`, from which loop strides `c_k = h̃'_kk` and incremental
//!   offsets `a_kl = h̃'_kl` are read off (§2.3 of the paper).
//! * [`Lattice`] — the column lattice of `H'` (the set of TTIS points) with
//!   strided enumeration inside boxes, equivalent to the paper's generated
//!   loops with non-unit `STEP`s.

pub mod hnf;
pub mod imat;
pub mod lattice;
pub mod rational;
pub mod rmat;
pub mod snf;
pub mod vecops;

pub use hnf::{column_hnf, is_column_hnf, HnfResult};
pub use imat::IMat;
pub use lattice::{Lattice, LatticeBoxIter};
pub use rational::{gcd_i128, lcm_i128, Rational};
pub use rmat::RMat;
pub use snf::{smith_normal_form, SnfResult};
