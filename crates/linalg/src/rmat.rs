//! Dense rational matrices with exact Gauss–Jordan inversion and solving.
//!
//! The tiling transformation `H` and its dual `P = H⁻¹` have rational entries
//! (`H` rows are `1/x`-scaled normals); all geometric reasoning in the
//! pipeline is exact, so these matrices use [`Rational`] entries throughout.

use crate::imat::IMat;
use crate::rational::{lcm_i128, Rational};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense `rows × cols` rational matrix, row-major.
#[derive(Clone, PartialEq, Eq)]
pub struct RMat {
    rows: usize,
    cols: usize,
    data: Vec<Rational>,
}

impl RMat {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        RMat {
            rows,
            cols,
            data: vec![Rational::ZERO; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = RMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = Rational::ONE;
        }
        m
    }

    /// Build a matrix by evaluating `f(i, j)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> Rational) -> Self {
        let mut m = RMat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Build from rows of `(num, den)` pairs — convenient for writing the
    /// paper's `H` matrices literally, e.g. `[[(1,x),(0,1),(0,1)], …]`.
    pub fn from_fractions(rows: &[&[(i64, i64)]]) -> Self {
        assert!(!rows.is_empty() && !rows[0].is_empty(), "empty matrix");
        let cols = rows[0].len();
        RMat::from_fn(rows.len(), cols, |i, j| {
            let (n, d) = rows[i][j];
            Rational::new(n as i128, d as i128)
        })
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `i` as a slice.
    #[inline]
    pub fn row(&self, i: usize) -> &[Rational] {
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Matrix product.
    pub fn mul(&self, rhs: &RMat) -> RMat {
        assert_eq!(self.cols, rhs.rows, "dimension mismatch in matrix product");
        RMat::from_fn(self.rows, rhs.cols, |i, j| {
            let mut acc = Rational::ZERO;
            for k in 0..self.cols {
                acc += self[(i, k)] * rhs[(k, j)];
            }
            acc
        })
    }

    /// Matrix–vector product over rationals.
    pub fn mul_vec(&self, v: &[Rational]) -> Vec<Rational> {
        assert_eq!(self.cols, v.len(), "dimension mismatch");
        (0..self.rows)
            .map(|i| {
                let mut acc = Rational::ZERO;
                for k in 0..self.cols {
                    acc += self[(i, k)] * v[k];
                }
                acc
            })
            .collect()
    }

    /// Matrix–vector product with an integer vector.
    pub fn mul_ivec(&self, v: &[i64]) -> Vec<Rational> {
        let rv: Vec<Rational> = v.iter().map(|&x| Rational::from_int(x)).collect();
        self.mul_vec(&rv)
    }

    /// Exact determinant by Gaussian elimination.
    pub fn det(&self) -> Rational {
        assert_eq!(self.rows, self.cols, "determinant of non-square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut det = Rational::ONE;
        for k in 0..n {
            // Partial pivot: any non-zero entry works since arithmetic is exact.
            let Some(p) = (k..n).find(|&p| !a[(p, k)].is_zero()) else {
                return Rational::ZERO;
            };
            if p != k {
                for j in 0..n {
                    let tmp = a[(k, j)];
                    a[(k, j)] = a[(p, j)];
                    a[(p, j)] = tmp;
                }
                det = -det;
            }
            det = det * a[(k, k)];
            let inv = a[(k, k)].recip();
            for i in k + 1..n {
                let factor = a[(i, k)] * inv;
                if factor.is_zero() {
                    continue;
                }
                for j in k..n {
                    let v = a[(i, j)] - factor * a[(k, j)];
                    a[(i, j)] = v;
                }
            }
        }
        det
    }

    /// Exact inverse by Gauss–Jordan elimination.
    ///
    /// # Panics
    /// Panics if the matrix is singular or not square.
    pub fn inverse(&self) -> RMat {
        assert_eq!(self.rows, self.cols, "inverse of non-square matrix");
        let n = self.rows;
        let mut a = self.clone();
        let mut inv = RMat::identity(n);
        for k in 0..n {
            let p = (k..n)
                .find(|&p| !a[(p, k)].is_zero())
                .expect("singular matrix has no inverse");
            if p != k {
                for j in 0..n {
                    let (x, y) = (a[(k, j)], a[(p, j)]);
                    a[(k, j)] = y;
                    a[(p, j)] = x;
                    let (x, y) = (inv[(k, j)], inv[(p, j)]);
                    inv[(k, j)] = y;
                    inv[(p, j)] = x;
                }
            }
            let piv = a[(k, k)].recip();
            for j in 0..n {
                a[(k, j)] = a[(k, j)] * piv;
                inv[(k, j)] = inv[(k, j)] * piv;
            }
            for i in 0..n {
                if i == k || a[(i, k)].is_zero() {
                    continue;
                }
                let factor = a[(i, k)];
                for j in 0..n {
                    let av = a[(i, j)] - factor * a[(k, j)];
                    a[(i, j)] = av;
                    let iv = inv[(i, j)] - factor * inv[(k, j)];
                    inv[(i, j)] = iv;
                }
            }
        }
        inv
    }

    /// Smallest positive integer `s` such that `s · row_i` is integral, for
    /// each row — the diagonal of the paper's matrix `V` with `H' = V·H`.
    pub fn row_denominator_lcms(&self) -> Vec<i64> {
        (0..self.rows)
            .map(|i| {
                let l = self
                    .row(i)
                    .iter()
                    .fold(1i128, |acc, r| lcm_i128(acc, r.den()));
                i64::try_from(l).expect("row denominator lcm exceeds i64")
            })
            .collect()
    }

    /// Convert to an integer matrix.
    ///
    /// # Panics
    /// Panics if any entry is not an integer.
    pub fn to_imat(&self) -> IMat {
        let mut m = IMat::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for j in 0..self.cols {
                m[(i, j)] = self[(i, j)].to_integer();
            }
        }
        m
    }

    /// True iff every entry is an integer.
    pub fn is_integral(&self) -> bool {
        self.data.iter().all(|r| r.is_integer())
    }
}

impl Index<(usize, usize)> for RMat {
    type Output = Rational;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &Rational {
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for RMat {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Rational {
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Debug for RMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "RMat {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  [")?;
            for j in 0..self.cols {
                write!(f, "{} ", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i128, d: i128) -> Rational {
        Rational::new(n, d)
    }

    #[test]
    fn inverse_of_identity_is_identity() {
        let i = RMat::identity(3);
        assert_eq!(i.inverse(), i);
    }

    #[test]
    fn inverse_round_trip() {
        let h = RMat::from_fractions(&[
            &[(1, 4), (0, 1), (0, 1)],
            &[(0, 1), (1, 3), (0, 1)],
            &[(-1, 5), (0, 1), (1, 5)],
        ]);
        let p = h.inverse();
        assert_eq!(h.mul(&p), RMat::identity(3));
        assert_eq!(p.mul(&h), RMat::identity(3));
    }

    #[test]
    fn det_matches_product_relation() {
        let a = RMat::from_fractions(&[&[(1, 2), (1, 3)], &[(1, 4), (1, 5)]]);
        let b = RMat::from_fractions(&[&[(2, 1), (0, 1)], &[(1, 1), (3, 1)]]);
        assert_eq!(a.mul(&b).det(), a.det() * b.det());
        assert_eq!(a.det(), r(1, 10) - r(1, 12));
    }

    #[test]
    fn det_singular_is_zero() {
        let a = RMat::from_fractions(&[&[(1, 1), (2, 1)], &[(2, 1), (4, 1)]]);
        assert_eq!(a.det(), Rational::ZERO);
    }

    #[test]
    #[should_panic(expected = "singular")]
    fn inverse_of_singular_panics() {
        let a = RMat::from_fractions(&[&[(1, 1), (2, 1)], &[(2, 1), (4, 1)]]);
        let _ = a.inverse();
    }

    #[test]
    fn row_denominator_lcms_give_v_matrix() {
        // Paper §4.1: H_nr = [[1/x,0,0],[0,1/y,0],[-1/z,0,1/z]] with x=4,y=3,z=5.
        let h = RMat::from_fractions(&[
            &[(1, 4), (0, 1), (0, 1)],
            &[(0, 1), (1, 3), (0, 1)],
            &[(-1, 5), (0, 1), (1, 5)],
        ]);
        assert_eq!(h.row_denominator_lcms(), vec![4, 3, 5]);
    }

    #[test]
    fn tile_size_is_inverse_det() {
        // |det(P)| = 1/|det(H)| = x*y*z for the SOR non-rectangular tiling.
        let h = RMat::from_fractions(&[
            &[(1, 4), (0, 1), (0, 1)],
            &[(0, 1), (1, 3), (0, 1)],
            &[(-1, 5), (0, 1), (1, 5)],
        ]);
        let p = h.inverse();
        assert_eq!(p.det().abs(), r(60, 1));
    }

    #[test]
    fn mul_ivec_exact() {
        let h = RMat::from_fractions(&[&[(1, 2), (0, 1)], &[(-1, 3), (1, 3)]]);
        let out = h.mul_ivec(&[4, 7]);
        assert_eq!(out, vec![r(2, 1), r(1, 1)]);
    }
}
