//! Small integer-vector helpers shared across the workspace.

use std::cmp::Ordering;

/// Dot product with overflow checking.
pub fn dot(a: &[i64], b: &[i64]) -> i64 {
    assert_eq!(a.len(), b.len(), "dot product dimension mismatch");
    a.iter().zip(b).fold(0i64, |acc, (&x, &y)| {
        acc.checked_add(x.checked_mul(y).expect("dot overflow"))
            .expect("dot overflow")
    })
}

/// Componentwise sum.
pub fn add(a: &[i64], b: &[i64]) -> Vec<i64> {
    assert_eq!(a.len(), b.len(), "add dimension mismatch");
    a.iter().zip(b).map(|(&x, &y)| x + y).collect()
}

/// Componentwise difference.
pub fn sub(a: &[i64], b: &[i64]) -> Vec<i64> {
    assert_eq!(a.len(), b.len(), "sub dimension mismatch");
    a.iter().zip(b).map(|(&x, &y)| x - y).collect()
}

/// Lexicographic comparison of equal-length integer vectors.
pub fn lex_cmp(a: &[i64], b: &[i64]) -> Ordering {
    assert_eq!(a.len(), b.len(), "lex_cmp dimension mismatch");
    for (x, y) in a.iter().zip(b) {
        match x.cmp(y) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

/// True iff `v` is lexicographically positive (first non-zero entry > 0).
pub fn is_lex_positive(v: &[i64]) -> bool {
    for &x in v {
        if x != 0 {
            return x > 0;
        }
    }
    false
}

/// Floor division `⌊a / b⌋` for positive `b` (wraps `div_euclid` with an
/// assertion documenting the contract used by the paper's `map` functions).
#[inline]
pub fn div_floor(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0, "div_floor requires a positive divisor");
    a.div_euclid(b)
}

/// Ceiling division `⌈a / b⌉` for positive `b`.
#[inline]
pub fn div_ceil(a: i64, b: i64) -> i64 {
    debug_assert!(b > 0, "div_ceil requires a positive divisor");
    a.div_euclid(b) + i64::from(a.rem_euclid(b) != 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_add_sub() {
        assert_eq!(dot(&[1, 2, 3], &[4, -5, 6]), 12);
        assert_eq!(add(&[1, 2], &[3, 4]), vec![4, 6]);
        assert_eq!(sub(&[1, 2], &[3, 4]), vec![-2, -2]);
    }

    #[test]
    fn lex_ordering() {
        assert_eq!(lex_cmp(&[1, 0], &[1, 0]), Ordering::Equal);
        assert_eq!(lex_cmp(&[0, 9], &[1, 0]), Ordering::Less);
        assert_eq!(lex_cmp(&[1, 1], &[1, 0]), Ordering::Greater);
        assert!(is_lex_positive(&[0, 0, 2]));
        assert!(!is_lex_positive(&[0, -1, 5]));
        assert!(!is_lex_positive(&[0, 0, 0]));
    }

    #[test]
    fn floor_ceil_divisions() {
        assert_eq!(div_floor(7, 2), 3);
        assert_eq!(div_floor(-7, 2), -4);
        assert_eq!(div_ceil(7, 2), 4);
        assert_eq!(div_ceil(-7, 2), -3);
        assert_eq!(div_ceil(6, 2), 3);
        assert_eq!(div_floor(-6, 2), -3);
    }
}
