//! The parallelization plan: everything the compiler derives at compile
//! time for one (algorithm, tiling, mapping) triple.
//!
//! Bundles the tiled space, the computation distribution, the communication
//! plan and the LDS geometry, and implements the paper's `loc`/`loc⁻¹`
//! functions (Tables 1–2) that translate between the original iteration
//! space `J^n` and per-processor Local Data Spaces.

use crate::compiled::CompiledChain;
use std::collections::BTreeMap;
use tilecc_cluster::{MetricsRegistry, Phase};
use tilecc_linalg::IMat;
use tilecc_loopnest::Algorithm;
use tilecc_tiling::{
    insert_at, project_pid, CommPlan, Distribution, LdsGeometry, TiledSpace, TilingError,
    TilingTransform,
};

/// A complete compile-time plan for data-parallel execution.
pub struct ParallelPlan {
    pub algorithm: Algorithm,
    pub tiled: TiledSpace,
    pub dist: Distribution,
    pub comm: CommPlan,
    pub geo: LdsGeometry,
    /// Lattice-point count of each processor dependence's pack region
    /// (message length in values; constant across tiles).
    pub region_counts: Vec<usize>,
    /// Flat-index execution tables, one per distinct chain length (LDS
    /// extents — hence cell weights — depend on the chain length).
    compiled: BTreeMap<i64, CompiledChain>,
}

impl ParallelPlan {
    /// Compile `algorithm` under `transform`, mapping tiles along dimension
    /// `m` (`None`: the dimension with the maximum tile count).
    ///
    /// Fails when the tiling is illegal for the algorithm's dependencies
    /// (`H·d ≥ 0` is required so tile dependencies are non-negative and the
    /// linear schedule `Π = [1,…,1]` is valid and deadlock-free).
    pub fn new(
        algorithm: Algorithm,
        transform: TilingTransform,
        m: Option<usize>,
    ) -> Result<Self, TilingError> {
        Self::new_observed(algorithm, transform, m, None)
    }

    /// [`ParallelPlan::new`] recording plan-construction and chain-lowering
    /// spans into an observability registry (driver pid, wall clock only).
    pub fn new_observed(
        algorithm: Algorithm,
        transform: TilingTransform,
        m: Option<usize>,
        obs: Option<&MetricsRegistry>,
    ) -> Result<Self, TilingError> {
        let stamp = |name: &'static str, start: Option<u64>| {
            if let (Some(reg), Some(t0)) = (obs, start) {
                reg.driver_span(Phase::Plan, name, t0, 0);
            }
        };
        let t0 = obs.map(|r| r.now_ns());
        transform.validate_for(algorithm.nest.deps())?;
        stamp("validate-tiling", t0);
        let t0 = obs.map(|r| r.now_ns());
        let tiled = TiledSpace::new(transform, algorithm.nest.space().clone())?;
        stamp("tiled-space", t0);
        let t0 = obs.map(|r| r.now_ns());
        let dist = Distribution::new(&tiled, m)?;
        stamp("distribution", t0);
        let t0 = obs.map(|r| r.now_ns());
        let comm = CommPlan::new(&tiled, algorithm.nest.deps(), dist.m);
        stamp("comm-plan", t0);
        let t0 = obs.map(|r| r.now_ns());
        let geo = LdsGeometry::new(tiled.transform(), &comm);
        stamp("lds-geometry", t0);
        let ds_weights = {
            let (lo, hi) = algorithm
                .nest
                .try_bounding_box()
                .map_err(TilingError::from)?
                .expect("iteration space must be non-empty and bounded");
            let extents: Vec<i64> = lo.iter().zip(&hi).map(|(&l, &h)| h - l + 1).collect();
            LdsGeometry::weights(&extents)
        };
        let mut compiled = BTreeMap::new();
        for &(lo_t, hi_t) in &dist.chains {
            let nt = hi_t - lo_t + 1;
            compiled.entry(nt).or_insert_with(|| {
                let t0 = obs.map(|r| r.now_ns());
                let chain = CompiledChain::new(&tiled, &comm, &geo, &ds_weights, nt);
                if let (Some(reg), Some(t0)) = (obs, t0) {
                    reg.driver_span(Phase::CompileChain, "compile-chain", t0, nt as u64);
                }
                chain
            });
        }
        let region_counts = compiled
            .values()
            .next()
            .expect("a distribution always has at least one chain")
            .pack_counts();
        Ok(ParallelPlan {
            algorithm,
            tiled,
            dist,
            comm,
            geo,
            region_counts,
            compiled,
        })
    }

    /// The flat-index execution table for a chain of `num_tiles` tiles.
    ///
    /// # Panics
    /// Panics if no rank of this plan runs a chain of that length.
    pub fn compiled_for(&self, num_tiles: i64) -> &CompiledChain {
        self.compiled
            .get(&num_tiles)
            .expect("no compiled chain for this length")
    }

    /// Loop-nest dimension `n`.
    #[inline]
    pub fn dim(&self) -> usize {
        self.tiled.dim()
    }

    /// Mapping dimension `m`.
    #[inline]
    pub fn m(&self) -> usize {
        self.dist.m
    }

    /// Number of processors (distinct pids).
    #[inline]
    pub fn num_procs(&self) -> usize {
        self.dist.num_procs()
    }

    /// The anchor of a rank: full tile coordinates of its first chain tile
    /// (`pid` with `l^S_m` inserted at dimension `m`).
    pub fn anchor(&self, rank: usize) -> Vec<i64> {
        let (lo, _) = self.dist.chains[rank];
        insert_at(&self.dist.pids[rank], self.dist.m, lo)
    }

    /// The paper's `loc(j)` (Table 1): processor id and LDS address where
    /// iteration `j` is stored.
    ///
    /// # Panics
    /// Panics if `j`'s tile is not assigned to any processor.
    pub fn loc(&self, j: &[i64]) -> (Vec<i64>, Vec<i64>) {
        let t = self.tiled.transform();
        let tile = t.tile_of(j);
        let pid = project_pid(&tile, self.dist.m);
        let rank = self
            .dist
            .rank(&pid)
            .expect("iteration outside the distribution");
        let anchor = self.anchor(rank);
        let g = unrolled_of(t, j, &anchor);
        (pid, self.geo.addr(&g))
    }

    /// The paper's `loc⁻¹(j'', pid)` (Table 2): the iteration stored at LDS
    /// address `addr` of processor `pid`.
    ///
    /// # Panics
    /// Panics if `pid` is unknown or the address does not correspond to an
    /// integer iteration (i.e. it is an unused LDS cell).
    pub fn loc_inv(&self, pid: &[i64], addr: &[i64]) -> Vec<i64> {
        let rank = self.dist.rank(pid).expect("unknown pid");
        let anchor = self.anchor(rank);
        let g = self.geo.addr_inv(addr, &anchor);
        let t = self.tiled.transform();
        // j = P'·(g + V·anchor)
        let n = self.dim();
        let v = t.v();
        let hj: Vec<i64> = (0..n).map(|k| g[k] + v[k] * anchor[k]).collect();
        let jr = t.p_prime().mul_ivec(&hj);
        jr.iter()
            .map(|r| {
                assert!(
                    r.is_integer(),
                    "LDS address does not map to an integer iteration"
                );
                r.to_integer()
            })
            .collect()
    }

    /// The lexicographically minimum valid successor tile (its `m`-index) of
    /// tile `pred` in processor direction `proc_deps[dm_idx]` — the paper's
    /// `minsucc`. `None` when no successor tile is valid (nothing to send).
    pub fn minsucc(&self, pred: &[i64], dm_idx: usize) -> Option<i64> {
        self.comm
            .ds_of_dm(dm_idx)
            .filter_map(|ds| {
                let succ: Vec<i64> = pred.iter().zip(ds).map(|(&a, &b)| a + b).collect();
                self.tiled.tile_valid(&succ).then_some(succ[self.dist.m])
            })
            .min()
    }

    /// Total number of iterations in `J^n` (used for speedup baselines and
    /// conservation checks).
    pub fn total_iterations(&self) -> usize {
        self.tiled.space_bounds().points().count()
    }

    /// The dependence matrix (columns) of the algorithm.
    #[inline]
    pub fn deps(&self) -> &IMat {
        self.algorithm.nest.deps()
    }
}

/// The unrolled local coordinate of a *global* iteration for a processor
/// anchored at `anchor`: `g = H'·j − V·anchor`.
pub fn unrolled_of(t: &TilingTransform, j: &[i64], anchor: &[i64]) -> Vec<i64> {
    let hj = t.h_prime().mul_vec(j);
    hj.iter()
        .zip(t.v().iter().zip(anchor))
        .map(|(&a, (&vk, &an))| a - vk * an)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use tilecc_linalg::RMat;
    use tilecc_loopnest::kernels;

    fn small_sor_plan(rect: bool) -> ParallelPlan {
        let alg = kernels::sor_skewed(4, 6, 1.1);
        let transform = if rect {
            TilingTransform::rectangular(&[2, 3, 4]).unwrap()
        } else {
            TilingTransform::new(RMat::from_fractions(&[
                &[(1, 2), (0, 1), (0, 1)],
                &[(0, 1), (1, 3), (0, 1)],
                &[(-1, 4), (0, 1), (1, 4)],
            ]))
            .unwrap()
        };
        ParallelPlan::new(alg, transform, Some(2)).unwrap()
    }

    #[test]
    fn loc_round_trips_for_every_iteration() {
        for rect in [true, false] {
            let plan = small_sor_plan(rect);
            for j in plan.tiled.space_bounds().points() {
                let (pid, addr) = plan.loc(&j);
                let back = plan.loc_inv(&pid, &addr);
                assert_eq!(back, j, "loc/loc_inv mismatch (rect={rect})");
            }
        }
    }

    #[test]
    fn loc_addresses_unique_per_processor() {
        let plan = small_sor_plan(false);
        let mut seen: HashSet<(Vec<i64>, Vec<i64>)> = HashSet::new();
        for j in plan.tiled.space_bounds().points() {
            let key = plan.loc(&j);
            assert!(
                seen.insert(key.clone()),
                "duplicate storage location {key:?}"
            );
        }
    }

    #[test]
    fn illegal_tiling_is_rejected() {
        let alg = kernels::sor_skewed(4, 6, 1.1);
        // A tiling row pointing against the dependence cone.
        let bad = TilingTransform::new(RMat::from_fractions(&[
            &[(1, 2), (0, 1), (0, 1)],
            &[(0, 1), (1, 2), (0, 1)],
            &[(1, 2), (0, 1), (-1, 2)],
        ]))
        .unwrap();
        assert!(ParallelPlan::new(alg, bad, None).is_err());
    }

    #[test]
    fn minsucc_is_minimal_and_valid() {
        let plan = small_sor_plan(true);
        let m = plan.m();
        for tile in plan.tiled.tiles().collect::<Vec<_>>() {
            for (dm_idx, _) in plan.comm.proc_deps.iter().enumerate() {
                if let Some(t_min) = plan.minsucc(&tile, dm_idx) {
                    // The claimed successor is valid and no smaller one exists.
                    let mut candidates: Vec<i64> = plan
                        .comm
                        .ds_of_dm(dm_idx)
                        .filter_map(|ds| {
                            let succ: Vec<i64> =
                                tile.iter().zip(ds).map(|(&a, &b)| a + b).collect();
                            plan.tiled.tile_valid(&succ).then_some(succ[m])
                        })
                        .collect();
                    candidates.sort();
                    assert_eq!(candidates.first().copied(), Some(t_min));
                }
            }
        }
    }

    #[test]
    fn anchors_match_chain_starts() {
        let plan = small_sor_plan(true);
        for rank in 0..plan.num_procs() {
            let anchor = plan.anchor(rank);
            assert!(
                plan.tiled.tile_valid(&anchor),
                "anchor must be a valid tile"
            );
            assert_eq!(project_pid(&anchor, plan.m()), plan.dist.pids[rank]);
        }
    }
}
