//! # tilecc-parcode
//!
//! Data-parallel code generation (§3 of *"Compiling Tiled Iteration Spaces
//! for Clusters"*): the compile-time [`ParallelPlan`], the executable SPMD
//! program ([`execute`]) running the paper's RECEIVE → compute → SEND
//! skeleton on the in-process cluster substrate, and a C/MPI source emitter
//! mirroring the code the paper's tool generated.

pub mod compiled;
pub mod emitter;
pub mod emitter_full;
pub mod executor;
pub mod plan;
pub mod seqtiled;

pub use compiled::CompiledChain;
pub use emitter::emit_c_mpi;
pub use emitter_full::{emit_c_program, KernelSource};
pub use executor::{
    execute, execute_backend, execute_opts, execute_strategy, execute_with, rank_data_points,
    run_rank_body, Backend, ExecMode, ExecStrategy, ExecutionResult, RankOutput,
};
pub use plan::{unrolled_of, ParallelPlan};
pub use seqtiled::execute_tiled_sequential;
