//! Sequential tiled execution — the paper's prior work ([7], SAC 2002) that
//! this paper builds on: run the *same* computation reordered into 2n-deep
//! tiled form (outer loops over tiles in lexicographic order, inner strided
//! TTIS traversal) on a single processor.
//!
//! Legality follows from `H·d ≥ 0`: tile dependencies `D^S` are
//! non-negative, so the lexicographic tile order respects them; and within a
//! tile, a dependence source has TTIS coordinate `j' − d'` with
//! `d' = H'·d ≥ 0`, `d' ≠ 0`, which precedes `j'` in the lexicographic
//! lattice walk.

use crate::plan::ParallelPlan;
use tilecc_loopnest::DataSpace;

/// Execute the plan's algorithm tile-by-tile on one processor, reading and
/// writing the global data space directly. Returns the data space — it must
/// be bitwise identical to `Algorithm::execute_sequential`.
pub fn execute_tiled_sequential(plan: &ParallelPlan) -> DataSpace {
    let alg = &plan.algorithm;
    let (lo, hi) = alg.nest.bounding_box();
    let w = alg.width();
    let mut ds = DataSpace::with_width(&lo, &hi, w);
    let deps = alg.nest.deps();
    let q = deps.cols();
    let n = plan.dim();
    let mut reads = vec![0.0f64; q * w];
    let mut out = vec![0.0f64; w];
    let mut src = vec![0i64; n];
    for tile in plan.tiled.tiles() {
        for (_jp, j) in plan.tiled.tile_iterations(&tile) {
            for dq in 0..q {
                for k in 0..n {
                    src[k] = j[k] - deps[(k, dq)];
                }
                match ds.get_all(&src) {
                    Some(v) => reads[dq * w..(dq + 1) * w].copy_from_slice(v),
                    None => alg.kernel.initial(&src, &mut reads[dq * w..(dq + 1) * w]),
                }
            }
            alg.kernel.compute(&j, &reads, &mut out);
            ds.set_all(&j, &out);
        }
    }
    ds
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilecc_linalg::RMat;
    use tilecc_loopnest::kernels;
    use tilecc_tiling::TilingTransform;

    fn check(h: RMat) {
        let alg = kernels::sor_skewed(4, 6, 1.1);
        let untiled = alg.execute_sequential();
        let plan = ParallelPlan::new(alg, TilingTransform::new(h).unwrap(), Some(2)).unwrap();
        let tiled = execute_tiled_sequential(&plan);
        assert_eq!(
            untiled.diff(&tiled),
            None,
            "tiled reordering changed the result"
        );
    }

    #[test]
    fn tiled_sequential_matches_untiled_rect() {
        check(RMat::from_fractions(&[
            &[(1, 2), (0, 1), (0, 1)],
            &[(0, 1), (1, 3), (0, 1)],
            &[(0, 1), (0, 1), (1, 4)],
        ]));
    }

    #[test]
    fn tiled_sequential_matches_untiled_nonrect() {
        check(RMat::from_fractions(&[
            &[(1, 2), (0, 1), (0, 1)],
            &[(0, 1), (1, 3), (0, 1)],
            &[(-1, 4), (0, 1), (1, 4)],
        ]));
    }

    #[test]
    fn tiled_sequential_adi_all_variants() {
        for h in [
            tilecc_linalg::RMat::from_fractions(&[
                &[(1, 2), (0, 1), (0, 1)],
                &[(0, 1), (1, 4), (0, 1)],
                &[(0, 1), (0, 1), (1, 4)],
            ]),
            tilecc_linalg::RMat::from_fractions(&[
                &[(1, 2), (-1, 2), (-1, 2)],
                &[(0, 1), (1, 4), (0, 1)],
                &[(0, 1), (0, 1), (1, 4)],
            ]),
        ] {
            let alg = kernels::adi(6, 8);
            let untiled = alg.execute_sequential();
            let plan = ParallelPlan::new(alg, TilingTransform::new(h).unwrap(), Some(0)).unwrap();
            let tiled = execute_tiled_sequential(&plan);
            assert_eq!(untiled.diff(&tiled), None);
        }
    }
}
