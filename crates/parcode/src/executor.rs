//! The generated SPMD program: per-processor tile chains with the paper's
//! RECEIVE → compute → SEND structure (§3.2), executed on the cluster
//! substrate.
//!
//! Every rank walks its chain of tiles along the mapping dimension. Before
//! each tile it receives and unpacks the messages for which this tile is the
//! lexicographically minimum successor of a valid predecessor tile; it then
//! computes the tile's iterations (strided TTIS traversal, boundary-clamped
//! by the original iteration space); finally it packs and sends one message
//! per processor dependence that has a valid successor tile.

use crate::compiled::{
    compute_tile_clamped, compute_tile_clamped_subset, compute_tile_fast, compute_tile_fast_subset,
    count_in_space_subset, pack_region, tile_origin, unpack_region, CompiledChain, ComputeScratch,
};
use crate::plan::ParallelPlan;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;
use tilecc_cluster::{
    run_cluster_opts, run_cluster_tcp, Comm, CommScheme, Counter, EngineOptions, HistId,
    InjectedCrash, MachineModel, MetricsRegistry, Phase, RunError, RunReport,
};
use tilecc_loopnest::DataSpace;
use tilecc_tiling::{insert_at, Lds};

/// Execution mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Compute real values and gather them for verification.
    Full,
    /// Skip value computation and payloads; message sizes and iteration
    /// counts (and therefore all virtual times) are identical to `Full`.
    TimingOnly,
}

/// Which code path each rank runs. Both produce bitwise-identical data and
/// identical makespans; `Compiled` is the default.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ExecStrategy {
    /// Flat-index execution: plan-time lowered cell indices, dense interior
    /// loops, precomputed pack/unpack lists, bulk gather (see
    /// [`crate::compiled`]).
    #[default]
    Compiled,
    /// The per-point reference path: re-derives every LDS address and walks
    /// every communication region per tile. Kept as the correctness oracle.
    Reference,
    /// Compiled execution with the boundary/interior split: each tile's
    /// boundary slab (the dependence closure of its pack regions) computes
    /// first, the sends post onto the background comm lane, the private
    /// interior computes while they are in flight, and the rank drains the
    /// lane at chain end. Forces [`CommScheme::Overlapped`]; data is
    /// bitwise identical to the other strategies and the makespan is never
    /// worse than `Compiled` under the blocking scheme.
    Overlapped,
}

/// Which cluster engine carries the messages. Both backends run the same
/// rank body over the same virtual-time model, so they produce
/// bitwise-identical data, identical makespans, and identical logical
/// counters; only the substrate differs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// In-process channels ([`tilecc_cluster::ThreadedComm`]): one thread
    /// per rank, no serialization. The default.
    #[default]
    Threaded,
    /// Real TCP sockets ([`tilecc_cluster::TcpComm`]): every message is
    /// framed through the TCMP wire format. In-process here; the CLI's
    /// `--backend tcp` additionally runs each rank in its own process.
    Tcp,
}

/// Per-rank result: the rank's Local Data Space (`Full` mode only — the
/// main thread gathers it into the global data space) plus the number of
/// iterations executed.
pub struct RankOutput {
    pub lds: Option<Lds>,
    pub iterations: u64,
}

/// Result of a parallel execution.
pub struct ExecutionResult {
    pub report: RunReport<RankOutput>,
    /// Gathered global data space (`Full` mode only).
    pub data: Option<DataSpace>,
    /// Total iterations executed across all ranks.
    pub total_iterations: u64,
}

impl ExecutionResult {
    /// Simulated parallel completion time.
    pub fn makespan(&self) -> f64 {
        self.report.makespan()
    }

    /// Simulated sequential time / simulated parallel time on the same
    /// machine model.
    pub fn speedup(&self, model: &MachineModel) -> f64 {
        model.compute_cost(self.total_iterations) / self.makespan()
    }
}

/// Execute the plan on the in-process cluster (blocking MPI-style
/// communication, as in the paper).
///
/// # Panics
/// Propagates failed runs as panics — a thin wrapper over
/// [`execute_opts`], which reports them as [`RunError`]s instead.
pub fn execute(plan: Arc<ParallelPlan>, model: MachineModel, mode: ExecMode) -> ExecutionResult {
    execute_with(plan, model, mode, CommScheme::Blocking)
}

/// [`execute`] with an explicit communication scheme —
/// [`CommScheme::Overlapped`] implements the computation/communication
/// overlapping the paper lists as future work (its reference [8]).
///
/// # Panics
/// Propagates failed runs as panics, like [`execute`].
pub fn execute_with(
    plan: Arc<ParallelPlan>,
    model: MachineModel,
    mode: ExecMode,
    scheme: CommScheme,
) -> ExecutionResult {
    execute_opts(
        plan,
        model,
        mode,
        EngineOptions {
            scheme,
            ..EngineOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("parallel execution failed: {e}"))
}

/// [`execute`] with full engine options (communication scheme, tracing,
/// fault injection, watchdog). This is the fallible entry point: engine
/// failures — a rank panic, a deadlocked schedule, an unreachable peer —
/// come back as [`RunError`]s with rank-level context.
pub fn execute_opts(
    plan: Arc<ParallelPlan>,
    model: MachineModel,
    mode: ExecMode,
    options: EngineOptions,
) -> Result<ExecutionResult, RunError> {
    execute_strategy(plan, model, mode, ExecStrategy::default(), options)
}

/// [`execute_opts`] with an explicit [`ExecStrategy`] — used by the
/// equivalence tests, the fuzz harness and the perf benches to pit the
/// compiled path against the per-point reference path.
pub fn execute_strategy(
    plan: Arc<ParallelPlan>,
    model: MachineModel,
    mode: ExecMode,
    strategy: ExecStrategy,
    options: EngineOptions,
) -> Result<ExecutionResult, RunError> {
    execute_backend(plan, model, mode, strategy, Backend::default(), options)
}

/// [`execute_strategy`] with an explicit cluster [`Backend`]. The rank
/// body, virtual-time model, and gather are identical for every backend —
/// the choice only selects the message substrate — so the fuzz harness
/// cross-checks backends for bitwise-identical data and counters here.
pub fn execute_backend(
    plan: Arc<ParallelPlan>,
    model: MachineModel,
    mode: ExecMode,
    strategy: ExecStrategy,
    backend: Backend,
    mut options: EngineOptions,
) -> Result<ExecutionResult, RunError> {
    // The boundary/interior reorder only pays off when sends actually run
    // in the background; the strategy implies the comm scheme.
    if strategy == ExecStrategy::Overlapped {
        options.scheme = CommScheme::Overlapped;
    }
    let nprocs = plan.num_procs();
    let plan2 = plan.clone();
    let obs_reg = options.obs.clone();
    let report = match backend {
        Backend::Threaded => run_cluster_opts(nprocs, model, options, move |comm| {
            run_rank(&plan2, comm, mode, strategy)
        })?,
        Backend::Tcp => run_cluster_tcp(nprocs, model, options, move |comm| {
            run_rank(&plan2, comm, mode, strategy)
        })?,
    };
    let total_iterations: u64 = report.results.iter().map(|r| r.iterations).sum();
    let data = match mode {
        ExecMode::TimingOnly => None,
        ExecMode::Full => Some(gather(&plan, &report, strategy, obs_reg.as_deref())),
    };
    Ok(ExecutionResult {
        report,
        data,
        total_iterations,
    })
}

/// The SPMD body of one rank, public for the multi-process TCP worker: the
/// CLI's `--worker-rank` mode runs this over a [`tilecc_cluster::TcpComm`]
/// connected to sibling processes. Identical to what every in-process
/// backend executes.
pub fn run_rank_body(
    plan: &ParallelPlan,
    comm: &mut impl Comm,
    mode: ExecMode,
    strategy: ExecStrategy,
) -> RankOutput {
    run_rank(plan, comm, mode, strategy)
}

/// Enumerate the data points a rank owns — `(global iteration point,
/// values)` for every iteration in its valid tiles, read from its LDS. The
/// multi-process worker serializes this list into its `RESULT` payload so
/// the driver can rebuild the global [`DataSpace`] without sharing memory.
pub fn rank_data_points(
    plan: &ParallelPlan,
    rank: usize,
    out: &RankOutput,
) -> Vec<(Vec<i64>, Vec<f64>)> {
    let lds = out.lds.as_ref().expect("full mode returns the rank LDS");
    let m = plan.m();
    let w = plan.algorithm.width();
    let pid = &plan.dist.pids[rank];
    let (lo_t, hi_t) = plan.dist.chains[rank];
    let mut points = Vec::new();
    let mut vals = vec![0.0f64; w];
    for t_abs in lo_t..=hi_t {
        let tpos = t_abs - lo_t;
        let cur_tile = insert_at(pid, m, t_abs);
        if !plan.tiled.tile_valid(&cur_tile) {
            continue;
        }
        for (jp, j) in plan.tiled.tile_iterations(&cur_tile) {
            let g = lds.unrolled(tpos, &jp);
            lds.get_into(&g, &mut vals);
            points.push((j, vals.clone()));
        }
    }
    points
}

/// Write every rank's LDS back to the global data space (the paper's
/// `loc⁻¹` role), on the main thread.
///
/// The compiled strategy bulk-copies interior tiles through the
/// precomputed offsets and walks `tile_iterations` only for boundary
/// tiles; the reference strategy re-walks every tile per point.
fn gather(
    plan: &ParallelPlan,
    report: &RunReport<RankOutput>,
    strategy: ExecStrategy,
    obs: Option<&MetricsRegistry>,
) -> DataSpace {
    let (lo, hi) = plan.algorithm.nest.bounding_box();
    let mut ds = DataSpace::with_width(&lo, &hi, plan.algorithm.width());
    let t = plan.tiled.transform();
    let m = plan.m();
    let w = plan.algorithm.width();
    let mut vals = vec![0.0f64; w];
    for (rank, out) in report.results.iter().enumerate() {
        let rank_t0 = obs.map(|r| r.now_ns());
        let lds = out.lds.as_ref().expect("full mode returns the rank LDS");
        let pid = &plan.dist.pids[rank];
        let (lo_t, hi_t) = plan.dist.chains[rank];
        let chain = plan.compiled_for(hi_t - lo_t + 1);
        for t_abs in lo_t..=hi_t {
            let tile_t0 = obs.map(|r| r.now_ns());
            let tpos = t_abs - lo_t;
            let cur_tile = insert_at(pid, m, t_abs);
            if !plan.tiled.tile_valid(&cur_tile) {
                continue;
            }
            if strategy != ExecStrategy::Reference && plan.tiled.tile_is_interior(&cur_tile) {
                let origin = tile_origin(t, &cur_tile);
                crate::compiled::gather_tile_fast(chain, lds, tpos, &origin, &mut ds);
            } else {
                for (jp, j) in plan.tiled.tile_iterations(&cur_tile) {
                    let g = lds.unrolled(tpos, &jp);
                    lds.get_into(&g, &mut vals);
                    ds.set_all(&j, &vals);
                }
            }
            if let (Some(reg), Some(t0)) = (obs, tile_t0) {
                reg.rank_metrics(rank)
                    .hist(HistId::GatherNs)
                    .observe(reg.now_ns().saturating_sub(t0));
            }
        }
        if let (Some(reg), Some(t0)) = (obs, rank_t0) {
            reg.driver_span(Phase::Gather, "gather", t0, rank as u64);
        }
    }
    ds
}

/// The body each rank runs — the direct analogue of the paper's generated
/// FORACROSS code skeleton (§3.2).
fn run_rank(
    plan: &ParallelPlan,
    comm: &mut impl Comm,
    mode: ExecMode,
    strategy: ExecStrategy,
) -> RankOutput {
    let rank = comm.rank();
    let n = plan.dim();
    let m = plan.m();
    let t = plan.tiled.transform();
    let v = t.v();
    let lattice = t.lattice();
    let pid = plan.dist.pids[rank].clone();
    let (lo_t, hi_t) = plan.dist.chains[rank];
    let anchor = plan.anchor(rank);
    let num_tiles = hi_t - lo_t + 1;
    let w = plan.algorithm.width();
    let mut lds = Lds::with_width(plan.geo.clone(), anchor.clone(), num_tiles, w);
    let chain = plan.compiled_for(num_tiles);

    let deps = plan.deps();
    let q = deps.cols();
    let d_prime = &plan.comm.d_prime;
    let kernel = plan.algorithm.kernel.clone();
    let space = plan.tiled.space();

    let mut iterations: u64 = 0;
    let mut scratch = ComputeScratch::new(n, q, w);
    let mut reads = vec![0.0f64; q * w];
    let mut out = vec![0.0f64; w];
    let mut src = vec![0i64; n];
    let mut gs = vec![0i64; n];
    let mut j_buf = vec![0i64; n];
    let obs_on = comm.obs().is_some();

    let ckpt_every = comm.recovery_interval();
    let mut start_t = lo_t;
    if let Some(resumed) = comm.resume_state() {
        // A respawned worker restored its checkpoint file during transport
        // setup: rewind the walk and the application state to it.
        start_t = lo_t + resumed.chain_pos as i64;
        decode_app_state(&resumed.app, &mut iterations, &mut lds);
    }
    // The chain walk runs inside the recovery loop: an injected crash
    // unwinds to the `match` below, and if the substrate can restore a
    // checkpoint the walk re-enters at the checkpointed chain position
    // with the application state rewound. Anything else propagates.
    loop {
        let walked = catch_unwind(AssertUnwindSafe(|| {
            for t_abs in start_t..=hi_t {
                let tpos = t_abs - lo_t; // chain-relative tile position
                if let Some(k) = ckpt_every {
                    if (tpos as u64).is_multiple_of(k) {
                        comm.checkpoint(tpos as u64, &encode_app_state(iterations, &lds));
                    }
                }
                let cur_tile = insert_at(&pid, m, t_abs);
                // Chains span [min, max] of a pid's non-empty tiles; an empty
                // candidate inside that range is not a valid tile (plan-time
                // pruning) and must neither compute nor touch any channel.
                if !plan.tiled.tile_valid(&cur_tile) {
                    continue;
                }

                // --- RECEIVE ------------------------------------------------------
                for (i, ds) in plan.comm.tile_deps.iter().enumerate() {
                    let Some(dm_idx) = plan.comm.dm_of_ds[i] else {
                        continue;
                    };
                    let pred: Vec<i64> = cur_tile.iter().zip(ds).map(|(&a, &b)| a - b).collect();
                    if !plan.tiled.tile_valid(&pred) {
                        continue;
                    }
                    if plan.minsucc(&pred, dm_idx) != Some(t_abs) {
                        continue;
                    }
                    let dm = &plan.comm.proc_deps[dm_idx];
                    let from_pid: Vec<i64> = pid.iter().zip(dm).map(|(&a, &b)| a - b).collect();
                    let from_rank = plan
                        .dist
                        .rank(&from_pid)
                        .expect("valid predecessor tile must belong to a known processor");
                    // Tag = predecessor tile's chain index: with tile-dependence
                    // m-components > 1 the minimum-successor consumption order is
                    // not monotone in the sender's tiles, so FIFO alone would
                    // mismatch messages (MPI-style tag matching restores pairing).
                    let payload = comm.recv_tagged(from_rank, pred[m]);
                    if mode == ExecMode::Full {
                        let unpack_t0 = if obs_on {
                            comm.obs().map(|o| o.now_ns())
                        } else {
                            None
                        };
                        match strategy {
                            ExecStrategy::Compiled | ExecStrategy::Overlapped => {
                                // A size mismatch means transport corruption;
                                // fail the rank loudly (release builds too).
                                if let Err(e) = unpack_region(chain, &mut lds, tpos, i, &payload) {
                                    panic!("{e}");
                                }
                            }
                            ExecStrategy::Reference => {
                                // Unpack into the LDS: sender's region points,
                                // addressed as data of chain tile (tpos − ds_m)
                                // shifted by −ds_k·v_k.
                                let lo = plan.comm.region_lo(dm, v);
                                let mut idx = 0usize;
                                for jp in lattice.points_in_box(&lo, v) {
                                    let mut g = jp;
                                    for k in 0..n {
                                        if k != m {
                                            g[k] -= ds[k] * v[k];
                                        }
                                    }
                                    g[m] += (tpos - ds[m]) * v[m];
                                    lds.set_all(&g, &payload[idx * w..(idx + 1) * w]);
                                    idx += 1;
                                }
                                debug_assert_eq!(idx * w, payload.len(), "unpack count mismatch");
                            }
                        }
                        if let Some(t0) = unpack_t0 {
                            // The unpack is real work on the wall clock but free on
                            // the virtual one (the model folds it into recv
                            // overhead), so its virtual interval is a point.
                            let v = comm.local_time();
                            if let Some(o) = comm.obs() {
                                let bytes = (payload.len() * 8) as u64;
                                o.observe(HistId::UnpackNs, o.now_ns().saturating_sub(t0));
                                o.span(Phase::Unpack, t0, (v, v), bytes);
                            }
                        }
                    }
                }

                // --- COMPUTE ------------------------------------------------------
                // Interior/boundary classification feeds both the compiled dispatch
                // and the tile-mix counters; only run it when someone consumes it so
                // the TimingOnly hot path stays untouched with observability off.
                let classify =
                    obs_on || (mode == ExecMode::Full && strategy != ExecStrategy::Reference);
                let is_interior = classify && plan.tiled.tile_is_compute_interior(&cur_tile, deps);
                let compute_t0 = if obs_on && strategy != ExecStrategy::Overlapped {
                    comm.obs().map(|o| o.now_ns())
                } else {
                    None
                };
                let compute_v0 = comm.local_time();
                let mut tile_iters: u64 = 0;
                let mut tile_vectorized: u64 = 0;
                match (mode, strategy) {
                    // Overlapped order: boundary slab → post sends → private
                    // interior. The slab is the dependence closure of the pack
                    // regions, so after it every outgoing payload is final; the
                    // interior then computes while the sends ride the comm lane.
                    (_, ExecStrategy::Overlapped) => {
                        let origin = tile_origin(t, &cur_tile);
                        let space_interior =
                            mode == ExecMode::TimingOnly && plan.tiled.tile_is_interior(&cur_tile);
                        let b_t0 = if obs_on {
                            comm.obs().map(|o| o.now_ns())
                        } else {
                            None
                        };
                        let b_v0 = comm.local_time();
                        let boundary_iters = match mode {
                            ExecMode::TimingOnly if space_interior => {
                                chain.boundary_order.len() as u64
                            }
                            ExecMode::TimingOnly => count_in_space_subset(
                                chain,
                                &origin,
                                space,
                                &chain.boundary_order,
                                &mut j_buf,
                            ),
                            ExecMode::Full if is_interior => {
                                tile_vectorized += compute_tile_fast_subset(
                                    chain,
                                    &mut lds,
                                    tpos,
                                    &origin,
                                    kernel.as_ref(),
                                    &mut scratch,
                                    &chain.boundary_runs,
                                );
                                chain.boundary_order.len() as u64
                            }
                            ExecMode::Full => compute_tile_clamped_subset(
                                chain,
                                &mut lds,
                                tpos,
                                &origin,
                                kernel.as_ref(),
                                space,
                                deps,
                                &mut scratch,
                                &chain.boundary_order,
                            ),
                        };
                        comm.advance_compute(boundary_iters);
                        if let Some(t0) = b_t0 {
                            if boundary_iters > 0 {
                                let v1 = comm.local_time();
                                if let Some(o) = comm.obs() {
                                    o.observe(HistId::ComputeTileNs, o.now_ns().saturating_sub(t0));
                                    o.named_span(
                                        Phase::Compute,
                                        "compute-boundary",
                                        t0,
                                        (b_v0, v1),
                                        boundary_iters,
                                    );
                                }
                            }
                        }

                        send_tile(
                            plan, chain, comm, &lds, mode, strategy, obs_on, &pid, &cur_tile, tpos,
                            t_abs, w,
                        );

                        let i_t0 = if obs_on {
                            comm.obs().map(|o| o.now_ns())
                        } else {
                            None
                        };
                        let i_v0 = comm.local_time();
                        let interior_iters = match mode {
                            ExecMode::TimingOnly if space_interior => {
                                chain.interior_order.len() as u64
                            }
                            ExecMode::TimingOnly => count_in_space_subset(
                                chain,
                                &origin,
                                space,
                                &chain.interior_order,
                                &mut j_buf,
                            ),
                            ExecMode::Full if is_interior => {
                                tile_vectorized += compute_tile_fast_subset(
                                    chain,
                                    &mut lds,
                                    tpos,
                                    &origin,
                                    kernel.as_ref(),
                                    &mut scratch,
                                    &chain.interior_runs,
                                );
                                chain.interior_order.len() as u64
                            }
                            ExecMode::Full => compute_tile_clamped_subset(
                                chain,
                                &mut lds,
                                tpos,
                                &origin,
                                kernel.as_ref(),
                                space,
                                deps,
                                &mut scratch,
                                &chain.interior_order,
                            ),
                        };
                        comm.advance_compute(interior_iters);
                        if let Some(t0) = i_t0 {
                            if interior_iters > 0 {
                                let v1 = comm.local_time();
                                if let Some(o) = comm.obs() {
                                    o.observe(HistId::ComputeTileNs, o.now_ns().saturating_sub(t0));
                                    o.named_span(
                                        Phase::Compute,
                                        "compute-interior",
                                        t0,
                                        (i_v0, v1),
                                        interior_iters,
                                    );
                                }
                            }
                        }
                        tile_iters = boundary_iters + interior_iters;
                    }
                    (ExecMode::TimingOnly, _) => {
                        tile_iters = plan.tiled.tile_volume_fast(&cur_tile) as u64;
                    }
                    (ExecMode::Full, ExecStrategy::Compiled) => {
                        let origin = tile_origin(t, &cur_tile);
                        if is_interior {
                            tile_vectorized += compute_tile_fast(
                                chain,
                                &mut lds,
                                tpos,
                                &origin,
                                kernel.as_ref(),
                                &mut scratch,
                            );
                            tile_iters = chain.tile_points as u64;
                        } else {
                            tile_iters = compute_tile_clamped(
                                chain,
                                &mut lds,
                                tpos,
                                &origin,
                                kernel.as_ref(),
                                space,
                                deps,
                                &mut scratch,
                            );
                        }
                    }
                    (ExecMode::Full, ExecStrategy::Reference) => {
                        for (jp, j) in plan.tiled.tile_iterations(&cur_tile) {
                            tile_iters += 1;
                            let g = lds.unrolled(tpos, &jp);
                            for dq in 0..q {
                                for k in 0..n {
                                    src[k] = j[k] - deps[(k, dq)];
                                    gs[k] = g[k] - d_prime[(k, dq)];
                                }
                                if space.contains(&src) {
                                    lds.get_into(&gs, &mut reads[dq * w..(dq + 1) * w]);
                                } else {
                                    kernel.initial(&src, &mut reads[dq * w..(dq + 1) * w]);
                                }
                            }
                            kernel.compute(&j, &reads, &mut out);
                            lds.set_all(&g, &out);
                        }
                    }
                }
                iterations += tile_iters;
                if strategy != ExecStrategy::Overlapped {
                    comm.advance_compute(tile_iters);
                }
                if obs_on {
                    if let Some(t0) = compute_t0 {
                        let v1 = comm.local_time();
                        if let Some(o) = comm.obs() {
                            o.observe(HistId::ComputeTileNs, o.now_ns().saturating_sub(t0));
                            o.span(Phase::Compute, t0, (compute_v0, v1), tile_iters);
                        }
                    }
                    if let Some(o) = comm.obs() {
                        o.add(Counter::Tiles, 1);
                        o.add(Counter::Iterations, tile_iters);
                        if tile_vectorized > 0 {
                            o.add(Counter::VectorizedPoints, tile_vectorized);
                        }
                        o.add(
                            if is_interior {
                                Counter::InteriorTiles
                            } else {
                                Counter::BoundaryTiles
                            },
                            1,
                        );
                        o.add(
                            match strategy {
                                // Overlapped runs through the same compiled tables.
                                ExecStrategy::Compiled | ExecStrategy::Overlapped => {
                                    Counter::CompiledDispatches
                                }
                                ExecStrategy::Reference => Counter::ReferenceDispatches,
                            },
                            1,
                        );
                    }
                }

                // --- SEND ---------------------------------------------------------
                // (the overlapped strategy already sent between its two passes)
                if strategy != ExecStrategy::Overlapped {
                    send_tile(
                        plan, chain, comm, &lds, mode, strategy, obs_on, &pid, &cur_tile, tpos,
                        t_abs, w,
                    );
                }
            }
        }));
        match walked {
            Ok(()) => break,
            Err(payload) => {
                if payload.is::<InjectedCrash>() {
                    if let Some(restored) = comm.try_restore() {
                        start_t = lo_t + restored.chain_pos as i64;
                        decode_app_state(&restored.app, &mut iterations, &mut lds);
                        continue;
                    }
                }
                resume_unwind(payload);
            }
        }
    }

    // --- DRAIN --------------------------------------------------------
    // MPI_Waitall: merge the background comm lane back into the clock. A
    // no-op under the blocking scheme (nothing outstanding).
    let drain_t0 = if obs_on {
        comm.obs().map(|o| o.now_ns())
    } else {
        None
    };
    let drain_v0 = comm.local_time();
    let paid = comm.drain_sends();
    if let Some(t0) = drain_t0 {
        if paid > 0.0 {
            let v1 = comm.local_time();
            if let Some(o) = comm.obs() {
                o.named_span(Phase::Overlap, "drain-sends", t0, (drain_v0, v1), 0);
            }
        }
    }

    // The LDS goes back whole; the main thread gathers it into the global
    // data space (loc⁻¹ role) — no duplicated TTIS traversal here.
    RankOutput {
        lds: (mode == ExecMode::Full).then_some(lds),
        iterations,
    }
}

/// Serialize the executor's resumable state for [`Comm::checkpoint`]: the
/// iteration counter followed by every LDS value as an `f64` bit pattern,
/// all little-endian — restoring it reproduces the rank bitwise.
fn encode_app_state(iterations: u64, lds: &Lds) -> Vec<u8> {
    let vals = lds.values();
    let mut out = Vec::with_capacity(8 + vals.len() * 8);
    out.extend_from_slice(&iterations.to_le_bytes());
    for v in vals {
        out.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    out
}

/// Inverse of [`encode_app_state`], restoring in place. The LDS shape is
/// plan-derived and deterministic, so only the values travel.
fn decode_app_state(bytes: &[u8], iterations: &mut u64, lds: &mut Lds) {
    *iterations = u64::from_le_bytes(bytes[..8].try_into().expect("app snapshot header"));
    let vals = lds.values_mut();
    let body = &bytes[8..];
    assert_eq!(body.len(), vals.len() * 8, "app snapshot size mismatch");
    for (v, c) in vals.iter_mut().zip(body.chunks_exact(8)) {
        *v = f64::from_bits(u64::from_le_bytes(c.try_into().expect("chunk size")));
    }
}

/// The SEND phase of one tile: one message per processor dependence with a
/// valid successor tile. Shared by the blocking order (after the whole
/// tile) and the overlapped order (between the boundary and interior
/// passes — every pack region lives in the boundary slab, so the payloads
/// are final).
#[allow(clippy::too_many_arguments)]
fn send_tile(
    plan: &ParallelPlan,
    chain: &CompiledChain,
    comm: &mut impl Comm,
    lds: &Lds,
    mode: ExecMode,
    strategy: ExecStrategy,
    obs_on: bool,
    pid: &[i64],
    cur_tile: &[i64],
    tpos: i64,
    t_abs: i64,
    w: usize,
) {
    let t = plan.tiled.transform();
    let v = t.v();
    let lattice = t.lattice();
    for (dm_idx, dm) in plan.comm.proc_deps.iter().enumerate() {
        let has_valid_succ = plan.comm.ds_of_dm(dm_idx).any(|ds| {
            let succ: Vec<i64> = cur_tile.iter().zip(ds).map(|(&a, &b)| a + b).collect();
            plan.tiled.tile_valid(&succ)
        });
        if !has_valid_succ {
            continue;
        }
        let to_pid: Vec<i64> = pid.iter().zip(dm).map(|(&a, &b)| a + b).collect();
        let to_rank = plan
            .dist
            .rank(&to_pid)
            .expect("valid successor tile must belong to a known processor");
        let count = plan.region_counts[dm_idx];
        let mut payload = Vec::new();
        if mode == ExecMode::Full {
            let pack_t0 = if obs_on {
                comm.obs().map(|o| o.now_ns())
            } else {
                None
            };
            payload.resize(count * w, 0.0);
            match strategy {
                ExecStrategy::Compiled | ExecStrategy::Overlapped => {
                    pack_region(chain, lds, tpos, dm_idx, &mut payload)
                }
                ExecStrategy::Reference => {
                    let lo = plan.comm.region_lo(dm, v);
                    let mut idx = 0usize;
                    for jp in lattice.points_in_box(&lo, v) {
                        let g = lds.unrolled(tpos, &jp);
                        if lds.index_of(&g).is_some() {
                            lds.get_into(&g, &mut payload[idx * w..(idx + 1) * w]);
                        }
                        idx += 1;
                    }
                    debug_assert_eq!(idx, count);
                }
            }
            if let Some(t0) = pack_t0 {
                // Like unpack: real wall time, a point on the virtual
                // clock (the model folds packing into the send cost).
                let v_now = comm.local_time();
                if let Some(o) = comm.obs() {
                    o.observe(HistId::PackNs, o.now_ns().saturating_sub(t0));
                    o.span(Phase::Pack, t0, (v_now, v_now), (count * 8 * w) as u64);
                }
            }
        }
        comm.send_tagged(to_rank, t_abs, payload, count * 8 * w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilecc_linalg::RMat;
    use tilecc_loopnest::kernels;
    use tilecc_tiling::TilingTransform;

    fn check_against_sequential(plan: ParallelPlan) {
        let seq = plan.algorithm.execute_sequential();
        let total = plan.total_iterations();
        let plan = Arc::new(plan);
        let res = execute(plan, MachineModel::fast_ethernet_p3(), ExecMode::Full);
        assert_eq!(
            res.total_iterations as usize, total,
            "iteration conservation"
        );
        let par = res.data.expect("full mode returns data");
        assert_eq!(
            seq.diff(&par),
            None,
            "parallel result differs from sequential"
        );
    }

    #[test]
    fn sor_rectangular_end_to_end() {
        let alg = kernels::sor_skewed(4, 6, 1.1);
        let t = TilingTransform::rectangular(&[2, 3, 4]).unwrap();
        check_against_sequential(ParallelPlan::new(alg, t, Some(2)).unwrap());
    }

    #[test]
    fn sor_nonrectangular_end_to_end() {
        let alg = kernels::sor_skewed(4, 6, 1.1);
        let t = TilingTransform::new(RMat::from_fractions(&[
            &[(1, 2), (0, 1), (0, 1)],
            &[(0, 1), (1, 3), (0, 1)],
            &[(-1, 4), (0, 1), (1, 4)],
        ]))
        .unwrap();
        check_against_sequential(ParallelPlan::new(alg, t, Some(2)).unwrap());
    }

    #[test]
    fn timing_only_matches_full_makespan() {
        let alg = kernels::adi(6, 8);
        let t = TilingTransform::rectangular(&[2, 4, 4]).unwrap();
        let plan = Arc::new(ParallelPlan::new(alg, t, Some(0)).unwrap());
        let model = MachineModel::fast_ethernet_p3();
        let full = execute(plan.clone(), model, ExecMode::Full);
        let timing = execute(plan, model, ExecMode::TimingOnly);
        assert_eq!(full.makespan(), timing.makespan());
        assert_eq!(full.report.total_bytes(), timing.report.total_bytes());
        assert!(timing.data.is_none());
    }

    #[test]
    fn lossy_links_preserve_results_bitwise() {
        use tilecc_cluster::FaultPlan;
        let alg = kernels::sor_skewed(4, 6, 1.1);
        let t = TilingTransform::rectangular(&[2, 3, 4]).unwrap();
        let plan = Arc::new(ParallelPlan::new(alg, t, Some(2)).unwrap());
        let model = MachineModel::fast_ethernet_p3();
        let clean = execute(plan.clone(), model, ExecMode::Full);
        let faulty = execute_opts(
            plan,
            model,
            ExecMode::Full,
            EngineOptions {
                fault: Some(FaultPlan::lossy(7, 0.25)),
                ..EngineOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("reliability layer must mask a 25% drop rate: {e}"));
        assert!(
            faulty.report.total_retransmissions() > 0,
            "drops must be visible in stats"
        );
        assert!(faulty.makespan() >= clean.makespan());
        let (a, b) = (clean.data.unwrap(), faulty.data.unwrap());
        assert_eq!(
            a.diff(&b),
            None,
            "lossy run must produce bitwise-identical data"
        );
    }

    #[test]
    fn observed_run_records_phases_and_partitions_clocks() {
        let alg = kernels::sor_skewed(4, 6, 1.1);
        let t = TilingTransform::rectangular(&[2, 3, 4]).unwrap();
        let reg = MetricsRegistry::new();
        let plan =
            Arc::new(crate::plan::ParallelPlan::new_observed(alg, t, Some(2), Some(&reg)).unwrap());
        let res = execute_opts(
            plan,
            MachineModel::fast_ethernet_p3(),
            ExecMode::Full,
            EngineOptions {
                obs: Some(reg.clone()),
                ..EngineOptions::default()
            },
        )
        .unwrap();
        let spans = reg.spans();
        for phase in [
            Phase::Plan,
            Phase::CompileChain,
            Phase::Compute,
            Phase::Pack,
            Phase::Send,
            Phase::Recv,
            Phase::Unpack,
            Phase::Gather,
        ] {
            assert!(
                spans.iter().any(|s| s.phase == phase),
                "missing phase {phase:?} in spans"
            );
        }
        let report = reg.run_report(&res.report.local_times);
        for r in &report.ranks {
            assert!(
                (r.compute + r.wait + r.comm - r.local_time).abs() < 1e-9,
                "rank {} clock not partitioned",
                r.rank
            );
        }
        assert_eq!(report.total(Counter::Iterations), res.total_iterations);
        assert_eq!(
            report.total(Counter::Tiles),
            report.total(Counter::InteriorTiles) + report.total(Counter::BoundaryTiles)
        );
        assert_eq!(report.total(Counter::ReferenceDispatches), 0);
        assert!(report.total(Counter::CompiledDispatches) > 0);
        // Fault-free conservation.
        assert_eq!(
            report.total(Counter::BytesSent),
            report.total(Counter::BytesReceived)
        );
        assert_eq!(
            report.total(Counter::MessagesSent),
            report.total(Counter::MessagesReceived)
        );
    }

    #[test]
    fn compiled_and_reference_report_identical_logical_counters() {
        let alg = kernels::adi(6, 8);
        let t = TilingTransform::rectangular(&[2, 4, 4]).unwrap();
        let plan = Arc::new(ParallelPlan::new(alg, t, Some(0)).unwrap());
        let model = MachineModel::fast_ethernet_p3();
        let run = |strategy| {
            let reg = MetricsRegistry::new();
            let res = execute_strategy(
                plan.clone(),
                model,
                ExecMode::Full,
                strategy,
                EngineOptions {
                    obs: Some(reg.clone()),
                    ..EngineOptions::default()
                },
            )
            .unwrap();
            reg.run_report(&res.report.local_times)
        };
        let compiled = run(ExecStrategy::Compiled);
        let reference = run(ExecStrategy::Reference);
        for c in [
            Counter::Tiles,
            Counter::InteriorTiles,
            Counter::BoundaryTiles,
            Counter::Iterations,
            Counter::MessagesSent,
            Counter::BytesSent,
            Counter::MessagesReceived,
            Counter::BytesReceived,
        ] {
            assert_eq!(
                compiled.total(c),
                reference.total(c),
                "strategies disagree on {}",
                c.name()
            );
        }
        assert_eq!(compiled.total(Counter::ReferenceDispatches), 0);
        assert_eq!(reference.total(Counter::CompiledDispatches), 0);
    }

    #[test]
    fn crashed_rank_surfaces_as_run_error() {
        use tilecc_cluster::FaultPlan;
        let alg = kernels::sor_skewed(4, 6, 1.1);
        let t = TilingTransform::rectangular(&[2, 3, 4]).unwrap();
        let plan = Arc::new(ParallelPlan::new(alg, t, Some(2)).unwrap());
        let err = match execute_opts(
            plan,
            MachineModel::fast_ethernet_p3(),
            ExecMode::Full,
            EngineOptions {
                fault: Some(FaultPlan::default().with_crash(0, 0.0)),
                ..EngineOptions::default()
            },
        ) {
            Err(e) => e,
            Ok(_) => panic!("a crashed rank must fail the run"),
        };
        match err {
            RunError::RankPanicked { rank: 0, payload } => {
                assert!(payload.contains("injected crash"), "{payload}");
            }
            other => panic!("expected RankPanicked for rank 0, got {other:?}"),
        }
    }
}

#[cfg(test)]
mod overlap_tests {
    use super::*;
    use tilecc_linalg::RMat;
    use tilecc_loopnest::kernels;
    use tilecc_tiling::TilingTransform;

    #[test]
    fn overlapped_scheme_verifies_and_is_no_slower() {
        let alg = kernels::sor_skewed(6, 9, 1.1);
        let h = RMat::from_fractions(&[
            &[(1, 2), (0, 1), (0, 1)],
            &[(0, 1), (1, 3), (0, 1)],
            &[(-1, 4), (0, 1), (1, 4)],
        ]);
        let plan =
            Arc::new(ParallelPlan::new(alg, TilingTransform::new(h).unwrap(), Some(2)).unwrap());
        let model = MachineModel::fast_ethernet_p3();
        let seq = plan.algorithm.execute_sequential();
        let blocking = execute_with(plan.clone(), model, ExecMode::Full, CommScheme::Blocking);
        let overlapped = execute_with(plan.clone(), model, ExecMode::Full, CommScheme::Overlapped);
        // Same data under either scheme.
        assert_eq!(seq.diff(blocking.data.as_ref().unwrap()), None);
        assert_eq!(seq.diff(overlapped.data.as_ref().unwrap()), None);
        // Overlap can only hide communication cost, never add to it.
        assert!(
            overlapped.makespan() <= blocking.makespan() + 1e-12,
            "overlapped {:.6} > blocking {:.6}",
            overlapped.makespan(),
            blocking.makespan()
        );
        assert!(
            overlapped.makespan() < blocking.makespan(),
            "overlap should hide something"
        );
    }

    #[test]
    fn overlapped_strategy_matches_both_oracles_bitwise() {
        let alg = kernels::sor_skewed(6, 9, 1.1);
        let h = RMat::from_fractions(&[
            &[(1, 2), (0, 1), (0, 1)],
            &[(0, 1), (1, 3), (0, 1)],
            &[(-1, 4), (0, 1), (1, 4)],
        ]);
        let plan =
            Arc::new(ParallelPlan::new(alg, TilingTransform::new(h).unwrap(), Some(2)).unwrap());
        let model = MachineModel::fast_ethernet_p3();
        let seq = plan.algorithm.execute_sequential();
        let run = |strategy| {
            execute_strategy(
                plan.clone(),
                model,
                ExecMode::Full,
                strategy,
                EngineOptions::default(),
            )
            .unwrap()
        };
        let reference = run(ExecStrategy::Reference);
        let compiled = run(ExecStrategy::Compiled);
        let overlapped = run(ExecStrategy::Overlapped);
        assert_eq!(seq.diff(reference.data.as_ref().unwrap()), None);
        assert_eq!(seq.diff(compiled.data.as_ref().unwrap()), None);
        assert_eq!(
            seq.diff(overlapped.data.as_ref().unwrap()),
            None,
            "boundary/interior reorder must not change the data"
        );
        assert_eq!(overlapped.total_iterations, compiled.total_iterations);
        // Same messages, same bytes — only the schedule changed.
        assert_eq!(
            overlapped.report.total_bytes(),
            compiled.report.total_bytes()
        );
        assert_eq!(
            overlapped.report.total_messages(),
            compiled.report.total_messages()
        );
    }

    #[test]
    fn overlapped_strategy_is_never_slower_than_blocking_compiled() {
        for (alg, tile) in [
            (kernels::sor_skewed(6, 9, 1.1), vec![2, 3, 4]),
            (kernels::jacobi_skewed(6, 8, 8), vec![2, 4, 4]),
            (kernels::adi(6, 8), vec![2, 4, 4]),
        ] {
            let t = TilingTransform::rectangular(&tile).unwrap();
            let plan = Arc::new(ParallelPlan::new(alg, t, None).unwrap());
            let model = MachineModel::fast_ethernet_p3();
            let blocking = execute_strategy(
                plan.clone(),
                model,
                ExecMode::TimingOnly,
                ExecStrategy::Compiled,
                EngineOptions::default(),
            )
            .unwrap();
            let overlapped = execute_strategy(
                plan.clone(),
                model,
                ExecMode::TimingOnly,
                ExecStrategy::Overlapped,
                EngineOptions::default(),
            )
            .unwrap();
            assert!(
                overlapped.makespan() <= blocking.makespan() + 1e-12,
                "overlapped {:.6} > blocking {:.6}",
                overlapped.makespan(),
                blocking.makespan()
            );
        }
    }

    #[test]
    fn overlapped_timing_only_matches_full_makespan() {
        let alg = kernels::adi(6, 8);
        let t = TilingTransform::rectangular(&[2, 4, 4]).unwrap();
        let plan = Arc::new(ParallelPlan::new(alg, t, Some(0)).unwrap());
        let model = MachineModel::fast_ethernet_p3();
        let run = |mode| {
            execute_strategy(
                plan.clone(),
                model,
                mode,
                ExecStrategy::Overlapped,
                EngineOptions::default(),
            )
            .unwrap()
        };
        let full = run(ExecMode::Full);
        let timing = run(ExecMode::TimingOnly);
        assert_eq!(full.makespan(), timing.makespan());
        assert_eq!(full.report.total_bytes(), timing.report.total_bytes());
        assert_eq!(full.total_iterations, timing.total_iterations);
    }

    #[test]
    fn overlapped_observed_run_partitions_clocks_and_reports_hidden_time() {
        // ADI's dependence closure leaves a genuine private interior
        // (SOR/Jacobi closures swallow the whole tile), so this run
        // exercises both split compute spans.
        let alg = kernels::adi(6, 8);
        let t = TilingTransform::rectangular(&[2, 4, 4]).unwrap();
        let reg = MetricsRegistry::new();
        let plan =
            Arc::new(crate::plan::ParallelPlan::new_observed(alg, t, Some(0), Some(&reg)).unwrap());
        let res = execute_strategy(
            plan,
            MachineModel::fast_ethernet_p3(),
            ExecMode::Full,
            ExecStrategy::Overlapped,
            EngineOptions {
                obs: Some(reg.clone()),
                ..EngineOptions::default()
            },
        )
        .unwrap();
        let report = reg.run_report(&res.report.local_times);
        for r in &report.ranks {
            assert!(
                (r.compute + r.wait + r.comm - r.local_time).abs() < 1e-9,
                "rank {} clock not partitioned under overlap",
                r.rank
            );
        }
        assert!(
            report.ranks.iter().map(|r| r.overlap_hidden).sum::<f64>() > 0.0,
            "an overlapped SOR run must hide some comm-lane time"
        );
        assert_eq!(report.total(Counter::Iterations), res.total_iterations);
        assert_eq!(report.total(Counter::ReferenceDispatches), 0);
        assert!(report.total(Counter::CompiledDispatches) > 0);
        assert_eq!(
            report.total(Counter::BytesSent),
            report.total(Counter::BytesReceived)
        );
        // The overlapped schedule emits split compute spans and a drain span.
        let spans = reg.spans();
        assert!(spans
            .iter()
            .any(|s| s.phase == Phase::Compute && s.name == "compute-boundary"));
        assert!(spans
            .iter()
            .any(|s| s.phase == Phase::Compute && s.name == "compute-interior"));
        assert!(spans.iter().any(|s| s.phase == Phase::Overlap));
        // No span may cover zero work on a zero-length virtual interval
        // with zero detail — empty tiles must not be dispatched at all.
        assert!(
            spans
                .iter()
                .filter(|s| s.phase == Phase::Compute)
                .all(|s| s.detail > 0),
            "empty compute spans must be skipped"
        );
    }
}
