#![allow(clippy::needless_range_loop)] // index loops mirror the paper's matrix notation
//! Compiled tile execution: flat linear indices over the row-major LDS.
//!
//! The paper's performance argument (§3.1, Table 1) is that condensed
//! rectangular LDS storage plus strided TTIS traversal lets the *generated*
//! tile code run at array speed. The reference executor re-derives every
//! per-dimension address point by point; this module instead lowers each
//! rank's work **at plan time** to flat cell indices:
//!
//! - Every tile of a chain covers the same TTIS lattice points, and because
//!   the integral-tile-sides validation forces `c_m | v_m`, advancing one
//!   chain position shifts every flat index by the constant
//!   `chain_step = (v_m / c_m) · weights_m`. One table of per-point indices
//!   therefore serves the whole chain: `cell = tpos · chain_step + rel`.
//! - Dependences are uniform, so each read source sits at a *constant signed
//!   displacement* `src_rel` from the tile base — no per-point address
//!   derivation, no membership test on interior tiles.
//! - The pack/unpack lattice walks of RECEIVE/SEND run once per plan, not
//!   once per tile, leaving dense index-list copies in the hot loop.
//! - The gather writes each owned cell straight into the global `DataSpace`
//!   through precomputed relative offsets instead of re-running
//!   `tile_iterations` and materializing per-point vectors.
//!
//! Offsets are exact wherever the checked path would succeed: for any two
//! coordinates whose per-dimension addresses are in range, the difference of
//! their signed flat indices equals their true cell distance (see
//! [`LdsGeometry::flat_cell_signed`]). The constructor asserts every
//! *unconditional* index (owned cells, pack regions) in range per dimension;
//! halo unpack cells that fall outside the allocation — writes the reference
//! path's `Lds::set_all` silently drops — are marked [`SKIP`] at build time.

use std::collections::BTreeMap;
use tilecc_linalg::vecops::div_floor;
use tilecc_linalg::IMat;
use tilecc_loopnest::{DataSpace, MultiKernel};
use tilecc_polytope::Polyhedron;
use tilecc_tiling::{CommPlan, Lds, LdsGeometry, TiledSpace, TilingTransform};

/// Sentinel for precomputed unpack cells outside the LDS allocation (halo
/// deeper than any read reaches); the unpack loop drops them, exactly as
/// `Lds::set_all` does on the reference path.
pub const SKIP: i64 = i64::MIN;

/// Cache-block width (in points) of the batched interior compute: chunks
/// are clamped so one chunk's read/write windows total
/// `(q+1)·CACHE_BLOCK·width` values (~(q+1)·4 KiB at width 1) and stay
/// L1/L2-resident no matter how long the affine run is.
pub const CACHE_BLOCK: usize = 512;

/// Minimum safe batch width worth a `compute_run` dispatch; runs whose
/// dependence lag allows fewer points per chunk fall back to the
/// per-point loop (the dispatch would cost more than it saves).
pub const MIN_BATCH: u32 = 4;

/// A maximal affine run inside a per-index cell list: positions
/// `at..at+len` of the list hold cells `list[at] + t·step` (`0 ≤ t < len`).
/// Runs never cover [`SKIP`] positions, and a SKIP splits runs exactly.
/// `step == 1` is the block-move fast path: `len` consecutive cells are one
/// `copy_from_slice` of `len·width` values.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IndexRun {
    /// First covered position in the list (also the payload index).
    pub at: u32,
    /// Number of covered positions.
    pub len: u32,
    /// Cell advance per position (1 for singleton runs).
    pub step: i64,
}

/// A maximal joint affine run of the gather's source (`dst`) and target
/// (`gather_rel`) lists over walk positions `at..at+len`. When both steps
/// are 1 the whole run is one LDS→DataSpace block copy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GatherRun {
    /// First covered TTIS walk position.
    pub at: u32,
    /// Number of covered positions.
    pub len: u32,
    /// LDS source-cell advance per position.
    pub src_step: i64,
    /// DataSpace target-cell advance per position.
    pub dst_step: i64,
}

/// A maximal affine run of the interior compute walk: `len` consecutive
/// walk positions starting at `i0` whose `dst` and every `src_rel` advance
/// by exactly one cell and whose iteration offset advances by the constant
/// vector `dj`. `batch` is the largest chunk whose reads may be
/// pre-gathered without observing a same-chunk write (see
/// [`CompiledChain::new`]'s lag analysis); `batch == 0` disables batching.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ComputeRun {
    /// First TTIS walk position of the run.
    pub i0: u32,
    /// Number of consecutive walk positions.
    pub len: u32,
    /// Safe chunk width for pre-gathered reads (0 = per-point fallback).
    pub batch: u32,
    /// Per-point iteration advance within the run (`n` entries).
    pub dj: Vec<i64>,
}

/// Factor a per-index cell list into maximal affine runs. [`SKIP`] cells
/// are never covered and split runs exactly; every non-SKIP position is
/// covered by exactly one run, and runs are emitted in position order.
pub fn coalesce_runs(list: &[i64]) -> Vec<IndexRun> {
    let mut runs = Vec::new();
    let mut i = 0usize;
    while i < list.len() {
        if list[i] == SKIP {
            i += 1;
            continue;
        }
        let at = i;
        let mut step = 1i64;
        let mut len = 1usize;
        if at + 1 < list.len() && list[at + 1] != SKIP {
            step = list[at + 1] - list[at];
            len = 2;
            while at + len < list.len()
                && list[at + len] != SKIP
                && list[at + len] - list[at + len - 1] == step
            {
                len += 1;
            }
        }
        runs.push(IndexRun {
            at: at as u32,
            len: len as u32,
            step,
        });
        i = at + len;
    }
    runs
}

/// Factor the gather's `(dst, gather_rel)` pair into maximal joint affine
/// runs covering every walk position exactly once, in order.
fn coalesce_gather_runs(dst: &[i64], grel: &[i64]) -> Vec<GatherRun> {
    debug_assert_eq!(dst.len(), grel.len());
    let mut runs = Vec::new();
    let mut at = 0usize;
    while at < dst.len() {
        let mut len = 1usize;
        let mut src_step = 1i64;
        let mut dst_step = 1i64;
        if at + 1 < dst.len() {
            src_step = dst[at + 1] - dst[at];
            dst_step = grel[at + 1] - grel[at];
            len = 2;
            while at + len < dst.len()
                && dst[at + len] - dst[at + len - 1] == src_step
                && grel[at + len] - grel[at + len - 1] == dst_step
            {
                len += 1;
            }
        }
        runs.push(GatherRun {
            at: at as u32,
            len: len as u32,
            src_step,
            dst_step,
        });
        at += len;
    }
    runs
}

/// Factor an ascending walk-index sequence into maximal compute runs and
/// derive each run's safe batch width from its dependence lags.
fn compute_runs_for(
    indices: &[u32],
    dst: &[i64],
    src_rel: &[i64],
    j_off: &[i64],
    q: usize,
    n: usize,
) -> Vec<ComputeRun> {
    let mut runs = Vec::new();
    let mut s = 0usize;
    while s < indices.len() {
        let i0 = indices[s] as usize;
        let mut len = 1usize;
        let mut dj = vec![0i64; n];
        // Extend while walk indices stay consecutive, `dst` and every
        // `src_rel` advance by exactly one cell, and the `j_off` delta
        // stays the constant established by the first extension.
        loop {
            let e = s + len;
            if e >= indices.len() {
                break;
            }
            let (a, b) = (indices[e - 1] as usize, indices[e] as usize);
            if b != a + 1 || dst[b] != dst[a] + 1 {
                break;
            }
            if (0..q).any(|dq| src_rel[b * q + dq] != src_rel[a * q + dq] + 1) {
                break;
            }
            let step: Vec<i64> = (0..n)
                .map(|k| j_off[b * n + k] - j_off[a * n + k])
                .collect();
            if len == 1 {
                dj = step;
            } else if dj != step {
                break;
            }
            len += 1;
        }
        // Lag analysis: within the run, point `p` writes cell `dst0 + p`
        // and its dependence-`dq` read sits at `dst0 + p − lag_dq` (the
        // lag is constant along the run because both lists advance by 1).
        // A chunk of `B` pre-gathered points writes cells
        // `[dst0+s, dst0+s+B)` only after gathering, so a read is stale
        // exactly when its in-run writer `p − lag` falls inside the same
        // chunk — impossible for `B ≤ lag`. `lag == 0` reads the cell's
        // pre-run value on both paths (the run's only write of that cell
        // happens at the reading point itself, after its read), and
        // negative lags cannot occur: `d' ≥ 0` makes every per-dimension
        // LDS address of `j' − d'` ≤ that of `j'`.
        let mut batch = CACHE_BLOCK as i64;
        for dq in 0..q {
            let lag = dst[i0] - src_rel[i0 * q + dq];
            debug_assert!(lag >= 0, "negative dependence lag");
            if lag >= 1 {
                batch = batch.min(lag);
            }
        }
        let batch = if batch < MIN_BATCH as i64 {
            0
        } else {
            batch as u32
        };
        runs.push(ComputeRun {
            i0: i0 as u32,
            len: len as u32,
            batch,
            dj,
        });
        s += len;
    }
    runs
}

/// Plan-time lowering of one chain length's tile work to flat LDS indices.
///
/// LDS extents — and therefore row-major weights — depend on the chain
/// length, so a [`CompiledChain`] is built per distinct `num_tiles` (ranks
/// sharing a chain length share the tables).
pub struct CompiledChain {
    /// Chain length this table was compiled for.
    pub num_tiles: i64,
    /// TTIS lattice points per full tile.
    pub tile_points: usize,
    /// Number of dependence columns.
    pub q: usize,
    /// Loop-nest dimension.
    pub n: usize,
    /// Flat-index shift per chain position (`(v_m / c_m) · weights_m`).
    pub chain_step: i64,
    /// Owned cell index of each tile point at `tpos = 0`, TTIS walk order.
    pub dst: Vec<i64>,
    /// Per-point global-iteration offset `P'·j'` (row-major, `n` per point):
    /// the iteration is `j = P·tile + j_off` with both parts integral.
    pub j_off: Vec<i64>,
    /// Signed read-source cell per point and dependence (point-major,
    /// `q` per point): `src = dst − flat(d')`, constant across the chain.
    pub src_rel: Vec<i64>,
    /// Per-point signed flat offset into the global `DataSpace`
    /// (`Σ_k j_off_k · ds_weights_k`); the gather base is the tile origin's
    /// signed cell index.
    pub gather_rel: Vec<i64>,
    /// Pack index lists, one per processor dependence: owned cells of the
    /// region `[region_lo(dm), v)` at `tpos = 0`, lattice walk order.
    pub pack_rel: Vec<Vec<i64>>,
    /// Unpack index lists, one per *tile* dependence (aligned with
    /// `comm.tile_deps`; empty for intra-processor dependences): halo cell
    /// of each region point at `tpos = 0`, or [`SKIP`].
    pub unpack_rel: Vec<Vec<i64>>,
    /// Boundary-slab point indices (into the TTIS walk order), ascending:
    /// the dependence closure of the union of the pack regions. Executing
    /// these first makes every pack region ready to send before the
    /// interior runs (the overlapped strategy's compute-boundary pass).
    pub boundary_order: Vec<u32>,
    /// The complementary private-interior point indices, ascending. No pack
    /// region reads them, so they compute while sends are in flight.
    pub interior_order: Vec<u32>,
    /// Affine runs of each `pack_rel` list (cover every position, in order).
    pub pack_runs: Vec<Vec<IndexRun>>,
    /// Affine runs of each `unpack_rel` list (cover exactly the non-[`SKIP`]
    /// positions, in order; SKIP cells split runs).
    pub unpack_runs: Vec<Vec<IndexRun>>,
    /// Joint affine runs of the gather's `(dst, gather_rel)` lists.
    pub gather_runs: Vec<GatherRun>,
    /// Compute runs over the full TTIS walk ([`compute_tile_fast`]).
    pub compute_runs: Vec<ComputeRun>,
    /// Compute runs over `boundary_order` (the overlapped boundary pass).
    pub boundary_runs: Vec<ComputeRun>,
    /// Compute runs over `interior_order` (the overlapped interior pass).
    pub interior_runs: Vec<ComputeRun>,
}

impl CompiledChain {
    /// Lower the per-tile work of a `num_tiles`-long chain. `ds_weights` are
    /// the global data space's row-major cell weights (the gather target).
    pub fn new(
        tiled: &TiledSpace,
        comm: &CommPlan,
        geo: &LdsGeometry,
        ds_weights: &[i64],
        num_tiles: i64,
    ) -> Self {
        let t = tiled.transform();
        let n = t.dim();
        let m = geo.m;
        let v = t.v();
        assert_eq!(
            v[m] % geo.c[m],
            0,
            "integral tile sides guarantee c_m | v_m"
        );
        let extents = geo.extents(num_tiles);
        let weights = LdsGeometry::weights(&extents);
        let total_cells: i64 = extents.iter().product();
        let chain_step = (v[m] / geo.c[m]) * weights[m];
        let q = comm.d_prime.cols();
        let lat = t.lattice();
        let p_prime = t.p_prime();

        // Checked flat index of an owned/pack cell at tpos = 0: every
        // dimension must be in range (dimension m is then in range for the
        // whole chain because the decomposition is linear in tpos).
        let flat_checked = |jp: &[i64], what: &str| -> i64 {
            let mut cell = 0i64;
            for k in 0..n {
                let a = div_floor(jp[k], geo.c[k]) + geo.off[k];
                assert!(
                    0 <= a && a < extents[k],
                    "{what} address out of range: jp={jp:?} dim {k}"
                );
                cell += a * weights[k];
            }
            cell
        };

        let mut dst = Vec::new();
        let mut j_off = Vec::new();
        let mut src_rel = Vec::new();
        let mut gather_rel = Vec::new();
        let mut coords: Vec<Vec<i64>> = Vec::new();
        let mut g0 = vec![0i64; n];
        let zero = vec![0i64; n];
        lat.for_each_in_box(&zero, v, |jp| {
            coords.push(jp.to_vec());
            let cell = flat_checked(jp, "owned");
            assert!(cell + (num_tiles - 1) * chain_step < total_cells);
            dst.push(cell);
            // j = P·tile + P'·j'; both parts are integral (P is validated
            // integral, and lattice points satisfy j' = H'·z).
            let off_j = p_prime.mul_ivec(jp);
            let mut grel = 0i64;
            for (k, r) in off_j.iter().enumerate() {
                assert!(r.is_integer(), "P'·j' must be integral on the lattice");
                let x = r.to_integer();
                j_off.push(x);
                grel += x * ds_weights[k];
            }
            gather_rel.push(grel);
            for dq in 0..q {
                for k in 0..n {
                    g0[k] = jp[k] - comm.d_prime[(k, dq)];
                }
                src_rel.push(geo.flat_cell_signed(&g0, &weights));
            }
        });
        let tile_points = dst.len();
        assert_eq!(tile_points, tiled.full_tile_volume());

        let pack_rel: Vec<Vec<i64>> = comm
            .proc_deps
            .iter()
            .map(|dm| {
                let lo = comm.region_lo(dm, v);
                let mut cells = Vec::new();
                lat.for_each_in_box(&lo, v, |jp| cells.push(flat_checked(jp, "pack")));
                cells
            })
            .collect();

        // Unpack: the receiver addresses the sender's region points as data
        // of chain tile `tpos − ds_m` shifted by `−ds_k·v_k`; at `tpos = 0`
        // that is uniformly `g_k = jp_k − ds_k·v_k`.
        let unpack_rel: Vec<Vec<i64>> = comm
            .tile_deps
            .iter()
            .zip(&comm.dm_of_ds)
            .map(|(ds, dm_idx)| {
                let Some(dm_idx) = *dm_idx else {
                    return Vec::new();
                };
                let lo = comm.region_lo(&comm.proc_deps[dm_idx], v);
                let mut cells = Vec::new();
                lat.for_each_in_box(&lo, v, |jp| {
                    let mut cell = 0i64;
                    let mut in_range = true;
                    for k in 0..n {
                        let a = div_floor(jp[k] - ds[k] * v[k], geo.c[k]) + geo.off[k];
                        if k == m {
                            // Halo depth along the mapping dimension is
                            // covered by construction (off_m spans the
                            // deepest predecessor tile), so a receive never
                            // underflows the allocation.
                            assert!(a >= 0, "mapping-dimension halo underflow");
                        } else if a < 0 || a >= extents[k] {
                            in_range = false;
                        }
                        cell += a * weights[k];
                    }
                    cells.push(if in_range { cell } else { SKIP });
                });
                cells
            })
            .collect();

        // Boundary/interior split for the overlapped strategy. The slab is
        // the *dependence closure* of the union of the pack regions: every
        // TTIS point some pack-region point transitively reads within the
        // tile, not just the regions themselves — tiling validity gives
        // `d' = H'·d ≥ 0`, so region points read *lower* lattice points and
        // a region-only pass would execute them against stale cells.
        // Because `d' ≥ 0` also makes the ascending lattice walk order a
        // topological order, running the slab in walk order, then the
        // interior in walk order, respects every intra-tile dependence:
        // the closure is predecessor-closed, so no slab point reads an
        // interior point.
        assert!(tile_points <= u32::MAX as usize, "tile too large to index");
        let index_of: BTreeMap<&[i64], usize> = coords
            .iter()
            .enumerate()
            .map(|(i, jp)| (jp.as_slice(), i))
            .collect();
        let mut in_slab = vec![false; tile_points];
        let mut work: Vec<usize> = Vec::new();
        for dm in &comm.proc_deps {
            let lo = comm.region_lo(dm, v);
            for (i, jp) in coords.iter().enumerate() {
                if !in_slab[i] && jp.iter().zip(&lo).all(|(&x, &l)| x >= l) {
                    in_slab[i] = true;
                    work.push(i);
                }
            }
        }
        let mut pred = vec![0i64; n];
        while let Some(i) = work.pop() {
            for dq in 0..q {
                for k in 0..n {
                    pred[k] = coords[i][k] - comm.d_prime[(k, dq)];
                }
                // `j' − d'` stays on the lattice (d' = H'·d), so box
                // membership is exactly map membership.
                if let Some(&p) = index_of.get(pred.as_slice()) {
                    if !in_slab[p] {
                        in_slab[p] = true;
                        work.push(p);
                    }
                }
            }
        }
        let boundary_order: Vec<u32> = (0..tile_points)
            .filter(|&i| in_slab[i])
            .map(|i| i as u32)
            .collect();
        let interior_order: Vec<u32> = (0..tile_points)
            .filter(|&i| !in_slab[i])
            .map(|i| i as u32)
            .collect();
        debug_assert_eq!(boundary_order.len() + interior_order.len(), tile_points);

        // Affine-run coalescing: every hot per-index loop below gets a
        // run-descriptor form computed once per plan, here.
        let pack_runs: Vec<Vec<IndexRun>> = pack_rel.iter().map(|l| coalesce_runs(l)).collect();
        let unpack_runs: Vec<Vec<IndexRun>> = unpack_rel.iter().map(|l| coalesce_runs(l)).collect();
        let gather_runs = coalesce_gather_runs(&dst, &gather_rel);
        let all: Vec<u32> = (0..tile_points as u32).collect();
        let compute_runs = compute_runs_for(&all, &dst, &src_rel, &j_off, q, n);
        let boundary_runs = compute_runs_for(&boundary_order, &dst, &src_rel, &j_off, q, n);
        let interior_runs = compute_runs_for(&interior_order, &dst, &src_rel, &j_off, q, n);

        CompiledChain {
            num_tiles,
            tile_points,
            q,
            n,
            chain_step,
            dst,
            j_off,
            src_rel,
            gather_rel,
            pack_rel,
            unpack_rel,
            boundary_order,
            interior_order,
            pack_runs,
            unpack_runs,
            gather_runs,
            compute_runs,
            boundary_runs,
            interior_runs,
        }
    }

    /// Message length (in values) of each pack region — equals the lattice
    /// point count of `[region_lo(dm), v)`.
    pub fn pack_counts(&self) -> Vec<usize> {
        self.pack_rel.iter().map(Vec::len).collect()
    }
}

/// The tile's origin iteration `P·tile` (integral: `P` is validated to have
/// integral entries). Per-point iterations are `origin + j_off`.
pub fn tile_origin(t: &TilingTransform, tile: &[i64]) -> Vec<i64> {
    t.p()
        .mul_ivec(tile)
        .iter()
        .map(|r| {
            debug_assert!(r.is_integer());
            r.to_integer()
        })
        .collect()
}

/// Reusable per-rank scratch of the compiled compute paths: per-point
/// staging (`reads`/`out`/`j`/`src`) plus one cache block of batched
/// dependence-major reads and outputs. Allocated once per rank (or bench
/// loop), so the hot paths stay allocation-free.
pub struct ComputeScratch {
    j: Vec<i64>,
    src: Vec<i64>,
    reads: Vec<f64>,
    out: Vec<f64>,
    run_reads: Vec<f64>,
    run_out: Vec<f64>,
}

impl ComputeScratch {
    /// Scratch for an `n`-dimensional nest with `q` dependences and `w`
    /// components per cell.
    pub fn new(n: usize, q: usize, w: usize) -> Self {
        ComputeScratch {
            j: vec![0i64; n],
            src: vec![0i64; n],
            reads: vec![0.0f64; q * w],
            out: vec![0.0f64; w],
            run_reads: vec![0.0f64; q * CACHE_BLOCK * w],
            run_out: vec![0.0f64; CACHE_BLOCK * w],
        }
    }
}

/// Execute a set of compute runs against a hoisted LDS value buffer: the
/// shared inner loop of [`compute_tile_fast`] and
/// [`compute_tile_fast_subset`]. Runs with a usable `batch` width go
/// through the kernel's `compute_run` batch entry in cache-blocked chunks
/// (reads bulk-copied per dependence, one kernel dispatch per chunk, one
/// bulk write-back); the rest fall back to the per-point loop. Returns the
/// number of points computed through the batch entry.
#[allow(clippy::too_many_arguments)]
fn run_compute_runs<K: MultiKernel + ?Sized>(
    chain: &CompiledChain,
    vals: &mut [f64],
    base: i64,
    origin: &[i64],
    kernel: &K,
    scr: &mut ComputeScratch,
    runs: &[ComputeRun],
    w: usize,
) -> u64 {
    let (n, q) = (chain.n, chain.q);
    let mut batched = 0u64;
    for run in runs {
        let len = run.len as usize;
        if run.batch >= MIN_BATCH && len >= MIN_BATCH as usize {
            let mut done = 0usize;
            while done < len {
                let b = (run.batch as usize).min(len - done);
                let i = run.i0 as usize + done;
                for k in 0..n {
                    scr.j[k] = origin[k] + chain.j_off[i * n + k];
                }
                let cw = b * w;
                for dq in 0..q {
                    let cell = (base + chain.src_rel[i * q + dq]) as usize;
                    scr.run_reads[dq * cw..dq * cw + cw]
                        .copy_from_slice(&vals[cell * w..cell * w + cw]);
                }
                kernel.compute_run(
                    &scr.j[..n],
                    &run.dj,
                    b,
                    &scr.run_reads[..q * cw],
                    &mut scr.run_out[..cw],
                );
                let cell = (base + chain.dst[i]) as usize;
                vals[cell * w..cell * w + cw].copy_from_slice(&scr.run_out[..cw]);
                batched += b as u64;
                done += b;
            }
        } else {
            for i in run.i0 as usize..run.i0 as usize + len {
                for k in 0..n {
                    scr.j[k] = origin[k] + chain.j_off[i * n + k];
                }
                for dq in 0..q {
                    let cell = (base + chain.src_rel[i * q + dq]) as usize;
                    scr.reads[dq * w..(dq + 1) * w]
                        .copy_from_slice(&vals[cell * w..(cell + 1) * w]);
                }
                kernel.compute(&scr.j[..n], &scr.reads[..q * w], &mut scr.out[..w]);
                let cell = (base + chain.dst[i]) as usize;
                vals[cell * w..(cell + 1) * w].copy_from_slice(&scr.out[..w]);
            }
        }
    }
    batched
}

/// Dense compute loop for a compute-interior tile: every point is in the
/// iteration space and every read source is stored in the LDS, so the loop
/// runs with zero membership tests and no per-point allocation. Iterates
/// the plan-time compute runs — unit-lag-safe chunks go through the
/// kernel's batch entry, bitwise identical to the per-point order (see
/// [`CompiledChain`]'s lag analysis). Returns the number of points
/// computed through the batch entry.
pub fn compute_tile_fast<K: MultiKernel + ?Sized>(
    chain: &CompiledChain,
    lds: &mut Lds,
    tpos: i64,
    origin: &[i64],
    kernel: &K,
    scr: &mut ComputeScratch,
) -> u64 {
    let w = lds.width();
    let base = tpos * chain.chain_step;
    // Single split borrow of the LDS buffer, hoisted out of all loops.
    let vals = lds.values_mut();
    run_compute_runs(
        chain,
        vals,
        base,
        origin,
        kernel,
        scr,
        &chain.compute_runs,
        w,
    )
}

/// [`compute_tile_fast`] restricted to a precomputed run set
/// ([`CompiledChain::boundary_runs`] / [`CompiledChain::interior_runs`]):
/// the overlapped strategy's boundary and interior passes. Returns the
/// number of points computed through the batch entry.
pub fn compute_tile_fast_subset<K: MultiKernel + ?Sized>(
    chain: &CompiledChain,
    lds: &mut Lds,
    tpos: i64,
    origin: &[i64],
    kernel: &K,
    scr: &mut ComputeScratch,
    runs: &[ComputeRun],
) -> u64 {
    let w = lds.width();
    let base = tpos * chain.chain_step;
    let vals = lds.values_mut();
    run_compute_runs(chain, vals, base, origin, kernel, scr, runs, w)
}

/// The PR2 per-point interior loop, kept verbatim (dyn dispatch and
/// `lds.values()` re-borrow per point) as the wall-clock baseline of
/// `--vec-bench` and as a second oracle for the batched path.
pub fn compute_tile_fast_per_point(
    chain: &CompiledChain,
    lds: &mut Lds,
    tpos: i64,
    origin: &[i64],
    kernel: &dyn MultiKernel,
    scr: &mut ComputeScratch,
) {
    let (n, q, w) = (chain.n, chain.q, lds.width());
    let base = tpos * chain.chain_step;
    for i in 0..chain.tile_points {
        for k in 0..n {
            scr.j[k] = origin[k] + chain.j_off[i * n + k];
        }
        let vals = lds.values();
        for dq in 0..q {
            let cell = (base + chain.src_rel[i * q + dq]) as usize;
            scr.reads[dq * w..(dq + 1) * w].copy_from_slice(&vals[cell * w..(cell + 1) * w]);
        }
        kernel.compute(&scr.j[..n], &scr.reads[..q * w], &mut scr.out[..w]);
        let cell = (base + chain.dst[i]) as usize;
        lds.values_mut()[cell * w..(cell + 1) * w].copy_from_slice(&scr.out[..w]);
    }
}

/// Boundary-tile compute loop: same precomputed indices, but clamped by the
/// original iteration-space inequalities, with out-of-space reads served by
/// the kernel's initial values. Returns the number of in-space iterations.
#[allow(clippy::too_many_arguments)]
pub fn compute_tile_clamped<K: MultiKernel + ?Sized>(
    chain: &CompiledChain,
    lds: &mut Lds,
    tpos: i64,
    origin: &[i64],
    kernel: &K,
    space: &Polyhedron,
    deps: &IMat,
    scr: &mut ComputeScratch,
) -> u64 {
    let (n, q, w) = (chain.n, chain.q, lds.width());
    let base = tpos * chain.chain_step;
    let mut iters = 0u64;
    let vals = lds.values_mut();
    for i in 0..chain.tile_points {
        for k in 0..n {
            scr.j[k] = origin[k] + chain.j_off[i * n + k];
        }
        if !space.contains(&scr.j) {
            continue;
        }
        iters += 1;
        for dq in 0..q {
            for k in 0..n {
                scr.src[k] = scr.j[k] - deps[(k, dq)];
            }
            if space.contains(&scr.src) {
                let cell = (base + chain.src_rel[i * q + dq]) as usize;
                scr.reads[dq * w..(dq + 1) * w].copy_from_slice(&vals[cell * w..(cell + 1) * w]);
            } else {
                kernel.initial(&scr.src, &mut scr.reads[dq * w..(dq + 1) * w]);
            }
        }
        kernel.compute(&scr.j[..n], &scr.reads[..q * w], &mut scr.out[..w]);
        let cell = (base + chain.dst[i]) as usize;
        vals[cell * w..(cell + 1) * w].copy_from_slice(&scr.out[..w]);
    }
    iters
}

/// [`compute_tile_clamped`] restricted to a point subset (ascending
/// walk-order indices). Returns the number of in-space iterations executed.
#[allow(clippy::too_many_arguments)]
pub fn compute_tile_clamped_subset<K: MultiKernel + ?Sized>(
    chain: &CompiledChain,
    lds: &mut Lds,
    tpos: i64,
    origin: &[i64],
    kernel: &K,
    space: &Polyhedron,
    deps: &IMat,
    scr: &mut ComputeScratch,
    subset: &[u32],
) -> u64 {
    let (n, q, w) = (chain.n, chain.q, lds.width());
    let base = tpos * chain.chain_step;
    let mut iters = 0u64;
    let vals = lds.values_mut();
    for &i in subset {
        let i = i as usize;
        for k in 0..n {
            scr.j[k] = origin[k] + chain.j_off[i * n + k];
        }
        if !space.contains(&scr.j) {
            continue;
        }
        iters += 1;
        for dq in 0..q {
            for k in 0..n {
                scr.src[k] = scr.j[k] - deps[(k, dq)];
            }
            if space.contains(&scr.src) {
                let cell = (base + chain.src_rel[i * q + dq]) as usize;
                scr.reads[dq * w..(dq + 1) * w].copy_from_slice(&vals[cell * w..(cell + 1) * w]);
            } else {
                kernel.initial(&scr.src, &mut scr.reads[dq * w..(dq + 1) * w]);
            }
        }
        kernel.compute(&scr.j[..n], &scr.reads[..q * w], &mut scr.out[..w]);
        let cell = (base + chain.dst[i]) as usize;
        vals[cell * w..(cell + 1) * w].copy_from_slice(&scr.out[..w]);
    }
    iters
}

/// Count the in-space points of a subset of a tile's TTIS walk without
/// touching any data — the timing-only path of the overlapped strategy.
pub fn count_in_space_subset(
    chain: &CompiledChain,
    origin: &[i64],
    space: &Polyhedron,
    subset: &[u32],
    j_buf: &mut [i64],
) -> u64 {
    let n = chain.n;
    let mut iters = 0u64;
    for &i in subset {
        let i = i as usize;
        for k in 0..n {
            j_buf[k] = origin[k] + chain.j_off[i * n + k];
        }
        if space.contains(j_buf) {
            iters += 1;
        }
    }
    iters
}

/// Fill `payload` with the pack region of processor dependence `dm_idx` at
/// chain position `tpos`. Unit-stride runs are whole-run block moves; the
/// rest fall back to per-index cell copies.
pub fn pack_region(
    chain: &CompiledChain,
    lds: &Lds,
    tpos: i64,
    dm_idx: usize,
    payload: &mut [f64],
) {
    let w = lds.width();
    let base = tpos * chain.chain_step;
    let vals = lds.values();
    let list = &chain.pack_rel[dm_idx];
    for run in &chain.pack_runs[dm_idx] {
        let (at, len) = (run.at as usize, run.len as usize);
        if run.step == 1 {
            let cell = (base + list[at]) as usize;
            payload[at * w..(at + len) * w].copy_from_slice(&vals[cell * w..(cell + len) * w]);
        } else {
            for t in at..at + len {
                let cell = (base + list[t]) as usize;
                payload[t * w..(t + 1) * w].copy_from_slice(&vals[cell * w..(cell + 1) * w]);
            }
        }
    }
}

/// The PR2 per-index pack loop, kept as the `--vec-bench` baseline.
pub fn pack_region_per_index(
    chain: &CompiledChain,
    lds: &Lds,
    tpos: i64,
    dm_idx: usize,
    payload: &mut [f64],
) {
    let w = lds.width();
    let base = tpos * chain.chain_step;
    let vals = lds.values();
    for (idx, &rel) in chain.pack_rel[dm_idx].iter().enumerate() {
        let cell = (base + rel) as usize;
        payload[idx * w..(idx + 1) * w].copy_from_slice(&vals[cell * w..(cell + 1) * w]);
    }
}

/// A received payload whose length disagrees with the plan's unpack list —
/// always checked, release builds included: a silent size mismatch would
/// scatter values to the wrong halo cells and corrupt the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PayloadSizeError {
    /// Index of the tile dependence being unpacked.
    pub ds_idx: usize,
    /// Expected payload length in values (`list.len() · width`).
    pub expected: usize,
    /// Actual payload length in values.
    pub actual: usize,
}

impl std::fmt::Display for PayloadSizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unpack payload size mismatch for tile dependence {}: expected {} values, got {}",
            self.ds_idx, self.expected, self.actual
        )
    }
}

impl std::error::Error for PayloadSizeError {}

/// Scatter a received `payload` into the halo cells of tile dependence
/// `ds_idx` at chain position `tpos`. Runs cover exactly the non-[`SKIP`]
/// positions, so SKIP cells are dropped by construction and unit-stride
/// runs are whole-run block moves.
pub fn unpack_region(
    chain: &CompiledChain,
    lds: &mut Lds,
    tpos: i64,
    ds_idx: usize,
    payload: &[f64],
) -> Result<(), PayloadSizeError> {
    let w = lds.width();
    let base = tpos * chain.chain_step;
    let list = &chain.unpack_rel[ds_idx];
    if list.len() * w != payload.len() {
        return Err(PayloadSizeError {
            ds_idx,
            expected: list.len() * w,
            actual: payload.len(),
        });
    }
    let vals = lds.values_mut();
    for run in &chain.unpack_runs[ds_idx] {
        let (at, len) = (run.at as usize, run.len as usize);
        if run.step == 1 {
            let cell = (base + list[at]) as usize;
            vals[cell * w..(cell + len) * w].copy_from_slice(&payload[at * w..(at + len) * w]);
        } else {
            for t in at..at + len {
                let cell = (base + list[t]) as usize;
                vals[cell * w..(cell + 1) * w].copy_from_slice(&payload[t * w..(t + 1) * w]);
            }
        }
    }
    Ok(())
}

/// The PR2 per-index unpack loop, kept as the `--vec-bench` baseline;
/// applies the same payload-size check as [`unpack_region`].
pub fn unpack_region_per_index(
    chain: &CompiledChain,
    lds: &mut Lds,
    tpos: i64,
    ds_idx: usize,
    payload: &[f64],
) -> Result<(), PayloadSizeError> {
    let w = lds.width();
    let base = tpos * chain.chain_step;
    let list = &chain.unpack_rel[ds_idx];
    if list.len() * w != payload.len() {
        return Err(PayloadSizeError {
            ds_idx,
            expected: list.len() * w,
            actual: payload.len(),
        });
    }
    let vals = lds.values_mut();
    for (idx, &rel) in list.iter().enumerate() {
        if rel == SKIP {
            continue;
        }
        let cell = (base + rel) as usize;
        vals[cell * w..(cell + 1) * w].copy_from_slice(&payload[idx * w..(idx + 1) * w]);
    }
    Ok(())
}

/// Single-pass gather of an interior tile's owned cells into the global
/// data space. Joint unit-stride runs of the source and target lists
/// become one block copy each (values and written flags); other runs fall
/// back to per-cell writes.
pub fn gather_tile_fast(
    chain: &CompiledChain,
    lds: &Lds,
    tpos: i64,
    origin: &[i64],
    ds: &mut DataSpace,
) {
    let w = lds.width();
    debug_assert_eq!(ds.width(), w);
    let base = tpos * chain.chain_step;
    let gbase = ds.flat_cell_signed(origin);
    let vals = lds.values();
    for run in &chain.gather_runs {
        let (at, len) = (run.at as usize, run.len as usize);
        if run.src_step == 1 && run.dst_step == 1 {
            let src = (base + chain.dst[at]) as usize;
            let cell = (gbase + chain.gather_rel[at]) as usize;
            ds.write_cells(cell, len, &vals[src * w..(src + len) * w]);
        } else {
            for i in at..at + len {
                let src = (base + chain.dst[i]) as usize;
                let cell = (gbase + chain.gather_rel[i]) as usize;
                ds.write_cell(cell, &vals[src * w..(src + 1) * w]);
            }
        }
    }
}

/// The PR2 per-cell gather loop, kept as the `--vec-bench` baseline.
pub fn gather_tile_per_cell(
    chain: &CompiledChain,
    lds: &Lds,
    tpos: i64,
    origin: &[i64],
    ds: &mut DataSpace,
) {
    let w = lds.width();
    debug_assert_eq!(ds.width(), w);
    let base = tpos * chain.chain_step;
    let gbase = ds.flat_cell_signed(origin);
    let vals = lds.values();
    for i in 0..chain.tile_points {
        let src = (base + chain.dst[i]) as usize;
        let cell = (gbase + chain.gather_rel[i]) as usize;
        ds.write_cell(cell, &vals[src * w..(src + 1) * w]);
    }
}

#[cfg(test)]
mod tests {
    use crate::plan::ParallelPlan;
    use tilecc_linalg::{RMat, Rational};
    use tilecc_loopnest::kernels;
    use tilecc_tiling::TilingTransform;

    /// xorshift64* — the same generator the fuzz harness uses, so failures
    /// reproduce from the printed seed alone.
    struct G(u64);
    impl G {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
        fn range(&mut self, lo: i64, hi: i64) -> i64 {
            lo + (self.next() % (hi - lo + 1) as u64) as i64
        }
    }

    /// The boundary/interior split must partition the tile's TTIS points:
    /// no overlap, no gap, pack-region seeds on the boundary side, the
    /// boundary predecessor-closed under every `d'` column (so the slab
    /// never reads an interior point), and the two in-space subset counts
    /// summing to exactly `tile_iterations` on every tile — across random
    /// non-rectangular tilings of all three paper kernels.
    #[test]
    fn split_partitions_ttis_points_across_random_tilings() {
        let mut g = G(0x5EED_CAFE);
        let mut valid = 0usize;
        let mut nonrect = 0usize;
        let mut with_interior = 0usize;
        for case in 0..100 {
            let which = g.range(0, 2);
            let alg = match which {
                0 => kernels::sor_skewed(6, 9, 1.1),
                1 => kernels::jacobi_skewed(5, 7, 6),
                _ => kernels::adi(6, 8),
            };
            let n = alg.nest.dim();
            let fs: Vec<i64> = (0..n).map(|_| g.range(2, 4)).collect();
            let (x, y, z) = (fs[0], fs[1], fs[2]);
            // Half the cases draw from the paper's non-rectangular tiling
            // families (§4) with random factors; the rest perturb a random
            // lower-triangular H (most die in validation — that's fine,
            // the survivors add shape diversity).
            let (h, offdiag) = if g.next().is_multiple_of(2) {
                let shape = g.range(0, 2);
                let h = match (which, shape) {
                    // SOR H_nr family: skew row z against row x.
                    (0, _) => RMat::from_fractions(&[
                        &[(1, x), (0, 1), (0, 1)],
                        &[(0, 1), (1, y), (0, 1)],
                        &[(-1, z), (0, 1), (1, z)],
                    ]),
                    // Jacobi H_nr: skew row x against row y.
                    (1, _) => RMat::from_fractions(&[
                        &[(1, x), (-1, 2 * x), (0, 1)],
                        &[(0, 1), (1, y), (0, 1)],
                        &[(0, 1), (0, 1), (1, z)],
                    ]),
                    // ADI H_nr1 / H_nr2 / H_nr3.
                    (_, 0) => RMat::from_fractions(&[
                        &[(1, x), (-1, x), (0, 1)],
                        &[(0, 1), (1, y), (0, 1)],
                        &[(0, 1), (0, 1), (1, z)],
                    ]),
                    (_, 1) => RMat::from_fractions(&[
                        &[(1, x), (0, 1), (-1, x)],
                        &[(0, 1), (1, y), (0, 1)],
                        &[(0, 1), (0, 1), (1, z)],
                    ]),
                    (_, _) => RMat::from_fractions(&[
                        &[(1, x), (-1, x), (-1, x)],
                        &[(0, 1), (1, y), (0, 1)],
                        &[(0, 1), (0, 1), (1, z)],
                    ]),
                };
                (h, true)
            } else {
                let mut offdiag = false;
                let mut rows: Vec<Vec<Rational>> = Vec::new();
                for i in 0..n {
                    let mut row = vec![Rational::ZERO; n];
                    row[i] = Rational::new(1, fs[i] as i128);
                    for cell in row.iter_mut().take(i) {
                        if g.next().is_multiple_of(2) {
                            let s = g.range(1, 2) * 2;
                            *cell = Rational::new(-1, (fs[i] * s) as i128);
                            offdiag = true;
                        }
                    }
                    rows.push(row);
                }
                (RMat::from_fn(n, n, |i, j| rows[i][j]), offdiag)
            };
            let Ok(t) = TilingTransform::new(h) else {
                continue;
            };
            if t.validate_for(alg.nest.deps()).is_err() {
                continue;
            }
            let m = (g.next() % n as u64) as usize;
            let Ok(plan) = ParallelPlan::new(alg, t, Some(m)) else {
                continue;
            };
            valid += 1;
            if offdiag {
                nonrect += 1;
            }

            let tr = plan.tiled.transform();
            let v = tr.v();
            let lat = tr.lattice();
            let zero = vec![0i64; n];
            let mut coords: Vec<Vec<i64>> = Vec::new();
            lat.for_each_in_box(&zero, v, |jp| coords.push(jp.to_vec()));
            let index_of: std::collections::BTreeMap<&[i64], usize> = coords
                .iter()
                .enumerate()
                .map(|(i, jp)| (jp.as_slice(), i))
                .collect();

            let mut lens = std::collections::BTreeSet::new();
            for &(lo_t, hi_t) in &plan.dist.chains {
                lens.insert(hi_t - lo_t + 1);
            }
            for &len in &lens {
                let chain = plan.compiled_for(len);
                assert_eq!(chain.tile_points, coords.len(), "case {case}");

                // Partition: each side strictly ascending, union complete.
                let mut side = vec![None; chain.tile_points];
                for (order, tag) in [
                    (&chain.boundary_order, true),
                    (&chain.interior_order, false),
                ] {
                    assert!(order.windows(2).all(|w| w[0] < w[1]), "case {case}");
                    for &i in order.iter() {
                        assert!(
                            side[i as usize].replace(tag).is_none(),
                            "case {case}: point {i} on both sides"
                        );
                    }
                }
                assert!(
                    side.iter().all(Option::is_some),
                    "case {case}: split leaves a gap"
                );

                // Pack-region seeds are boundary points.
                for dm in &plan.comm.proc_deps {
                    let lo = plan.comm.region_lo(dm, v);
                    for (i, jp) in coords.iter().enumerate() {
                        if jp.iter().zip(&lo).all(|(&x, &l)| x >= l) {
                            assert_eq!(
                                side[i],
                                Some(true),
                                "case {case}: region point {jp:?} not in slab"
                            );
                        }
                    }
                }

                // Predecessor-closed: a slab point's intra-tile reads are
                // slab points, so the interior never feeds a send.
                let q = plan.comm.d_prime.cols();
                let mut pred = vec![0i64; n];
                for &i in chain.boundary_order.iter() {
                    for dq in 0..q {
                        for k in 0..n {
                            pred[k] = coords[i as usize][k] - plan.comm.d_prime[(k, dq)];
                        }
                        if let Some(&p) = index_of.get(pred.as_slice()) {
                            assert_eq!(
                                side[p],
                                Some(true),
                                "case {case}: slab reads interior point {pred:?}"
                            );
                        }
                    }
                }
                if !chain.interior_order.is_empty() {
                    with_interior += 1;
                }
            }

            // In-space subset counts partition every tile's iterations.
            let mut j_buf = vec![0i64; n];
            let space = plan.tiled.space();
            if let Some(&(lo_t, hi_t)) = plan.dist.chains.first() {
                // Per-tile counts are chain-length independent.
                let chain = plan.compiled_for(hi_t - lo_t + 1);
                for tile in plan.tiled.tiles() {
                    let origin = super::tile_origin(tr, &tile);
                    let b = super::count_in_space_subset(
                        chain,
                        &origin,
                        space,
                        &chain.boundary_order,
                        &mut j_buf,
                    );
                    let i = super::count_in_space_subset(
                        chain,
                        &origin,
                        space,
                        &chain.interior_order,
                        &mut j_buf,
                    );
                    let expect = plan.tiled.tile_iterations(&tile).count() as u64;
                    assert_eq!(b + i, expect, "case {case}: tile {tile:?}");
                }
            }
        }
        assert!(valid >= 10, "only {valid} valid sampled tilings");
        assert!(nonrect >= 5, "only {nonrect} non-rectangular tilings");
        assert!(
            with_interior >= 1,
            "no sampled tiling produced a private interior"
        );
    }

    /// SKIP sentinels are never covered and split otherwise-affine runs
    /// exactly; singletons carry step 1 (the block-move fast path).
    #[test]
    fn coalesce_runs_splits_on_skip() {
        use super::{coalesce_runs, IndexRun, SKIP};
        assert_eq!(coalesce_runs(&[]), vec![]);
        assert_eq!(coalesce_runs(&[SKIP, SKIP]), vec![]);
        assert_eq!(
            coalesce_runs(&[7]),
            vec![IndexRun {
                at: 0,
                len: 1,
                step: 1
            }]
        );
        // One affine list cut in two by a SKIP; the second piece resumes
        // with its own start cell and the same stride.
        assert_eq!(
            coalesce_runs(&[10, 12, 14, SKIP, 18, 20]),
            vec![
                IndexRun {
                    at: 0,
                    len: 3,
                    step: 2
                },
                IndexRun {
                    at: 4,
                    len: 2,
                    step: 2
                },
            ]
        );
        // A stride change splits without a gap.
        assert_eq!(
            coalesce_runs(&[0, 1, 2, 10, 11]),
            vec![
                IndexRun {
                    at: 0,
                    len: 3,
                    step: 1
                },
                IndexRun {
                    at: 3,
                    len: 2,
                    step: 1
                },
            ]
        );
    }

    /// A short payload must be a typed error — in release builds too — and
    /// must leave the LDS untouched; same for an over-long payload.
    #[test]
    fn unpack_rejects_wrong_payload_sizes() {
        let plan = ParallelPlan::new(
            kernels::jacobi_skewed(8, 12, 12),
            TilingTransform::rectangular(&[2, 4, 4]).unwrap(),
            Some(1),
        )
        .unwrap();
        let (lo_t, hi_t) = plan.dist.chains[0];
        let num_tiles = hi_t - lo_t + 1;
        let w = plan.algorithm.width();
        let chain = plan.compiled_for(num_tiles);
        let ds_idx = chain
            .unpack_rel
            .iter()
            .position(|l| !l.is_empty())
            .expect("a tile dependence with an unpack list");
        let expected = chain.unpack_rel[ds_idx].len() * w;
        let mut lds =
            tilecc_tiling::Lds::with_width(plan.geo.clone(), plan.anchor(0), num_tiles, w);
        let before: Vec<u64> = lds.values().iter().map(|v| v.to_bits()).collect();
        type UnpackFn = fn(
            &super::CompiledChain,
            &mut tilecc_tiling::Lds,
            i64,
            usize,
            &[f64],
        ) -> Result<(), super::PayloadSizeError>;
        for (unpack, label) in [
            (super::unpack_region as UnpackFn, "run"),
            (super::unpack_region_per_index as UnpackFn, "per-index"),
        ] {
            for bad in [expected - 1, expected + w] {
                let payload = vec![1.0f64; bad];
                let err = unpack(chain, &mut lds, 0, ds_idx, &payload)
                    .expect_err("wrong payload size must be rejected");
                assert_eq!(err.ds_idx, ds_idx, "{label}");
                assert_eq!(err.expected, expected, "{label}");
                assert_eq!(err.actual, bad, "{label}");
                assert!(err.to_string().contains("payload size mismatch"), "{label}");
                let after: Vec<u64> = lds.values().iter().map(|v| v.to_bits()).collect();
                assert_eq!(before, after, "{label}: failed unpack touched the LDS");
            }
        }
    }

    /// The batched interior compute must be bitwise identical to the
    /// per-point PR2 loop on a real plan, and must actually batch.
    #[test]
    fn batched_compute_matches_per_point_bitwise() {
        for (alg, h, m) in [
            (
                kernels::jacobi_skewed(8, 12, 12),
                TilingTransform::rectangular(&[2, 4, 4]).unwrap(),
                1usize,
            ),
            (
                kernels::adi_paper(8, 15),
                TilingTransform::rectangular(&[3, 5, 5]).unwrap(),
                1,
            ),
        ] {
            let name = alg.name.clone();
            let plan = ParallelPlan::new(alg, h, Some(m)).unwrap();
            let (lo_t, hi_t) = plan.dist.chains[0];
            let num_tiles = hi_t - lo_t + 1;
            let w = plan.algorithm.width();
            let chain = plan.compiled_for(num_tiles);
            let (n, q) = (chain.n, chain.q);
            let tr = plan.tiled.transform();
            let deps = plan.deps();
            let tile = plan
                .tiled
                .tiles()
                .find(|tile| plan.tiled.tile_is_compute_interior(tile, deps))
                .expect("a compute-interior tile");
            let origin = super::tile_origin(tr, &tile);
            let mut scr = super::ComputeScratch::new(n, q, w);
            let fill = |lds: &mut tilecc_tiling::Lds| {
                for (i, x) in lds.values_mut().iter_mut().enumerate() {
                    *x = ((i % 977) as f64) / 977.0;
                }
            };
            let mut lds =
                tilecc_tiling::Lds::with_width(plan.geo.clone(), plan.anchor(0), num_tiles, w);
            fill(&mut lds);
            super::compute_tile_fast_per_point(
                chain,
                &mut lds,
                0,
                &origin,
                plan.algorithm.kernel.as_ref(),
                &mut scr,
            );
            let want: Vec<u64> = lds.values().iter().map(|v| v.to_bits()).collect();
            fill(&mut lds);
            let batched = super::compute_tile_fast(
                chain,
                &mut lds,
                0,
                &origin,
                plan.algorithm.kernel.as_ref(),
                &mut scr,
            );
            let got: Vec<u64> = lds.values().iter().map(|v| v.to_bits()).collect();
            assert!(batched > 0, "{name}: nothing batched");
            assert_eq!(want, got, "{name}: batched compute differs bitwise");
        }
    }
}
