#![allow(clippy::needless_range_loop)] // index loops mirror the paper's matrix notation
//! Compiled tile execution: flat linear indices over the row-major LDS.
//!
//! The paper's performance argument (§3.1, Table 1) is that condensed
//! rectangular LDS storage plus strided TTIS traversal lets the *generated*
//! tile code run at array speed. The reference executor re-derives every
//! per-dimension address point by point; this module instead lowers each
//! rank's work **at plan time** to flat cell indices:
//!
//! - Every tile of a chain covers the same TTIS lattice points, and because
//!   the integral-tile-sides validation forces `c_m | v_m`, advancing one
//!   chain position shifts every flat index by the constant
//!   `chain_step = (v_m / c_m) · weights_m`. One table of per-point indices
//!   therefore serves the whole chain: `cell = tpos · chain_step + rel`.
//! - Dependences are uniform, so each read source sits at a *constant signed
//!   displacement* `src_rel` from the tile base — no per-point address
//!   derivation, no membership test on interior tiles.
//! - The pack/unpack lattice walks of RECEIVE/SEND run once per plan, not
//!   once per tile, leaving dense index-list copies in the hot loop.
//! - The gather writes each owned cell straight into the global `DataSpace`
//!   through precomputed relative offsets instead of re-running
//!   `tile_iterations` and materializing per-point vectors.
//!
//! Offsets are exact wherever the checked path would succeed: for any two
//! coordinates whose per-dimension addresses are in range, the difference of
//! their signed flat indices equals their true cell distance (see
//! [`LdsGeometry::flat_cell_signed`]). The constructor asserts every
//! *unconditional* index (owned cells, pack regions) in range per dimension;
//! halo unpack cells that fall outside the allocation — writes the reference
//! path's `Lds::set_all` silently drops — are marked [`SKIP`] at build time.

use tilecc_linalg::vecops::div_floor;
use tilecc_linalg::IMat;
use tilecc_loopnest::{DataSpace, MultiKernel};
use tilecc_polytope::Polyhedron;
use tilecc_tiling::{CommPlan, Lds, LdsGeometry, TiledSpace, TilingTransform};

/// Sentinel for precomputed unpack cells outside the LDS allocation (halo
/// deeper than any read reaches); the unpack loop drops them, exactly as
/// `Lds::set_all` does on the reference path.
pub const SKIP: i64 = i64::MIN;

/// Plan-time lowering of one chain length's tile work to flat LDS indices.
///
/// LDS extents — and therefore row-major weights — depend on the chain
/// length, so a [`CompiledChain`] is built per distinct `num_tiles` (ranks
/// sharing a chain length share the tables).
pub struct CompiledChain {
    /// Chain length this table was compiled for.
    pub num_tiles: i64,
    /// TTIS lattice points per full tile.
    pub tile_points: usize,
    /// Number of dependence columns.
    pub q: usize,
    /// Loop-nest dimension.
    pub n: usize,
    /// Flat-index shift per chain position (`(v_m / c_m) · weights_m`).
    pub chain_step: i64,
    /// Owned cell index of each tile point at `tpos = 0`, TTIS walk order.
    pub dst: Vec<i64>,
    /// Per-point global-iteration offset `P'·j'` (row-major, `n` per point):
    /// the iteration is `j = P·tile + j_off` with both parts integral.
    pub j_off: Vec<i64>,
    /// Signed read-source cell per point and dependence (point-major,
    /// `q` per point): `src = dst − flat(d')`, constant across the chain.
    pub src_rel: Vec<i64>,
    /// Per-point signed flat offset into the global `DataSpace`
    /// (`Σ_k j_off_k · ds_weights_k`); the gather base is the tile origin's
    /// signed cell index.
    pub gather_rel: Vec<i64>,
    /// Pack index lists, one per processor dependence: owned cells of the
    /// region `[region_lo(dm), v)` at `tpos = 0`, lattice walk order.
    pub pack_rel: Vec<Vec<i64>>,
    /// Unpack index lists, one per *tile* dependence (aligned with
    /// `comm.tile_deps`; empty for intra-processor dependences): halo cell
    /// of each region point at `tpos = 0`, or [`SKIP`].
    pub unpack_rel: Vec<Vec<i64>>,
}

impl CompiledChain {
    /// Lower the per-tile work of a `num_tiles`-long chain. `ds_weights` are
    /// the global data space's row-major cell weights (the gather target).
    pub fn new(
        tiled: &TiledSpace,
        comm: &CommPlan,
        geo: &LdsGeometry,
        ds_weights: &[i64],
        num_tiles: i64,
    ) -> Self {
        let t = tiled.transform();
        let n = t.dim();
        let m = geo.m;
        let v = t.v();
        assert_eq!(
            v[m] % geo.c[m],
            0,
            "integral tile sides guarantee c_m | v_m"
        );
        let extents = geo.extents(num_tiles);
        let weights = LdsGeometry::weights(&extents);
        let total_cells: i64 = extents.iter().product();
        let chain_step = (v[m] / geo.c[m]) * weights[m];
        let q = comm.d_prime.cols();
        let lat = t.lattice();
        let p_prime = t.p_prime();

        // Checked flat index of an owned/pack cell at tpos = 0: every
        // dimension must be in range (dimension m is then in range for the
        // whole chain because the decomposition is linear in tpos).
        let flat_checked = |jp: &[i64], what: &str| -> i64 {
            let mut cell = 0i64;
            for k in 0..n {
                let a = div_floor(jp[k], geo.c[k]) + geo.off[k];
                assert!(
                    0 <= a && a < extents[k],
                    "{what} address out of range: jp={jp:?} dim {k}"
                );
                cell += a * weights[k];
            }
            cell
        };

        let mut dst = Vec::new();
        let mut j_off = Vec::new();
        let mut src_rel = Vec::new();
        let mut gather_rel = Vec::new();
        let mut g0 = vec![0i64; n];
        let zero = vec![0i64; n];
        lat.for_each_in_box(&zero, v, |jp| {
            let cell = flat_checked(jp, "owned");
            assert!(cell + (num_tiles - 1) * chain_step < total_cells);
            dst.push(cell);
            // j = P·tile + P'·j'; both parts are integral (P is validated
            // integral, and lattice points satisfy j' = H'·z).
            let off_j = p_prime.mul_ivec(jp);
            let mut grel = 0i64;
            for (k, r) in off_j.iter().enumerate() {
                assert!(r.is_integer(), "P'·j' must be integral on the lattice");
                let x = r.to_integer();
                j_off.push(x);
                grel += x * ds_weights[k];
            }
            gather_rel.push(grel);
            for dq in 0..q {
                for k in 0..n {
                    g0[k] = jp[k] - comm.d_prime[(k, dq)];
                }
                src_rel.push(geo.flat_cell_signed(&g0, &weights));
            }
        });
        let tile_points = dst.len();
        assert_eq!(tile_points, tiled.full_tile_volume());

        let pack_rel: Vec<Vec<i64>> = comm
            .proc_deps
            .iter()
            .map(|dm| {
                let lo = comm.region_lo(dm, v);
                let mut cells = Vec::new();
                lat.for_each_in_box(&lo, v, |jp| cells.push(flat_checked(jp, "pack")));
                cells
            })
            .collect();

        // Unpack: the receiver addresses the sender's region points as data
        // of chain tile `tpos − ds_m` shifted by `−ds_k·v_k`; at `tpos = 0`
        // that is uniformly `g_k = jp_k − ds_k·v_k`.
        let unpack_rel: Vec<Vec<i64>> = comm
            .tile_deps
            .iter()
            .zip(&comm.dm_of_ds)
            .map(|(ds, dm_idx)| {
                let Some(dm_idx) = *dm_idx else {
                    return Vec::new();
                };
                let lo = comm.region_lo(&comm.proc_deps[dm_idx], v);
                let mut cells = Vec::new();
                lat.for_each_in_box(&lo, v, |jp| {
                    let mut cell = 0i64;
                    let mut in_range = true;
                    for k in 0..n {
                        let a = div_floor(jp[k] - ds[k] * v[k], geo.c[k]) + geo.off[k];
                        if k == m {
                            // Halo depth along the mapping dimension is
                            // covered by construction (off_m spans the
                            // deepest predecessor tile), so a receive never
                            // underflows the allocation.
                            assert!(a >= 0, "mapping-dimension halo underflow");
                        } else if a < 0 || a >= extents[k] {
                            in_range = false;
                        }
                        cell += a * weights[k];
                    }
                    cells.push(if in_range { cell } else { SKIP });
                });
                cells
            })
            .collect();

        CompiledChain {
            num_tiles,
            tile_points,
            q,
            n,
            chain_step,
            dst,
            j_off,
            src_rel,
            gather_rel,
            pack_rel,
            unpack_rel,
        }
    }

    /// Message length (in values) of each pack region — equals the lattice
    /// point count of `[region_lo(dm), v)`.
    pub fn pack_counts(&self) -> Vec<usize> {
        self.pack_rel.iter().map(Vec::len).collect()
    }
}

/// The tile's origin iteration `P·tile` (integral: `P` is validated to have
/// integral entries). Per-point iterations are `origin + j_off`.
pub fn tile_origin(t: &TilingTransform, tile: &[i64]) -> Vec<i64> {
    t.p()
        .mul_ivec(tile)
        .iter()
        .map(|r| {
            debug_assert!(r.is_integer());
            r.to_integer()
        })
        .collect()
}

/// Dense compute loop for a compute-interior tile: every point is in the
/// iteration space and every read source is stored in the LDS, so the loop
/// runs with zero membership tests and no per-point allocation.
#[allow(clippy::too_many_arguments)]
pub fn compute_tile_fast(
    chain: &CompiledChain,
    lds: &mut Lds,
    tpos: i64,
    origin: &[i64],
    kernel: &dyn MultiKernel,
    reads: &mut [f64],
    out: &mut [f64],
    j_buf: &mut [i64],
) {
    let (n, q, w) = (chain.n, chain.q, lds.width());
    let base = tpos * chain.chain_step;
    for i in 0..chain.tile_points {
        for k in 0..n {
            j_buf[k] = origin[k] + chain.j_off[i * n + k];
        }
        let vals = lds.values();
        for dq in 0..q {
            let cell = (base + chain.src_rel[i * q + dq]) as usize;
            reads[dq * w..(dq + 1) * w].copy_from_slice(&vals[cell * w..(cell + 1) * w]);
        }
        kernel.compute(j_buf, reads, out);
        let cell = (base + chain.dst[i]) as usize;
        lds.values_mut()[cell * w..(cell + 1) * w].copy_from_slice(out);
    }
}

/// Boundary-tile compute loop: same precomputed indices, but clamped by the
/// original iteration-space inequalities, with out-of-space reads served by
/// the kernel's initial values. Returns the number of in-space iterations.
#[allow(clippy::too_many_arguments)]
pub fn compute_tile_clamped(
    chain: &CompiledChain,
    lds: &mut Lds,
    tpos: i64,
    origin: &[i64],
    kernel: &dyn MultiKernel,
    space: &Polyhedron,
    deps: &IMat,
    reads: &mut [f64],
    out: &mut [f64],
    j_buf: &mut [i64],
    src_buf: &mut [i64],
) -> u64 {
    let (n, q, w) = (chain.n, chain.q, lds.width());
    let base = tpos * chain.chain_step;
    let mut iters = 0u64;
    for i in 0..chain.tile_points {
        for k in 0..n {
            j_buf[k] = origin[k] + chain.j_off[i * n + k];
        }
        if !space.contains(j_buf) {
            continue;
        }
        iters += 1;
        for dq in 0..q {
            for k in 0..n {
                src_buf[k] = j_buf[k] - deps[(k, dq)];
            }
            if space.contains(src_buf) {
                let cell = (base + chain.src_rel[i * q + dq]) as usize;
                reads[dq * w..(dq + 1) * w]
                    .copy_from_slice(&lds.values()[cell * w..(cell + 1) * w]);
            } else {
                kernel.initial(src_buf, &mut reads[dq * w..(dq + 1) * w]);
            }
        }
        kernel.compute(j_buf, reads, out);
        let cell = (base + chain.dst[i]) as usize;
        lds.values_mut()[cell * w..(cell + 1) * w].copy_from_slice(out);
    }
    iters
}

/// Fill `payload` with the pack region of processor dependence `dm_idx` at
/// chain position `tpos` — a dense index-list copy.
pub fn pack_region(
    chain: &CompiledChain,
    lds: &Lds,
    tpos: i64,
    dm_idx: usize,
    payload: &mut [f64],
) {
    let w = lds.width();
    let base = tpos * chain.chain_step;
    let vals = lds.values();
    for (idx, &rel) in chain.pack_rel[dm_idx].iter().enumerate() {
        let cell = (base + rel) as usize;
        payload[idx * w..(idx + 1) * w].copy_from_slice(&vals[cell * w..(cell + 1) * w]);
    }
}

/// Scatter a received `payload` into the halo cells of tile dependence
/// `ds_idx` at chain position `tpos`, dropping [`SKIP`] cells.
pub fn unpack_region(
    chain: &CompiledChain,
    lds: &mut Lds,
    tpos: i64,
    ds_idx: usize,
    payload: &[f64],
) {
    let w = lds.width();
    let base = tpos * chain.chain_step;
    let list = &chain.unpack_rel[ds_idx];
    debug_assert_eq!(list.len() * w, payload.len(), "unpack count mismatch");
    let vals = lds.values_mut();
    for (idx, &rel) in list.iter().enumerate() {
        if rel == SKIP {
            continue;
        }
        let cell = (base + rel) as usize;
        vals[cell * w..(cell + 1) * w].copy_from_slice(&payload[idx * w..(idx + 1) * w]);
    }
}

/// Single-pass gather of an interior tile's owned cells into the global
/// data space: bulk cell copies through the precomputed relative offsets,
/// no re-traversal and no per-point vectors.
pub fn gather_tile_fast(
    chain: &CompiledChain,
    lds: &Lds,
    tpos: i64,
    origin: &[i64],
    ds: &mut DataSpace,
) {
    let w = lds.width();
    debug_assert_eq!(ds.width(), w);
    let base = tpos * chain.chain_step;
    let gbase = ds.flat_cell_signed(origin);
    let vals = lds.values();
    for i in 0..chain.tile_points {
        let src = (base + chain.dst[i]) as usize;
        let cell = (gbase + chain.gather_rel[i]) as usize;
        ds.write_cell(cell, &vals[src * w..(src + 1) * w]);
    }
}
