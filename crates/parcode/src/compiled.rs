#![allow(clippy::needless_range_loop)] // index loops mirror the paper's matrix notation
//! Compiled tile execution: flat linear indices over the row-major LDS.
//!
//! The paper's performance argument (§3.1, Table 1) is that condensed
//! rectangular LDS storage plus strided TTIS traversal lets the *generated*
//! tile code run at array speed. The reference executor re-derives every
//! per-dimension address point by point; this module instead lowers each
//! rank's work **at plan time** to flat cell indices:
//!
//! - Every tile of a chain covers the same TTIS lattice points, and because
//!   the integral-tile-sides validation forces `c_m | v_m`, advancing one
//!   chain position shifts every flat index by the constant
//!   `chain_step = (v_m / c_m) · weights_m`. One table of per-point indices
//!   therefore serves the whole chain: `cell = tpos · chain_step + rel`.
//! - Dependences are uniform, so each read source sits at a *constant signed
//!   displacement* `src_rel` from the tile base — no per-point address
//!   derivation, no membership test on interior tiles.
//! - The pack/unpack lattice walks of RECEIVE/SEND run once per plan, not
//!   once per tile, leaving dense index-list copies in the hot loop.
//! - The gather writes each owned cell straight into the global `DataSpace`
//!   through precomputed relative offsets instead of re-running
//!   `tile_iterations` and materializing per-point vectors.
//!
//! Offsets are exact wherever the checked path would succeed: for any two
//! coordinates whose per-dimension addresses are in range, the difference of
//! their signed flat indices equals their true cell distance (see
//! [`LdsGeometry::flat_cell_signed`]). The constructor asserts every
//! *unconditional* index (owned cells, pack regions) in range per dimension;
//! halo unpack cells that fall outside the allocation — writes the reference
//! path's `Lds::set_all` silently drops — are marked [`SKIP`] at build time.

use std::collections::BTreeMap;
use tilecc_linalg::vecops::div_floor;
use tilecc_linalg::IMat;
use tilecc_loopnest::{DataSpace, MultiKernel};
use tilecc_polytope::Polyhedron;
use tilecc_tiling::{CommPlan, Lds, LdsGeometry, TiledSpace, TilingTransform};

/// Sentinel for precomputed unpack cells outside the LDS allocation (halo
/// deeper than any read reaches); the unpack loop drops them, exactly as
/// `Lds::set_all` does on the reference path.
pub const SKIP: i64 = i64::MIN;

/// Plan-time lowering of one chain length's tile work to flat LDS indices.
///
/// LDS extents — and therefore row-major weights — depend on the chain
/// length, so a [`CompiledChain`] is built per distinct `num_tiles` (ranks
/// sharing a chain length share the tables).
pub struct CompiledChain {
    /// Chain length this table was compiled for.
    pub num_tiles: i64,
    /// TTIS lattice points per full tile.
    pub tile_points: usize,
    /// Number of dependence columns.
    pub q: usize,
    /// Loop-nest dimension.
    pub n: usize,
    /// Flat-index shift per chain position (`(v_m / c_m) · weights_m`).
    pub chain_step: i64,
    /// Owned cell index of each tile point at `tpos = 0`, TTIS walk order.
    pub dst: Vec<i64>,
    /// Per-point global-iteration offset `P'·j'` (row-major, `n` per point):
    /// the iteration is `j = P·tile + j_off` with both parts integral.
    pub j_off: Vec<i64>,
    /// Signed read-source cell per point and dependence (point-major,
    /// `q` per point): `src = dst − flat(d')`, constant across the chain.
    pub src_rel: Vec<i64>,
    /// Per-point signed flat offset into the global `DataSpace`
    /// (`Σ_k j_off_k · ds_weights_k`); the gather base is the tile origin's
    /// signed cell index.
    pub gather_rel: Vec<i64>,
    /// Pack index lists, one per processor dependence: owned cells of the
    /// region `[region_lo(dm), v)` at `tpos = 0`, lattice walk order.
    pub pack_rel: Vec<Vec<i64>>,
    /// Unpack index lists, one per *tile* dependence (aligned with
    /// `comm.tile_deps`; empty for intra-processor dependences): halo cell
    /// of each region point at `tpos = 0`, or [`SKIP`].
    pub unpack_rel: Vec<Vec<i64>>,
    /// Boundary-slab point indices (into the TTIS walk order), ascending:
    /// the dependence closure of the union of the pack regions. Executing
    /// these first makes every pack region ready to send before the
    /// interior runs (the overlapped strategy's compute-boundary pass).
    pub boundary_order: Vec<u32>,
    /// The complementary private-interior point indices, ascending. No pack
    /// region reads them, so they compute while sends are in flight.
    pub interior_order: Vec<u32>,
}

impl CompiledChain {
    /// Lower the per-tile work of a `num_tiles`-long chain. `ds_weights` are
    /// the global data space's row-major cell weights (the gather target).
    pub fn new(
        tiled: &TiledSpace,
        comm: &CommPlan,
        geo: &LdsGeometry,
        ds_weights: &[i64],
        num_tiles: i64,
    ) -> Self {
        let t = tiled.transform();
        let n = t.dim();
        let m = geo.m;
        let v = t.v();
        assert_eq!(
            v[m] % geo.c[m],
            0,
            "integral tile sides guarantee c_m | v_m"
        );
        let extents = geo.extents(num_tiles);
        let weights = LdsGeometry::weights(&extents);
        let total_cells: i64 = extents.iter().product();
        let chain_step = (v[m] / geo.c[m]) * weights[m];
        let q = comm.d_prime.cols();
        let lat = t.lattice();
        let p_prime = t.p_prime();

        // Checked flat index of an owned/pack cell at tpos = 0: every
        // dimension must be in range (dimension m is then in range for the
        // whole chain because the decomposition is linear in tpos).
        let flat_checked = |jp: &[i64], what: &str| -> i64 {
            let mut cell = 0i64;
            for k in 0..n {
                let a = div_floor(jp[k], geo.c[k]) + geo.off[k];
                assert!(
                    0 <= a && a < extents[k],
                    "{what} address out of range: jp={jp:?} dim {k}"
                );
                cell += a * weights[k];
            }
            cell
        };

        let mut dst = Vec::new();
        let mut j_off = Vec::new();
        let mut src_rel = Vec::new();
        let mut gather_rel = Vec::new();
        let mut coords: Vec<Vec<i64>> = Vec::new();
        let mut g0 = vec![0i64; n];
        let zero = vec![0i64; n];
        lat.for_each_in_box(&zero, v, |jp| {
            coords.push(jp.to_vec());
            let cell = flat_checked(jp, "owned");
            assert!(cell + (num_tiles - 1) * chain_step < total_cells);
            dst.push(cell);
            // j = P·tile + P'·j'; both parts are integral (P is validated
            // integral, and lattice points satisfy j' = H'·z).
            let off_j = p_prime.mul_ivec(jp);
            let mut grel = 0i64;
            for (k, r) in off_j.iter().enumerate() {
                assert!(r.is_integer(), "P'·j' must be integral on the lattice");
                let x = r.to_integer();
                j_off.push(x);
                grel += x * ds_weights[k];
            }
            gather_rel.push(grel);
            for dq in 0..q {
                for k in 0..n {
                    g0[k] = jp[k] - comm.d_prime[(k, dq)];
                }
                src_rel.push(geo.flat_cell_signed(&g0, &weights));
            }
        });
        let tile_points = dst.len();
        assert_eq!(tile_points, tiled.full_tile_volume());

        let pack_rel: Vec<Vec<i64>> = comm
            .proc_deps
            .iter()
            .map(|dm| {
                let lo = comm.region_lo(dm, v);
                let mut cells = Vec::new();
                lat.for_each_in_box(&lo, v, |jp| cells.push(flat_checked(jp, "pack")));
                cells
            })
            .collect();

        // Unpack: the receiver addresses the sender's region points as data
        // of chain tile `tpos − ds_m` shifted by `−ds_k·v_k`; at `tpos = 0`
        // that is uniformly `g_k = jp_k − ds_k·v_k`.
        let unpack_rel: Vec<Vec<i64>> = comm
            .tile_deps
            .iter()
            .zip(&comm.dm_of_ds)
            .map(|(ds, dm_idx)| {
                let Some(dm_idx) = *dm_idx else {
                    return Vec::new();
                };
                let lo = comm.region_lo(&comm.proc_deps[dm_idx], v);
                let mut cells = Vec::new();
                lat.for_each_in_box(&lo, v, |jp| {
                    let mut cell = 0i64;
                    let mut in_range = true;
                    for k in 0..n {
                        let a = div_floor(jp[k] - ds[k] * v[k], geo.c[k]) + geo.off[k];
                        if k == m {
                            // Halo depth along the mapping dimension is
                            // covered by construction (off_m spans the
                            // deepest predecessor tile), so a receive never
                            // underflows the allocation.
                            assert!(a >= 0, "mapping-dimension halo underflow");
                        } else if a < 0 || a >= extents[k] {
                            in_range = false;
                        }
                        cell += a * weights[k];
                    }
                    cells.push(if in_range { cell } else { SKIP });
                });
                cells
            })
            .collect();

        // Boundary/interior split for the overlapped strategy. The slab is
        // the *dependence closure* of the union of the pack regions: every
        // TTIS point some pack-region point transitively reads within the
        // tile, not just the regions themselves — tiling validity gives
        // `d' = H'·d ≥ 0`, so region points read *lower* lattice points and
        // a region-only pass would execute them against stale cells.
        // Because `d' ≥ 0` also makes the ascending lattice walk order a
        // topological order, running the slab in walk order, then the
        // interior in walk order, respects every intra-tile dependence:
        // the closure is predecessor-closed, so no slab point reads an
        // interior point.
        assert!(tile_points <= u32::MAX as usize, "tile too large to index");
        let index_of: BTreeMap<&[i64], usize> = coords
            .iter()
            .enumerate()
            .map(|(i, jp)| (jp.as_slice(), i))
            .collect();
        let mut in_slab = vec![false; tile_points];
        let mut work: Vec<usize> = Vec::new();
        for dm in &comm.proc_deps {
            let lo = comm.region_lo(dm, v);
            for (i, jp) in coords.iter().enumerate() {
                if !in_slab[i] && jp.iter().zip(&lo).all(|(&x, &l)| x >= l) {
                    in_slab[i] = true;
                    work.push(i);
                }
            }
        }
        let mut pred = vec![0i64; n];
        while let Some(i) = work.pop() {
            for dq in 0..q {
                for k in 0..n {
                    pred[k] = coords[i][k] - comm.d_prime[(k, dq)];
                }
                // `j' − d'` stays on the lattice (d' = H'·d), so box
                // membership is exactly map membership.
                if let Some(&p) = index_of.get(pred.as_slice()) {
                    if !in_slab[p] {
                        in_slab[p] = true;
                        work.push(p);
                    }
                }
            }
        }
        let boundary_order: Vec<u32> = (0..tile_points)
            .filter(|&i| in_slab[i])
            .map(|i| i as u32)
            .collect();
        let interior_order: Vec<u32> = (0..tile_points)
            .filter(|&i| !in_slab[i])
            .map(|i| i as u32)
            .collect();
        debug_assert_eq!(boundary_order.len() + interior_order.len(), tile_points);

        CompiledChain {
            num_tiles,
            tile_points,
            q,
            n,
            chain_step,
            dst,
            j_off,
            src_rel,
            gather_rel,
            pack_rel,
            unpack_rel,
            boundary_order,
            interior_order,
        }
    }

    /// Message length (in values) of each pack region — equals the lattice
    /// point count of `[region_lo(dm), v)`.
    pub fn pack_counts(&self) -> Vec<usize> {
        self.pack_rel.iter().map(Vec::len).collect()
    }
}

/// The tile's origin iteration `P·tile` (integral: `P` is validated to have
/// integral entries). Per-point iterations are `origin + j_off`.
pub fn tile_origin(t: &TilingTransform, tile: &[i64]) -> Vec<i64> {
    t.p()
        .mul_ivec(tile)
        .iter()
        .map(|r| {
            debug_assert!(r.is_integer());
            r.to_integer()
        })
        .collect()
}

/// Dense compute loop for a compute-interior tile: every point is in the
/// iteration space and every read source is stored in the LDS, so the loop
/// runs with zero membership tests and no per-point allocation.
#[allow(clippy::too_many_arguments)]
pub fn compute_tile_fast(
    chain: &CompiledChain,
    lds: &mut Lds,
    tpos: i64,
    origin: &[i64],
    kernel: &dyn MultiKernel,
    reads: &mut [f64],
    out: &mut [f64],
    j_buf: &mut [i64],
) {
    let (n, q, w) = (chain.n, chain.q, lds.width());
    let base = tpos * chain.chain_step;
    for i in 0..chain.tile_points {
        for k in 0..n {
            j_buf[k] = origin[k] + chain.j_off[i * n + k];
        }
        let vals = lds.values();
        for dq in 0..q {
            let cell = (base + chain.src_rel[i * q + dq]) as usize;
            reads[dq * w..(dq + 1) * w].copy_from_slice(&vals[cell * w..(cell + 1) * w]);
        }
        kernel.compute(j_buf, reads, out);
        let cell = (base + chain.dst[i]) as usize;
        lds.values_mut()[cell * w..(cell + 1) * w].copy_from_slice(out);
    }
}

/// Boundary-tile compute loop: same precomputed indices, but clamped by the
/// original iteration-space inequalities, with out-of-space reads served by
/// the kernel's initial values. Returns the number of in-space iterations.
#[allow(clippy::too_many_arguments)]
pub fn compute_tile_clamped(
    chain: &CompiledChain,
    lds: &mut Lds,
    tpos: i64,
    origin: &[i64],
    kernel: &dyn MultiKernel,
    space: &Polyhedron,
    deps: &IMat,
    reads: &mut [f64],
    out: &mut [f64],
    j_buf: &mut [i64],
    src_buf: &mut [i64],
) -> u64 {
    let (n, q, w) = (chain.n, chain.q, lds.width());
    let base = tpos * chain.chain_step;
    let mut iters = 0u64;
    for i in 0..chain.tile_points {
        for k in 0..n {
            j_buf[k] = origin[k] + chain.j_off[i * n + k];
        }
        if !space.contains(j_buf) {
            continue;
        }
        iters += 1;
        for dq in 0..q {
            for k in 0..n {
                src_buf[k] = j_buf[k] - deps[(k, dq)];
            }
            if space.contains(src_buf) {
                let cell = (base + chain.src_rel[i * q + dq]) as usize;
                reads[dq * w..(dq + 1) * w]
                    .copy_from_slice(&lds.values()[cell * w..(cell + 1) * w]);
            } else {
                kernel.initial(src_buf, &mut reads[dq * w..(dq + 1) * w]);
            }
        }
        kernel.compute(j_buf, reads, out);
        let cell = (base + chain.dst[i]) as usize;
        lds.values_mut()[cell * w..(cell + 1) * w].copy_from_slice(out);
    }
    iters
}

/// [`compute_tile_fast`] restricted to a point subset (ascending walk-order
/// indices): the overlapped strategy's boundary and interior passes.
#[allow(clippy::too_many_arguments)]
pub fn compute_tile_fast_subset(
    chain: &CompiledChain,
    lds: &mut Lds,
    tpos: i64,
    origin: &[i64],
    kernel: &dyn MultiKernel,
    reads: &mut [f64],
    out: &mut [f64],
    j_buf: &mut [i64],
    subset: &[u32],
) {
    let (n, q, w) = (chain.n, chain.q, lds.width());
    let base = tpos * chain.chain_step;
    for &i in subset {
        let i = i as usize;
        for k in 0..n {
            j_buf[k] = origin[k] + chain.j_off[i * n + k];
        }
        let vals = lds.values();
        for dq in 0..q {
            let cell = (base + chain.src_rel[i * q + dq]) as usize;
            reads[dq * w..(dq + 1) * w].copy_from_slice(&vals[cell * w..(cell + 1) * w]);
        }
        kernel.compute(j_buf, reads, out);
        let cell = (base + chain.dst[i]) as usize;
        lds.values_mut()[cell * w..(cell + 1) * w].copy_from_slice(out);
    }
}

/// [`compute_tile_clamped`] restricted to a point subset. Returns the
/// number of in-space iterations executed.
#[allow(clippy::too_many_arguments)]
pub fn compute_tile_clamped_subset(
    chain: &CompiledChain,
    lds: &mut Lds,
    tpos: i64,
    origin: &[i64],
    kernel: &dyn MultiKernel,
    space: &Polyhedron,
    deps: &IMat,
    reads: &mut [f64],
    out: &mut [f64],
    j_buf: &mut [i64],
    src_buf: &mut [i64],
    subset: &[u32],
) -> u64 {
    let (n, q, w) = (chain.n, chain.q, lds.width());
    let base = tpos * chain.chain_step;
    let mut iters = 0u64;
    for &i in subset {
        let i = i as usize;
        for k in 0..n {
            j_buf[k] = origin[k] + chain.j_off[i * n + k];
        }
        if !space.contains(j_buf) {
            continue;
        }
        iters += 1;
        for dq in 0..q {
            for k in 0..n {
                src_buf[k] = j_buf[k] - deps[(k, dq)];
            }
            if space.contains(src_buf) {
                let cell = (base + chain.src_rel[i * q + dq]) as usize;
                reads[dq * w..(dq + 1) * w]
                    .copy_from_slice(&lds.values()[cell * w..(cell + 1) * w]);
            } else {
                kernel.initial(src_buf, &mut reads[dq * w..(dq + 1) * w]);
            }
        }
        kernel.compute(j_buf, reads, out);
        let cell = (base + chain.dst[i]) as usize;
        lds.values_mut()[cell * w..(cell + 1) * w].copy_from_slice(out);
    }
    iters
}

/// Count the in-space points of a subset of a tile's TTIS walk without
/// touching any data — the timing-only path of the overlapped strategy.
pub fn count_in_space_subset(
    chain: &CompiledChain,
    origin: &[i64],
    space: &Polyhedron,
    subset: &[u32],
    j_buf: &mut [i64],
) -> u64 {
    let n = chain.n;
    let mut iters = 0u64;
    for &i in subset {
        let i = i as usize;
        for k in 0..n {
            j_buf[k] = origin[k] + chain.j_off[i * n + k];
        }
        if space.contains(j_buf) {
            iters += 1;
        }
    }
    iters
}

/// Fill `payload` with the pack region of processor dependence `dm_idx` at
/// chain position `tpos` — a dense index-list copy.
pub fn pack_region(
    chain: &CompiledChain,
    lds: &Lds,
    tpos: i64,
    dm_idx: usize,
    payload: &mut [f64],
) {
    let w = lds.width();
    let base = tpos * chain.chain_step;
    let vals = lds.values();
    for (idx, &rel) in chain.pack_rel[dm_idx].iter().enumerate() {
        let cell = (base + rel) as usize;
        payload[idx * w..(idx + 1) * w].copy_from_slice(&vals[cell * w..(cell + 1) * w]);
    }
}

/// Scatter a received `payload` into the halo cells of tile dependence
/// `ds_idx` at chain position `tpos`, dropping [`SKIP`] cells.
pub fn unpack_region(
    chain: &CompiledChain,
    lds: &mut Lds,
    tpos: i64,
    ds_idx: usize,
    payload: &[f64],
) {
    let w = lds.width();
    let base = tpos * chain.chain_step;
    let list = &chain.unpack_rel[ds_idx];
    debug_assert_eq!(list.len() * w, payload.len(), "unpack count mismatch");
    let vals = lds.values_mut();
    for (idx, &rel) in list.iter().enumerate() {
        if rel == SKIP {
            continue;
        }
        let cell = (base + rel) as usize;
        vals[cell * w..(cell + 1) * w].copy_from_slice(&payload[idx * w..(idx + 1) * w]);
    }
}

/// Single-pass gather of an interior tile's owned cells into the global
/// data space: bulk cell copies through the precomputed relative offsets,
/// no re-traversal and no per-point vectors.
pub fn gather_tile_fast(
    chain: &CompiledChain,
    lds: &Lds,
    tpos: i64,
    origin: &[i64],
    ds: &mut DataSpace,
) {
    let w = lds.width();
    debug_assert_eq!(ds.width(), w);
    let base = tpos * chain.chain_step;
    let gbase = ds.flat_cell_signed(origin);
    let vals = lds.values();
    for i in 0..chain.tile_points {
        let src = (base + chain.dst[i]) as usize;
        let cell = (gbase + chain.gather_rel[i]) as usize;
        ds.write_cell(cell, &vals[src * w..(src + 1) * w]);
    }
}

#[cfg(test)]
mod tests {
    use crate::plan::ParallelPlan;
    use tilecc_linalg::{RMat, Rational};
    use tilecc_loopnest::kernels;
    use tilecc_tiling::TilingTransform;

    /// xorshift64* — the same generator the fuzz harness uses, so failures
    /// reproduce from the printed seed alone.
    struct G(u64);
    impl G {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
        fn range(&mut self, lo: i64, hi: i64) -> i64 {
            lo + (self.next() % (hi - lo + 1) as u64) as i64
        }
    }

    /// The boundary/interior split must partition the tile's TTIS points:
    /// no overlap, no gap, pack-region seeds on the boundary side, the
    /// boundary predecessor-closed under every `d'` column (so the slab
    /// never reads an interior point), and the two in-space subset counts
    /// summing to exactly `tile_iterations` on every tile — across random
    /// non-rectangular tilings of all three paper kernels.
    #[test]
    fn split_partitions_ttis_points_across_random_tilings() {
        let mut g = G(0x5EED_CAFE);
        let mut valid = 0usize;
        let mut nonrect = 0usize;
        let mut with_interior = 0usize;
        for case in 0..100 {
            let which = g.range(0, 2);
            let alg = match which {
                0 => kernels::sor_skewed(6, 9, 1.1),
                1 => kernels::jacobi_skewed(5, 7, 6),
                _ => kernels::adi(6, 8),
            };
            let n = alg.nest.dim();
            let fs: Vec<i64> = (0..n).map(|_| g.range(2, 4)).collect();
            let (x, y, z) = (fs[0], fs[1], fs[2]);
            // Half the cases draw from the paper's non-rectangular tiling
            // families (§4) with random factors; the rest perturb a random
            // lower-triangular H (most die in validation — that's fine,
            // the survivors add shape diversity).
            let (h, offdiag) = if g.next().is_multiple_of(2) {
                let shape = g.range(0, 2);
                let h = match (which, shape) {
                    // SOR H_nr family: skew row z against row x.
                    (0, _) => RMat::from_fractions(&[
                        &[(1, x), (0, 1), (0, 1)],
                        &[(0, 1), (1, y), (0, 1)],
                        &[(-1, z), (0, 1), (1, z)],
                    ]),
                    // Jacobi H_nr: skew row x against row y.
                    (1, _) => RMat::from_fractions(&[
                        &[(1, x), (-1, 2 * x), (0, 1)],
                        &[(0, 1), (1, y), (0, 1)],
                        &[(0, 1), (0, 1), (1, z)],
                    ]),
                    // ADI H_nr1 / H_nr2 / H_nr3.
                    (_, 0) => RMat::from_fractions(&[
                        &[(1, x), (-1, x), (0, 1)],
                        &[(0, 1), (1, y), (0, 1)],
                        &[(0, 1), (0, 1), (1, z)],
                    ]),
                    (_, 1) => RMat::from_fractions(&[
                        &[(1, x), (0, 1), (-1, x)],
                        &[(0, 1), (1, y), (0, 1)],
                        &[(0, 1), (0, 1), (1, z)],
                    ]),
                    (_, _) => RMat::from_fractions(&[
                        &[(1, x), (-1, x), (-1, x)],
                        &[(0, 1), (1, y), (0, 1)],
                        &[(0, 1), (0, 1), (1, z)],
                    ]),
                };
                (h, true)
            } else {
                let mut offdiag = false;
                let mut rows: Vec<Vec<Rational>> = Vec::new();
                for i in 0..n {
                    let mut row = vec![Rational::ZERO; n];
                    row[i] = Rational::new(1, fs[i] as i128);
                    for cell in row.iter_mut().take(i) {
                        if g.next().is_multiple_of(2) {
                            let s = g.range(1, 2) * 2;
                            *cell = Rational::new(-1, (fs[i] * s) as i128);
                            offdiag = true;
                        }
                    }
                    rows.push(row);
                }
                (RMat::from_fn(n, n, |i, j| rows[i][j]), offdiag)
            };
            let Ok(t) = TilingTransform::new(h) else {
                continue;
            };
            if t.validate_for(alg.nest.deps()).is_err() {
                continue;
            }
            let m = (g.next() % n as u64) as usize;
            let Ok(plan) = ParallelPlan::new(alg, t, Some(m)) else {
                continue;
            };
            valid += 1;
            if offdiag {
                nonrect += 1;
            }

            let tr = plan.tiled.transform();
            let v = tr.v();
            let lat = tr.lattice();
            let zero = vec![0i64; n];
            let mut coords: Vec<Vec<i64>> = Vec::new();
            lat.for_each_in_box(&zero, v, |jp| coords.push(jp.to_vec()));
            let index_of: std::collections::BTreeMap<&[i64], usize> = coords
                .iter()
                .enumerate()
                .map(|(i, jp)| (jp.as_slice(), i))
                .collect();

            let mut lens = std::collections::BTreeSet::new();
            for &(lo_t, hi_t) in &plan.dist.chains {
                lens.insert(hi_t - lo_t + 1);
            }
            for &len in &lens {
                let chain = plan.compiled_for(len);
                assert_eq!(chain.tile_points, coords.len(), "case {case}");

                // Partition: each side strictly ascending, union complete.
                let mut side = vec![None; chain.tile_points];
                for (order, tag) in [
                    (&chain.boundary_order, true),
                    (&chain.interior_order, false),
                ] {
                    assert!(order.windows(2).all(|w| w[0] < w[1]), "case {case}");
                    for &i in order.iter() {
                        assert!(
                            side[i as usize].replace(tag).is_none(),
                            "case {case}: point {i} on both sides"
                        );
                    }
                }
                assert!(
                    side.iter().all(Option::is_some),
                    "case {case}: split leaves a gap"
                );

                // Pack-region seeds are boundary points.
                for dm in &plan.comm.proc_deps {
                    let lo = plan.comm.region_lo(dm, v);
                    for (i, jp) in coords.iter().enumerate() {
                        if jp.iter().zip(&lo).all(|(&x, &l)| x >= l) {
                            assert_eq!(
                                side[i],
                                Some(true),
                                "case {case}: region point {jp:?} not in slab"
                            );
                        }
                    }
                }

                // Predecessor-closed: a slab point's intra-tile reads are
                // slab points, so the interior never feeds a send.
                let q = plan.comm.d_prime.cols();
                let mut pred = vec![0i64; n];
                for &i in chain.boundary_order.iter() {
                    for dq in 0..q {
                        for k in 0..n {
                            pred[k] = coords[i as usize][k] - plan.comm.d_prime[(k, dq)];
                        }
                        if let Some(&p) = index_of.get(pred.as_slice()) {
                            assert_eq!(
                                side[p],
                                Some(true),
                                "case {case}: slab reads interior point {pred:?}"
                            );
                        }
                    }
                }
                if !chain.interior_order.is_empty() {
                    with_interior += 1;
                }
            }

            // In-space subset counts partition every tile's iterations.
            let mut j_buf = vec![0i64; n];
            let space = plan.tiled.space();
            if let Some(&(lo_t, hi_t)) = plan.dist.chains.first() {
                // Per-tile counts are chain-length independent.
                let chain = plan.compiled_for(hi_t - lo_t + 1);
                for tile in plan.tiled.tiles() {
                    let origin = super::tile_origin(tr, &tile);
                    let b = super::count_in_space_subset(
                        chain,
                        &origin,
                        space,
                        &chain.boundary_order,
                        &mut j_buf,
                    );
                    let i = super::count_in_space_subset(
                        chain,
                        &origin,
                        space,
                        &chain.interior_order,
                        &mut j_buf,
                    );
                    let expect = plan.tiled.tile_iterations(&tile).count() as u64;
                    assert_eq!(b + i, expect, "case {case}: tile {tile:?}");
                }
            }
        }
        assert!(valid >= 10, "only {valid} valid sampled tilings");
        assert!(nonrect >= 5, "only {nonrect} non-rectangular tilings");
        assert!(
            with_interior >= 1,
            "no sampled tiling produced a private interior"
        );
    }
}
