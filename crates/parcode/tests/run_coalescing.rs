//! Run-descriptor soundness: the plan-time affine runs of a
//! [`CompiledChain`] — pack, unpack, gather, and compute — must exactly
//! reconstruct the per-index lists they were factored from, cover every
//! non-SKIP position exactly once, and never claim a batch width the
//! dependence lags don't permit. Checked on the paper's six workloads and
//! on a seeded corpus of random convex (cut) spaces under random
//! rectangular and tiling-cone non-rectangular tilings — the same
//! generator family as the fuzz harness, so failures reproduce from the
//! seed in the assertion message.

use std::sync::Arc;
use tilecc_linalg::{IMat, RMat, Rational};
use tilecc_loopnest::{kernels, Algorithm, Kernel, LoopNest};
use tilecc_parcode::compiled::{
    coalesce_runs, CompiledChain, ComputeRun, IndexRun, CACHE_BLOCK, MIN_BATCH, SKIP,
};
use tilecc_parcode::ParallelPlan;
use tilecc_polytope::{Constraint, Polyhedron};
use tilecc_tiling::{tiling_cone_rays, TilingTransform};

/// xorshift64* — the fuzz harness's generator, for seed-reproducible cases.
struct G(u64);
impl G {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % ((hi - lo + 1) as u64)) as i64
    }
}

struct K;
impl Kernel for K {
    fn compute(&self, j: &[i64], reads: &[f64]) -> f64 {
        let mut acc = 0.125 * (j[0] % 5) as f64;
        for (i, r) in reads.iter().enumerate() {
            acc += (0.2 + 0.1 * i as f64) * r;
        }
        acc
    }
    fn initial(&self, j: &[i64]) -> f64 {
        ((j.iter().sum::<i64>()).rem_euclid(97)) as f64 / 97.0
    }
}

/// Index runs must be in position order, cover every non-[`SKIP`] position
/// exactly once, never cover a SKIP, and reconstruct the covered cells as
/// `list[at] + t·step`. Returns the number of SKIP positions seen.
fn check_index_runs(list: &[i64], runs: &[IndexRun], ctx: &str) -> usize {
    let mut covered = vec![false; list.len()];
    let mut last_end = 0usize;
    for r in runs {
        let (at, len) = (r.at as usize, r.len as usize);
        assert!(len >= 1, "{ctx}: empty run");
        assert!(at >= last_end, "{ctx}: runs overlap or out of order");
        last_end = at + len;
        assert!(last_end <= list.len(), "{ctx}: run past end of list");
        for t in 0..len {
            assert_ne!(list[at + t], SKIP, "{ctx}: run covers a SKIP position");
            assert_eq!(
                list[at + t],
                list[at] + t as i64 * r.step,
                "{ctx}: cell reconstruction at position {}",
                at + t
            );
            covered[at + t] = true;
        }
    }
    let mut skips = 0usize;
    for (i, &c) in covered.iter().enumerate() {
        if list[i] == SKIP {
            skips += 1;
        } else {
            assert!(c, "{ctx}: non-SKIP position {i} left uncovered");
        }
    }
    skips
}

/// Compute runs must tile the walk-index sequence exactly (in order), hold
/// their affine invariants point-to-point, and bound `batch` by every
/// positive dependence lag and by [`CACHE_BLOCK`].
fn check_compute_runs(indices: &[u32], runs: &[ComputeRun], chain: &CompiledChain, ctx: &str) {
    let (n, q) = (chain.n, chain.q);
    let flat: Vec<u32> = runs
        .iter()
        .flat_map(|r| (0..r.len).map(move |t| r.i0 + t))
        .collect();
    assert_eq!(flat, indices, "{ctx}: runs do not tile the walk sequence");
    for r in runs {
        let i0 = r.i0 as usize;
        assert_eq!(r.dj.len(), n, "{ctx}: dj dimension");
        for t in 1..r.len as usize {
            let (a, b) = (i0 + t - 1, i0 + t);
            assert_eq!(chain.dst[b], chain.dst[a] + 1, "{ctx}: dst not unit-stride");
            for dq in 0..q {
                assert_eq!(
                    chain.src_rel[b * q + dq],
                    chain.src_rel[a * q + dq] + 1,
                    "{ctx}: src_rel[{dq}] not unit-stride"
                );
            }
            for k in 0..n {
                assert_eq!(
                    chain.j_off[b * n + k] - chain.j_off[a * n + k],
                    r.dj[k],
                    "{ctx}: j_off does not advance by dj"
                );
            }
        }
        assert!(
            r.batch as usize <= CACHE_BLOCK,
            "{ctx}: batch exceeds cache block"
        );
        assert!(
            r.batch == 0 || r.batch >= MIN_BATCH,
            "{ctx}: batch below the dispatch floor"
        );
        for dq in 0..q {
            let lag = chain.dst[i0] - chain.src_rel[i0 * q + dq];
            assert!(lag >= 0, "{ctx}: negative dependence lag");
            if lag >= 1 && r.batch > 0 {
                assert!(
                    i64::from(r.batch) <= lag,
                    "{ctx}: batch {} exceeds lag {lag} of dependence {dq}",
                    r.batch
                );
            }
        }
    }
}

/// Every run family of every distinct chain of `plan` reconstructs its
/// source lists. Returns the number of SKIP positions seen in unpack lists.
fn check_plan(plan: &ParallelPlan, ctx: &str) -> usize {
    let mut skips = 0usize;
    let mut lens = std::collections::BTreeSet::new();
    for &(lo_t, hi_t) in &plan.dist.chains {
        lens.insert(hi_t - lo_t + 1);
    }
    for len in lens {
        let chain = plan.compiled_for(len);
        for (dm, list) in chain.pack_rel.iter().enumerate() {
            let s = check_index_runs(list, &chain.pack_runs[dm], &format!("{ctx} pack[{dm}]"));
            assert_eq!(s, 0, "{ctx}: pack list contains SKIP");
        }
        for (ds, list) in chain.unpack_rel.iter().enumerate() {
            skips += check_index_runs(list, &chain.unpack_runs[ds], &format!("{ctx} unpack[{ds}]"));
        }
        // The gather's joint runs are index runs over both lists at once:
        // walk positions split whenever either list breaks stride.
        let walk: Vec<u32> = (0..chain.tile_points as u32).collect();
        let mut gat = 0usize;
        for r in &chain.gather_runs {
            let (at, len) = (r.at as usize, r.len as usize);
            assert_eq!(at, gat, "{ctx}: gather runs leave a gap");
            gat = at + len;
            for t in 0..len {
                assert_eq!(
                    chain.dst[at + t],
                    chain.dst[at] + t as i64 * r.src_step,
                    "{ctx}: gather source reconstruction"
                );
                assert_eq!(
                    chain.gather_rel[at + t],
                    chain.gather_rel[at] + t as i64 * r.dst_step,
                    "{ctx}: gather target reconstruction"
                );
            }
        }
        assert_eq!(gat, chain.tile_points, "{ctx}: gather runs incomplete");
        check_compute_runs(&walk, &chain.compute_runs, chain, &format!("{ctx} walk"));
        check_compute_runs(
            &chain.boundary_order,
            &chain.boundary_runs,
            chain,
            &format!("{ctx} boundary"),
        );
        check_compute_runs(
            &chain.interior_order,
            &chain.interior_runs,
            chain,
            &format!("{ctx} interior"),
        );
    }
    skips
}

/// [`coalesce_runs`] on random lists seeded with genuine affine stretches
/// and SKIP sentinels: reconstruction, coverage, and SKIP splitting.
#[test]
fn coalesce_reconstructs_random_lists_with_skips() {
    let mut g = G(0xC0A1_E5CE);
    let mut saw_skip_split = 0usize;
    for case in 0..500 {
        let mut list: Vec<i64> = Vec::new();
        for _ in 0..g.range(1, 8) {
            match g.range(0, 3) {
                0 => list.push(SKIP),
                1 => list.push(g.range(-50, 50)),
                _ => {
                    // An affine stretch — the thing worth coalescing.
                    let start = g.range(-50, 50);
                    let step = g.range(-3, 3);
                    for t in 0..g.range(2, 12) {
                        list.push(start + t * step);
                    }
                }
            }
        }
        let runs = coalesce_runs(&list);
        let skips = check_index_runs(&list, &runs, &format!("case {case}"));
        if skips > 0 && runs.len() > 1 {
            saw_skip_split += 1;
        }
    }
    assert!(
        saw_skip_split >= 50,
        "corpus never exercised SKIP-split runs ({saw_skip_split})"
    );
}

/// Every run family of the six paper workloads reconstructs its lists.
#[test]
fn paper_workload_runs_reconstruct_their_lists() {
    let nr = RMat::from_fractions(&[
        &[(1, 2), (0, 1), (0, 1)],
        &[(0, 1), (1, 3), (0, 1)],
        &[(-1, 4), (0, 1), (1, 4)],
    ]);
    let plans = vec![
        (
            "sor_rect",
            ParallelPlan::new(
                kernels::sor_skewed(10, 14, 1.1),
                TilingTransform::rectangular(&[2, 3, 4]).unwrap(),
                Some(2),
            )
            .unwrap(),
        ),
        (
            "sor_nr",
            ParallelPlan::new(
                kernels::sor_skewed(10, 14, 1.1),
                TilingTransform::new(nr).unwrap(),
                Some(2),
            )
            .unwrap(),
        ),
        (
            "jacobi_rect",
            ParallelPlan::new(
                kernels::jacobi_skewed(8, 12, 12),
                TilingTransform::rectangular(&[2, 4, 4]).unwrap(),
                Some(1),
            )
            .unwrap(),
        ),
        (
            "adi_rect",
            ParallelPlan::new(
                kernels::adi(8, 12),
                TilingTransform::rectangular(&[2, 4, 4]).unwrap(),
                Some(0),
            )
            .unwrap(),
        ),
        (
            "adi_paper",
            ParallelPlan::new(
                kernels::adi_paper(8, 15),
                TilingTransform::rectangular(&[3, 5, 5]).unwrap(),
                Some(1),
            )
            .unwrap(),
        ),
    ];
    let mut batched_runs = 0usize;
    for (name, plan) in &plans {
        check_plan(plan, name);
        let (lo_t, hi_t) = plan.dist.chains[0];
        let chain = plan.compiled_for(hi_t - lo_t + 1);
        batched_runs += chain.compute_runs.iter().filter(|r| r.batch > 0).count();
    }
    assert!(
        batched_runs > 0,
        "no paper workload produced a batched compute run"
    );
}

/// Random convex cut spaces, random uniform dependences, random
/// rectangular and tiling-cone tilings: the run descriptors of every
/// surviving plan reconstruct their per-index lists, SKIP splits included.
#[test]
fn random_tilings_and_cut_spaces_reconstruct_their_lists() {
    let seed = 0x5EED_0007u64;
    let mut g = G(seed);
    let mut valid = 0usize;
    let mut cone_cases = 0usize;
    let mut cut_cases = 0usize;
    let mut skip_positions = 0usize;
    for case in 0..120 {
        let n = 3usize;
        let ext: Vec<i64> = (0..n).map(|_| g.range(4, 9)).collect();
        let lo = vec![1i64; n];
        let mut space = Polyhedron::from_box(&lo, &ext);
        let ncuts = g.range(0, 2);
        let mut cut = false;
        for _ in 0..ncuts {
            let coeffs: Vec<i64> = (0..n).map(|_| g.range(-1, 1)).collect();
            if coeffs.iter().all(|&c| c == 0) {
                continue;
            }
            let slack = g.range(0, 8);
            let mid: i64 = coeffs
                .iter()
                .zip(&ext)
                .map(|(&c, &e)| c * ((1 + e) / 2))
                .sum();
            space.add(Constraint::new(coeffs, -mid + slack));
            cut = true;
        }
        let q = g.range(2, 4) as usize;
        let mut deps = IMat::zeros(n, q);
        for dq in 0..q {
            loop {
                let c: Vec<i64> = (0..n).map(|_| g.range(0, 2)).collect();
                if tilecc_linalg::vecops::is_lex_positive(&c) {
                    for k in 0..n {
                        deps[(k, dq)] = c[k];
                    }
                    break;
                }
            }
        }
        let factors: Vec<i64> = (0..n).map(|_| g.range(2, 4)).collect();
        let use_cone = g.next().is_multiple_of(2);
        let m = (g.next() % n as u64) as usize;
        let h = if use_cone {
            let rays = tiling_cone_rays(&deps);
            if rays.len() < n {
                continue;
            }
            let mut chosen: Vec<Vec<i64>> = vec![];
            for ray in &rays {
                let mut cand = chosen.clone();
                cand.push(ray.clone());
                let ok = cand.len() < n || {
                    let mut sq = IMat::zeros(n, n);
                    for (i, r) in cand.iter().enumerate() {
                        for k in 0..n {
                            sq[(i, k)] = r[k];
                        }
                    }
                    sq.det() != 0
                };
                if ok {
                    chosen = cand;
                }
                if chosen.len() == n {
                    break;
                }
            }
            if chosen.len() < n {
                continue;
            }
            RMat::from_fn(n, n, |i, j| {
                Rational::new(chosen[i][j] as i128, factors[i] as i128)
            })
        } else {
            RMat::from_fn(n, n, |i, j| {
                if i == j {
                    Rational::new(1, factors[i] as i128)
                } else {
                    Rational::ZERO
                }
            })
        };
        let Ok(t) = TilingTransform::new(h) else {
            continue;
        };
        if t.validate_for(&deps).is_err() {
            continue;
        }
        let alg = Algorithm::new("p", LoopNest::new(space, deps), Arc::new(K));
        let Ok(plan) = ParallelPlan::new(alg, t, Some(m)) else {
            continue;
        };
        valid += 1;
        if use_cone {
            cone_cases += 1;
        }
        if cut {
            cut_cases += 1;
        }
        skip_positions += check_plan(&plan, &format!("seed {seed:#x} case {case}"));
    }
    assert!(valid >= 10, "only {valid} valid sampled plans");
    assert!(cone_cases >= 3, "only {cone_cases} tiling-cone plans");
    assert!(cut_cases >= 3, "only {cut_cases} cut-space plans");
    assert!(
        skip_positions > 0,
        "corpus never produced a SKIP unpack position"
    );
}
