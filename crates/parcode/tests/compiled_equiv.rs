//! Compiled vs. reference execution equivalence: the flat-index path must
//! reproduce the per-point reference path bitwise, with identical makespans
//! and message traffic, on the paper's SOR/Jacobi/ADI tilings — plus the
//! traversal-count regression test for the gather phase.

use std::sync::Arc;
use tilecc_cluster::{EngineOptions, MachineModel};
use tilecc_linalg::RMat;
use tilecc_loopnest::kernels;
use tilecc_parcode::{execute_strategy, ExecMode, ExecStrategy, ParallelPlan};
use tilecc_tiling::TilingTransform;

fn plans() -> Vec<(&'static str, ParallelPlan)> {
    let sor_nr = RMat::from_fractions(&[
        &[(1, 2), (0, 1), (0, 1)],
        &[(0, 1), (1, 3), (0, 1)],
        &[(-1, 4), (0, 1), (1, 4)],
    ]);
    // The paper's Jacobi non-rectangular tiling (§4.2) with x=2, y=z=4.
    let jacobi_nr = RMat::from_fractions(&[
        &[(1, 2), (-1, 4), (0, 1)],
        &[(0, 1), (1, 4), (0, 1)],
        &[(0, 1), (0, 1), (1, 4)],
    ]);
    vec![
        (
            "sor_rect",
            ParallelPlan::new(
                kernels::sor_skewed(10, 14, 1.1),
                TilingTransform::rectangular(&[2, 3, 4]).unwrap(),
                Some(2),
            )
            .unwrap(),
        ),
        (
            "sor_nr",
            ParallelPlan::new(
                kernels::sor_skewed(10, 14, 1.1),
                TilingTransform::new(sor_nr).unwrap(),
                Some(2),
            )
            .unwrap(),
        ),
        (
            "jacobi_rect",
            ParallelPlan::new(
                kernels::jacobi_skewed(8, 12, 12),
                TilingTransform::rectangular(&[2, 4, 4]).unwrap(),
                Some(1),
            )
            .unwrap(),
        ),
        (
            "jacobi_nr",
            ParallelPlan::new(
                kernels::jacobi_skewed(8, 12, 12),
                TilingTransform::new(jacobi_nr).unwrap(),
                Some(1),
            )
            .unwrap(),
        ),
        (
            "adi_rect",
            ParallelPlan::new(
                kernels::adi(8, 12),
                TilingTransform::rectangular(&[2, 4, 4]).unwrap(),
                Some(0),
            )
            .unwrap(),
        ),
        (
            "adi_paper",
            ParallelPlan::new(
                kernels::adi_paper(8, 15),
                TilingTransform::rectangular(&[3, 5, 5]).unwrap(),
                Some(1),
            )
            .unwrap(),
        ),
    ]
}

fn run(plan: &Arc<ParallelPlan>, strategy: ExecStrategy) -> tilecc_parcode::ExecutionResult {
    execute_strategy(
        plan.clone(),
        MachineModel::fast_ethernet_p3(),
        ExecMode::Full,
        strategy,
        EngineOptions::default(),
    )
    .unwrap_or_else(|e| panic!("execution failed: {e}"))
}

#[test]
fn compiled_matches_reference_bitwise_with_identical_makespans() {
    for (name, plan) in plans() {
        let seq = plan.algorithm.execute_sequential();
        let total = plan.total_iterations();
        let plan = Arc::new(plan);
        let compiled = run(&plan, ExecStrategy::Compiled);
        let reference = run(&plan, ExecStrategy::Reference);
        assert_eq!(
            compiled.total_iterations as usize, total,
            "{name}: iteration conservation (compiled)"
        );
        assert_eq!(
            compiled.total_iterations, reference.total_iterations,
            "{name}: iteration counts differ"
        );
        assert_eq!(
            compiled.makespan(),
            reference.makespan(),
            "{name}: makespans differ"
        );
        assert_eq!(
            compiled.report.total_bytes(),
            reference.report.total_bytes(),
            "{name}: message traffic differs"
        );
        let cd = compiled.data.unwrap();
        let rd = reference.data.unwrap();
        assert_eq!(cd.diff(&rd), None, "{name}: compiled vs reference data");
        assert_eq!(seq.diff(&cd), None, "{name}: compiled vs sequential data");
    }
}

/// The gather-phase fix: the reference path walks every tile's TTIS twice
/// per `Full` run (compute + gather); the compiled path never traverses
/// interior tiles and walks boundary tiles exactly once (gather only).
#[test]
fn compiled_path_eliminates_duplicate_traversals() {
    for (name, plan) in plans() {
        let deps = plan.deps().clone();
        let tiles: Vec<Vec<i64>> = plan
            .tiled
            .tiles()
            .filter(|t| plan.tiled.tile_valid(t))
            .collect();
        let num_tiles = tiles.len() as u64;
        let boundary = tiles
            .iter()
            .filter(|t| !plan.tiled.tile_is_interior(t))
            .count() as u64;
        let interior_compute = tiles
            .iter()
            .filter(|t| plan.tiled.tile_is_compute_interior(t, &deps))
            .count() as u64;
        let plan = Arc::new(plan);

        let before = plan.tiled.traversal_count();
        let _ = run(&plan, ExecStrategy::Reference);
        let reference_walks = plan.tiled.traversal_count() - before;
        assert_eq!(
            reference_walks,
            2 * num_tiles,
            "{name}: reference path walks each tile twice (compute + gather)"
        );

        let before = plan.tiled.traversal_count();
        let _ = run(&plan, ExecStrategy::Compiled);
        let compiled_walks = plan.tiled.traversal_count() - before;
        assert_eq!(
            compiled_walks, boundary,
            "{name}: compiled path must walk only boundary tiles, once (gather)"
        );
        assert!(
            compiled_walks < reference_walks,
            "{name}: compiled path must traverse strictly less"
        );
        // The split is only worthwhile if some tiles actually take the
        // dense loop on these paper-sized problems.
        assert!(
            interior_compute > 0,
            "{name}: expected at least one compute-interior tile"
        );
    }
}

/// Timing-only mode must agree with both full-mode strategies on makespan
/// and traffic (addressing is real time; virtual time depends only on
/// iteration counts and message sizes).
#[test]
fn strategies_share_virtual_time_with_timing_only() {
    let (name, plan) = plans().remove(1); // sor_nr: non-trivial lattice
    let plan = Arc::new(plan);
    let timing = execute_strategy(
        plan.clone(),
        MachineModel::fast_ethernet_p3(),
        ExecMode::TimingOnly,
        ExecStrategy::Compiled,
        EngineOptions::default(),
    )
    .unwrap();
    let full = run(&plan, ExecStrategy::Compiled);
    assert_eq!(timing.makespan(), full.makespan(), "{name}");
    assert_eq!(
        timing.report.total_bytes(),
        full.report.total_bytes(),
        "{name}"
    );
    assert!(timing.data.is_none());
}
