//! The end-to-end compilation pipeline: algorithm + tiling matrix →
//! validated plan → SPMD execution on the cluster substrate → verified
//! results and simulated timings.

use std::sync::Arc;
use tilecc_cluster::{CommScheme, EngineOptions, MachineModel, MetricsRegistry, RunError};
use tilecc_linalg::RMat;
use tilecc_loopnest::{Algorithm, DataSpace};
use tilecc_parcode::{
    emit_c_mpi, execute, execute_backend, execute_opts, execute_strategy, Backend, ExecMode,
    ExecStrategy, ExecutionResult, ParallelPlan,
};
use tilecc_tiling::{TilingError, TilingTransform};

/// High-level driver for one (algorithm, tiling) pair.
pub struct Pipeline {
    plan: Arc<ParallelPlan>,
}

/// Summary of one parallel run.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Number of processors the plan distributed tiles over.
    pub procs: usize,
    /// Total iterations executed (equals `|J^n|`).
    pub iterations: u64,
    /// Simulated sequential time on the model.
    pub sequential_time: f64,
    /// Simulated parallel completion time.
    pub makespan: f64,
    /// `sequential_time / makespan`.
    pub speedup: f64,
    /// Total bytes sent across all ranks.
    pub bytes: u64,
    /// Total messages sent across all ranks.
    pub messages: u64,
    /// Whether the gathered result matched the sequential execution
    /// (`None` for timing-only runs).
    pub verified: Option<bool>,
    /// Transmission attempts repeated by the reliability layer (0 unless
    /// fault injection was enabled).
    pub retransmissions: u64,
    /// Messages discarded by receiver-side duplicate suppression.
    pub duplicates_suppressed: u64,
    /// Checkpoint restores performed across all ranks (0 unless a crash
    /// was recovered under a [`tilecc_cluster::threaded::RecoveryOptions`]
    /// policy).
    pub recoveries: u64,
    /// Virtual seconds charged to crash recovery across all ranks; the
    /// makespan minus each rank's share reproduces the fault-free clocks
    /// bitwise.
    pub recovery_time: f64,
    /// Per-rank final virtual clocks (feeds the observability
    /// [`tilecc_cluster::obs::RunReport`]).
    pub local_times: Vec<f64>,
}

impl Pipeline {
    /// Compile `algorithm` under the tiling matrix `h`, mapping along `m`
    /// (`None` = longest dimension).
    pub fn compile(algorithm: Algorithm, h: RMat, m: Option<usize>) -> Result<Self, TilingError> {
        let transform = TilingTransform::new(h)?;
        Self::compile_transform(algorithm, transform, m)
    }

    /// Compile with an already-built transformation.
    pub fn compile_transform(
        algorithm: Algorithm,
        transform: TilingTransform,
        m: Option<usize>,
    ) -> Result<Self, TilingError> {
        Self::compile_observed(algorithm, transform, m, None)
    }

    /// [`Pipeline::compile_transform`] recording plan-construction and
    /// chain-lowering spans into an observability registry.
    pub fn compile_observed(
        algorithm: Algorithm,
        transform: TilingTransform,
        m: Option<usize>,
        obs: Option<&MetricsRegistry>,
    ) -> Result<Self, TilingError> {
        let plan = ParallelPlan::new_observed(algorithm, transform, m, obs)?;
        Ok(Pipeline {
            plan: Arc::new(plan),
        })
    }

    /// The underlying plan.
    pub fn plan(&self) -> &Arc<ParallelPlan> {
        &self.plan
    }

    /// Number of processors.
    pub fn num_procs(&self) -> usize {
        self.plan.num_procs()
    }

    /// Run in timing-only mode: no values computed, exact virtual times.
    pub fn simulate(&self, model: MachineModel) -> RunSummary {
        let res = execute(self.plan.clone(), model, ExecMode::TimingOnly);
        self.summarize(&res, &model, None)
    }

    /// Timing-only run with an explicit communication scheme
    /// ([`CommScheme::Overlapped`] models the paper's future-work
    /// computation/communication overlapping).
    pub fn simulate_with(&self, model: MachineModel, scheme: CommScheme) -> RunSummary {
        let res =
            tilecc_parcode::execute_with(self.plan.clone(), model, ExecMode::TimingOnly, scheme);
        self.summarize(&res, &model, None)
    }

    /// Timing-only run with full engine options (fault injection, tracing,
    /// observability) — the fallible counterpart of [`Pipeline::simulate`].
    pub fn simulate_opts(
        &self,
        model: MachineModel,
        options: EngineOptions,
    ) -> Result<RunSummary, RunError> {
        let res = execute_opts(self.plan.clone(), model, ExecMode::TimingOnly, options)?;
        Ok(self.summarize(&res, &model, None))
    }

    /// Timing-only run under an explicit [`ExecStrategy`] —
    /// [`ExecStrategy::Overlapped`] computes each tile's boundary slab
    /// first, posts its sends on the NIC lane, and hides them behind the
    /// private interior.
    pub fn simulate_strategy(
        &self,
        model: MachineModel,
        strategy: ExecStrategy,
        options: EngineOptions,
    ) -> Result<RunSummary, RunError> {
        let res = execute_strategy(
            self.plan.clone(),
            model,
            ExecMode::TimingOnly,
            strategy,
            options,
        )?;
        Ok(self.summarize(&res, &model, None))
    }

    /// Timing-only run under an explicit cluster [`Backend`]
    /// ([`Backend::Tcp`] carries every message over real sockets; the
    /// virtual times are identical to the threaded backend's).
    pub fn simulate_backend(
        &self,
        model: MachineModel,
        strategy: ExecStrategy,
        backend: Backend,
        options: EngineOptions,
    ) -> Result<RunSummary, RunError> {
        let res = execute_backend(
            self.plan.clone(),
            model,
            ExecMode::TimingOnly,
            strategy,
            backend,
            options,
        )?;
        Ok(self.summarize(&res, &model, None))
    }

    /// Full run under an explicit [`ExecStrategy`], verified bitwise
    /// against the sequential reference execution.
    pub fn run_verified_strategy(
        &self,
        model: MachineModel,
        strategy: ExecStrategy,
        options: EngineOptions,
    ) -> Result<(RunSummary, DataSpace), RunError> {
        self.run_verified_backend(model, strategy, Backend::default(), options)
    }

    /// [`Pipeline::run_verified_strategy`] with an explicit cluster
    /// [`Backend`]: the gathered data must match the sequential reference
    /// bitwise no matter which substrate carried the messages.
    pub fn run_verified_backend(
        &self,
        model: MachineModel,
        strategy: ExecStrategy,
        backend: Backend,
        options: EngineOptions,
    ) -> Result<(RunSummary, DataSpace), RunError> {
        let res = execute_backend(
            self.plan.clone(),
            model,
            ExecMode::Full,
            strategy,
            backend,
            options,
        )?;
        let parallel = res.data.as_ref().expect("full mode returns data");
        let sequential = self.plan.algorithm.execute_sequential();
        let verified = sequential.diff(parallel).is_none();
        let summary = self.summarize(&res, &model, Some(verified));
        Ok((summary, res.data.unwrap()))
    }

    /// Run fully and verify the gathered data against the sequential
    /// reference execution (bitwise).
    ///
    /// # Panics
    /// Propagates failed runs as panics — [`Pipeline::run_verified_opts`]
    /// reports them as [`RunError`]s instead.
    pub fn run_verified(&self, model: MachineModel) -> (RunSummary, DataSpace) {
        self.run_verified_opts(model, EngineOptions::default())
            .unwrap_or_else(|e| panic!("pipeline run failed: {e}"))
    }

    /// [`Pipeline::run_verified`] with full engine options — the entry point
    /// for fault-injected runs: engine failures (a crashed rank, a deadlock,
    /// an unreachable peer) are reported as [`RunError`]s, and the summary
    /// carries the reliability layer's retransmission counters.
    pub fn run_verified_opts(
        &self,
        model: MachineModel,
        options: EngineOptions,
    ) -> Result<(RunSummary, DataSpace), RunError> {
        self.run_verified_strategy(model, ExecStrategy::default(), options)
    }

    /// Emit the C/MPI source for this plan.
    pub fn emit_c(&self, kernel_expr: &str) -> String {
        emit_c_mpi(&self.plan, kernel_expr)
    }

    fn summarize(
        &self,
        res: &ExecutionResult,
        model: &MachineModel,
        verified: Option<bool>,
    ) -> RunSummary {
        let sequential_time = model.compute_cost(res.total_iterations);
        let makespan = res.makespan();
        RunSummary {
            procs: self.plan.num_procs(),
            iterations: res.total_iterations,
            sequential_time,
            makespan,
            speedup: sequential_time / makespan,
            bytes: res.report.total_bytes(),
            messages: res.report.total_messages(),
            verified,
            retransmissions: res.report.total_retransmissions(),
            duplicates_suppressed: res.report.total_duplicates_suppressed(),
            recoveries: res.report.total_recoveries(),
            recovery_time: res.report.total_recovery_time(),
            local_times: res.report.local_times.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilecc_loopnest::kernels;

    #[test]
    fn pipeline_runs_and_verifies_sor() {
        let alg = kernels::sor_skewed(4, 6, 1.0);
        let h = RMat::from_fractions(&[
            &[(1, 2), (0, 1), (0, 1)],
            &[(0, 1), (1, 3), (0, 1)],
            &[(-1, 3), (0, 1), (1, 3)],
        ]);
        let pipe = Pipeline::compile(alg, h, Some(2)).unwrap();
        let (summary, _data) = pipe.run_verified(MachineModel::fast_ethernet_p3());
        assert_eq!(summary.verified, Some(true));
        assert_eq!(summary.iterations, 4 * 6 * 6);
        assert!(summary.speedup > 0.0);
        assert!(summary.makespan > 0.0);
    }

    #[test]
    fn simulate_reports_consistent_speedup() {
        let alg = kernels::adi(8, 12);
        let pipe = Pipeline::compile_transform(
            alg,
            tilecc_tiling::TilingTransform::rectangular(&[2, 6, 6]).unwrap(),
            Some(0),
        )
        .unwrap();
        let model = MachineModel::zero_comm(1e-6);
        let s = pipe.simulate(model);
        assert!(s.verified.is_none());
        assert!((s.sequential_time - 8.0 * 12.0 * 12.0 * 1e-6).abs() < 1e-12);
        // With zero communication cost, speedup cannot exceed proc count but
        // must show real parallelism for this wavefront.
        assert!(s.speedup > 1.0, "speedup = {}", s.speedup);
        assert!(s.speedup <= s.procs as f64 + 1e-9);
    }

    #[test]
    fn faulty_pipeline_still_verifies() {
        use tilecc_cluster::FaultPlan;
        let alg = kernels::sor_skewed(4, 6, 1.0);
        let pipe = Pipeline::compile_transform(
            alg,
            tilecc_tiling::TilingTransform::rectangular(&[2, 3, 3]).unwrap(),
            Some(2),
        )
        .unwrap();
        let options = EngineOptions {
            fault: Some(FaultPlan::chaos(11, 0.2)),
            ..EngineOptions::default()
        };
        let (summary, _) = pipe
            .run_verified_opts(MachineModel::fast_ethernet_p3(), options)
            .unwrap();
        assert_eq!(
            summary.verified,
            Some(true),
            "reliability layer must preserve results"
        );
        assert!(
            summary.retransmissions > 0,
            "drops must surface in the summary"
        );
    }

    #[test]
    fn overlapped_strategy_through_pipeline() {
        let alg = kernels::adi(6, 8);
        let pipe = Pipeline::compile_transform(
            alg,
            tilecc_tiling::TilingTransform::rectangular(&[2, 4, 4]).unwrap(),
            Some(0),
        )
        .unwrap();
        let model = MachineModel::fast_ethernet_p3();
        let (summary, _) = pipe
            .run_verified_strategy(model, ExecStrategy::Overlapped, EngineOptions::default())
            .unwrap();
        assert_eq!(summary.verified, Some(true));
        let blocking = pipe
            .simulate_strategy(model, ExecStrategy::Compiled, EngineOptions::default())
            .unwrap();
        let overlapped = pipe
            .simulate_strategy(model, ExecStrategy::Overlapped, EngineOptions::default())
            .unwrap();
        assert!(
            overlapped.makespan <= blocking.makespan + 1e-12,
            "overlapped {} vs blocking {}",
            overlapped.makespan,
            blocking.makespan
        );
        assert_eq!(overlapped.bytes, blocking.bytes);
        assert_eq!(overlapped.messages, blocking.messages);
    }

    #[test]
    fn emit_c_through_pipeline() {
        let alg = kernels::jacobi_skewed(3, 4, 4);
        let pipe = Pipeline::compile_transform(
            alg,
            tilecc_tiling::TilingTransform::rectangular(&[2, 3, 3]).unwrap(),
            Some(0),
        )
        .unwrap();
        let code = pipe.emit_c("0.25 * (a + b + c + d)");
        assert!(code.contains("MPI_Send"));
        assert!(code.contains("0.25 * (a + b + c + d)"));
    }
}
