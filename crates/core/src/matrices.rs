//! The exact tiling matrices of the paper's evaluation (§4.1–4.3),
//! parameterized by the tile factors `x`, `y`, `z`.

use tilecc_linalg::RMat;

/// Rectangular tiling `H_r = diag(1/x, 1/y, 1/z)` (all three algorithms).
pub fn rect(x: i64, y: i64, z: i64) -> RMat {
    RMat::from_fractions(&[
        &[(1, x), (0, 1), (0, 1)],
        &[(0, 1), (1, y), (0, 1)],
        &[(0, 1), (0, 1), (1, z)],
    ])
}

/// SOR rectangular tiling (alias of [`rect`], kept for symmetry).
pub fn sor_rect(x: i64, y: i64, z: i64) -> RMat {
    rect(x, y, z)
}

/// SOR non-rectangular tiling (§4.1):
/// `H_nr = [[1/x,0,0],[0,1/y,0],[−1/z,0,1/z]]` — rows parallel to the first
/// three tiling-cone rays.
pub fn sor_nr(x: i64, y: i64, z: i64) -> RMat {
    RMat::from_fractions(&[
        &[(1, x), (0, 1), (0, 1)],
        &[(0, 1), (1, y), (0, 1)],
        &[(-1, z), (0, 1), (1, z)],
    ])
}

/// Jacobi rectangular tiling (alias of [`rect`]).
pub fn jacobi_rect(x: i64, y: i64, z: i64) -> RMat {
    rect(x, y, z)
}

/// Jacobi non-rectangular tiling (§4.2):
/// `H_nr = [[1/x,−1/(2x),0],[0,1/y,0],[0,0,1/z]]`.
pub fn jacobi_nr(x: i64, y: i64, z: i64) -> RMat {
    RMat::from_fractions(&[
        &[(1, x), (-1, 2 * x), (0, 1)],
        &[(0, 1), (1, y), (0, 1)],
        &[(0, 1), (0, 1), (1, z)],
    ])
}

/// ADI rectangular tiling (alias of [`rect`]).
pub fn adi_rect(x: i64, y: i64, z: i64) -> RMat {
    rect(x, y, z)
}

/// ADI `H_nr1 = [[1/x,−1/x,0],[0,1/y,0],[0,0,1/z]]` (§4.3).
pub fn adi_nr1(x: i64, y: i64, z: i64) -> RMat {
    RMat::from_fractions(&[
        &[(1, x), (-1, x), (0, 1)],
        &[(0, 1), (1, y), (0, 1)],
        &[(0, 1), (0, 1), (1, z)],
    ])
}

/// ADI `H_nr2 = [[1/x,0,−1/x],[0,1/y,0],[0,0,1/z]]` (§4.3).
pub fn adi_nr2(x: i64, y: i64, z: i64) -> RMat {
    RMat::from_fractions(&[
        &[(1, x), (0, 1), (-1, x)],
        &[(0, 1), (1, y), (0, 1)],
        &[(0, 1), (0, 1), (1, z)],
    ])
}

/// ADI `H_nr3 = [[1/x,−1/x,−1/x],[0,1/y,0],[0,0,1/z]]` — the first row is
/// parallel to the tiling-cone ray `(1,−1,−1)` (§4.3).
pub fn adi_nr3(x: i64, y: i64, z: i64) -> RMat {
    RMat::from_fractions(&[
        &[(1, x), (-1, x), (-1, x)],
        &[(0, 1), (1, y), (0, 1)],
        &[(0, 1), (0, 1), (1, z)],
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilecc_linalg::{IMat, Rational};
    use tilecc_tiling::{in_tiling_cone, TilingTransform};

    #[test]
    fn all_matrices_share_tile_size() {
        // Equal factors ⇒ equal tile sizes (paper: 1/|det H| = xyz).
        let (x, y, z) = (4, 6, 10);
        for h in [
            rect(x, y, z),
            sor_nr(x, y, z),
            jacobi_nr(x, y, z),
            adi_nr1(x, y, z),
            adi_nr2(x, y, z),
            adi_nr3(x, y, z),
        ] {
            let t = TilingTransform::new(h).unwrap();
            assert_eq!(t.tile_size(), x * y * z);
        }
    }

    #[test]
    fn nr_rows_lie_in_the_tiling_cones() {
        // Every row of each non-rectangular H (scaled to integers) is inside
        // the respective algorithm's tiling cone.
        let sor_deps = IMat::from_rows(&[&[1, 0, 1, 1, 0], &[1, 1, 0, 1, 0], &[2, 0, 2, 1, 1]]);
        let jac_deps = IMat::from_rows(&[&[1, 1, 1, 1, 1], &[2, 0, 1, 1, 1], &[1, 1, 2, 0, 1]]);
        let adi_deps = IMat::from_rows(&[&[1, 1, 1], &[0, 1, 0], &[0, 0, 1]]);
        let check = |h: RMat, deps: &IMat| {
            let t = TilingTransform::new(h).unwrap();
            assert!(t.validate_for(deps).is_ok());
            for r in 0..3 {
                let v = t.v()[r];
                let row: Vec<i64> = (0..3)
                    .map(|c| (t.h()[(r, c)] * Rational::from_int(v)).to_integer())
                    .collect();
                assert!(in_tiling_cone(&row, deps), "row {row:?} outside cone");
            }
        };
        check(sor_nr(3, 4, 5), &sor_deps);
        check(jacobi_nr(3, 4, 5), &jac_deps);
        check(adi_nr1(3, 4, 5), &adi_deps);
        check(adi_nr2(3, 4, 5), &adi_deps);
        check(adi_nr3(3, 4, 5), &adi_deps);
        check(rect(3, 4, 5), &adi_deps);
    }
}
