//! Experiment drivers reproducing the paper's evaluation (§4): SOR, Jacobi
//! and ADI under rectangular and non-rectangular tilings of equal tile size,
//! communication volume and processor count.

use crate::analysis;
use crate::matrices;
use crate::pipeline::Pipeline;
use tilecc_cluster::MachineModel;
use tilecc_linalg::RMat;
use tilecc_loopnest::{kernels, Algorithm};

/// Tiling variant labels used across the experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Rectangular `H_r`.
    Rect,
    /// The per-algorithm non-rectangular tiling (`H_nr`).
    NonRect,
    /// ADI `H_nr1`.
    AdiNr1,
    /// ADI `H_nr2`.
    AdiNr2,
    /// ADI `H_nr3` (tiling-cone surface).
    AdiNr3,
}

impl Variant {
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Rect => "rect",
            Variant::NonRect => "non-rect",
            Variant::AdiNr1 => "nr1",
            Variant::AdiNr2 => "nr2",
            Variant::AdiNr3 => "nr3",
        }
    }
}

/// One measured point of a tile-size sweep.
#[derive(Clone, Debug)]
pub struct MeasuredPoint {
    pub variant: &'static str,
    /// Tile factors (x, y, z).
    pub factors: (i64, i64, i64),
    /// Tile size `x·y·z`.
    pub tile_size: i64,
    /// Processors used by the distribution.
    pub procs: usize,
    /// Simulated sequential time (s).
    pub sequential_time: f64,
    /// Simulated parallel completion time (s).
    pub makespan: f64,
    /// Speedup.
    pub speedup: f64,
    /// Analytic wavefront step count (paper's `t_r` / `t_nr` formulas).
    pub predicted_steps: f64,
    /// Total communication volume (bytes).
    pub bytes: u64,
}

/// Which of the three paper algorithms an experiment drives.
#[derive(Clone, Copy, Debug)]
pub enum Workload {
    /// SOR with skewed space sizes (M, N). Mapped along dimension 3 (`m=2`).
    Sor { m: i64, n: i64 },
    /// Jacobi with space sizes (T, I, J). Mapped along dimension 1 (`m=0`).
    Jacobi { t: i64, i: i64, j: i64 },
    /// ADI with space sizes (T, N). Mapped along dimension 1 (`m=0`).
    Adi { t: i64, n: i64 },
}

impl Workload {
    /// The skewed (tileable) algorithm instance.
    pub fn algorithm(&self) -> Algorithm {
        match *self {
            Workload::Sor { m, n } => kernels::sor_skewed(m, n, 1.1),
            Workload::Jacobi { t, i, j } => kernels::jacobi_skewed(t, i, j),
            Workload::Adi { t, n } => kernels::adi(t, n),
        }
    }

    /// The paper's mapping dimension for this workload.
    pub fn mapping_dim(&self) -> usize {
        match self {
            Workload::Sor { .. } => 2,
            Workload::Jacobi { .. } | Workload::Adi { .. } => 0,
        }
    }

    /// The tiling matrix of `variant` with factors `(x, y, z)`.
    pub fn tiling(&self, variant: Variant, x: i64, y: i64, z: i64) -> RMat {
        match (self, variant) {
            (_, Variant::Rect) => matrices::rect(x, y, z),
            (Workload::Sor { .. }, Variant::NonRect) => matrices::sor_nr(x, y, z),
            (Workload::Jacobi { .. }, Variant::NonRect) => matrices::jacobi_nr(x, y, z),
            (Workload::Adi { .. }, Variant::NonRect) => matrices::adi_nr3(x, y, z),
            (Workload::Adi { .. }, Variant::AdiNr1) => matrices::adi_nr1(x, y, z),
            (Workload::Adi { .. }, Variant::AdiNr2) => matrices::adi_nr2(x, y, z),
            (Workload::Adi { .. }, Variant::AdiNr3) => matrices::adi_nr3(x, y, z),
            (w, v) => panic!("variant {v:?} is not defined for workload {w:?}"),
        }
    }

    /// The paper's analytic wavefront step count for `variant`.
    pub fn predicted_steps(&self, variant: Variant, x: i64, y: i64, z: i64) -> f64 {
        match (*self, variant) {
            (Workload::Sor { m, n }, Variant::Rect) => analysis::sor_t_rect(m, n, x, y, z),
            (Workload::Sor { m, n }, Variant::NonRect) => analysis::sor_t_nr(m, n, x, y, z),
            (Workload::Jacobi { t, i, j }, Variant::Rect) => {
                analysis::jacobi_t_rect(t, i, j, x, y, z)
            }
            (Workload::Jacobi { t, i, j }, Variant::NonRect) => {
                analysis::jacobi_t_nr(t, i, j, x, y, z)
            }
            (Workload::Adi { t, n }, Variant::Rect) => analysis::adi_t_rect(t, n, x, y, z),
            (Workload::Adi { t, n }, Variant::AdiNr1) => analysis::adi_t_nr1(t, n, x, y, z),
            (Workload::Adi { t, n }, Variant::AdiNr2) => analysis::adi_t_nr2(t, n, x, y, z),
            (Workload::Adi { t, n }, Variant::AdiNr3 | Variant::NonRect) => {
                analysis::adi_t_nr3(t, n, x, y, z)
            }
            (w, v) => panic!("variant {v:?} is not defined for workload {w:?}"),
        }
    }

    /// A short label like `sor-M100-N200`.
    pub fn label(&self) -> String {
        match *self {
            Workload::Sor { m, n } => format!("SOR M={m} N={n}"),
            Workload::Jacobi { t, i, j } => format!("Jacobi T={t} I={i} J={j}"),
            Workload::Adi { t, n } => format!("ADI T={t} N={n}"),
        }
    }
}

/// Compile and simulate one (workload, variant, factors) point.
pub fn measure(
    workload: Workload,
    variant: Variant,
    (x, y, z): (i64, i64, i64),
    model: MachineModel,
) -> MeasuredPoint {
    let alg = workload.algorithm();
    let h = workload.tiling(variant, x, y, z);
    let pipe =
        Pipeline::compile(alg, h, Some(workload.mapping_dim())).expect("paper tilings are legal");
    let s = pipe.simulate(model);
    MeasuredPoint {
        variant: variant.label(),
        factors: (x, y, z),
        tile_size: x * y * z,
        procs: s.procs,
        sequential_time: s.sequential_time,
        makespan: s.makespan,
        speedup: s.speedup,
        predicted_steps: workload.predicted_steps(variant, x, y, z),
        bytes: s.bytes,
    }
}

/// Number of processors a (workload, variant, factors) plan distributes
/// over — used to choose grid factors hitting the paper's 16 processes.
pub fn probe_procs(workload: Workload, variant: Variant, (x, y, z): (i64, i64, i64)) -> usize {
    let alg = workload.algorithm();
    let h = workload.tiling(variant, x, y, z);
    Pipeline::compile(alg, h, Some(workload.mapping_dim()))
        .expect("paper tilings are legal")
        .num_procs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_small_sor_point_both_variants() {
        let model = MachineModel::fast_ethernet_p3();
        let w = Workload::Sor { m: 8, n: 8 };
        let rect = measure(w, Variant::Rect, (4, 4, 4), model);
        let nr = measure(w, Variant::NonRect, (4, 4, 4), model);
        assert_eq!(rect.procs, nr.procs, "same processor count by construction");
        assert_eq!(rect.sequential_time, nr.sequential_time);
        assert!(nr.predicted_steps < rect.predicted_steps);
        assert!(rect.speedup > 0.0 && nr.speedup > 0.0);
    }

    #[test]
    fn adi_variants_have_equal_comm_volume() {
        // Paper: all four ADI transformations have the same tile size,
        // communication volume, and processor count.
        let model = MachineModel::fast_ethernet_p3();
        let w = Workload::Adi { t: 8, n: 12 };
        let pts: Vec<MeasuredPoint> = [
            Variant::Rect,
            Variant::AdiNr1,
            Variant::AdiNr2,
            Variant::AdiNr3,
        ]
        .into_iter()
        .map(|v| measure(w, v, (2, 4, 4), model))
        .collect();
        for p in &pts[1..] {
            assert_eq!(p.procs, pts[0].procs);
            assert_eq!(p.tile_size, pts[0].tile_size);
        }
    }

    #[test]
    fn probe_procs_matches_measure() {
        let w = Workload::Jacobi { t: 6, i: 8, j: 8 };
        let procs = probe_procs(w, Variant::Rect, (3, 4, 4));
        let pt = measure(
            w,
            Variant::Rect,
            (3, 4, 4),
            MachineModel::fast_ethernet_p3(),
        );
        assert_eq!(procs, pt.procs);
    }
}
