//! # tilecc
//!
//! End-to-end Rust reproduction of *"Compiling Tiled Iteration Spaces for
//! Clusters"* (Goumas, Drosinos, Athanasaki, Koziris — IEEE CLUSTER 2002):
//! a complete framework that takes a perfectly nested loop with uniform
//! dependencies and a **general parallelepiped tiling transformation** and
//! generates data-parallel message-passing code for a cluster.
//!
//! ```
//! use tilecc::{Pipeline, matrices};
//! use tilecc_loopnest::kernels;
//! use tilecc_cluster::MachineModel;
//!
//! // Skewed SOR, non-rectangular tiling from the tiling cone (§4.1).
//! let alg = kernels::sor_skewed(4, 6, 1.1);
//! let pipe = Pipeline::compile(alg, matrices::sor_nr(2, 3, 3), Some(2)).unwrap();
//! let (summary, _data) = pipe.run_verified(MachineModel::fast_ethernet_p3());
//! assert_eq!(summary.verified, Some(true));
//! ```
//!
//! The crates underneath (re-exported here) implement every substrate from
//! scratch: exact rational linear algebra and Hermite Normal Forms
//! (`tilecc-linalg`), Fourier–Motzkin elimination (`tilecc-polytope`), the
//! loop-nest model and the paper's three kernels (`tilecc-loopnest`), the
//! tiling machinery (`tilecc-tiling`), an in-process message-passing cluster
//! with virtual-time simulation (`tilecc-cluster`), and the SPMD program
//! generator/executor plus a C/MPI emitter (`tilecc-parcode`).

pub mod analysis;
pub mod experiments;
pub mod matrices;
pub mod pipeline;
pub mod predictor;
pub mod tune;

pub use experiments::{measure, probe_procs, MeasuredPoint, Variant, Workload};
pub use pipeline::{Pipeline, RunSummary};
pub use predictor::{predict, predicted_comm_volume, SchedulePrediction};
pub use tune::{
    enumerate_candidates, tune, tune_labeled, TuneOptions, TuneOutcome, TunedCandidate,
};

// Convenience re-exports of the substrate crates.
pub use tilecc_cluster as cluster;
pub use tilecc_linalg as linalg;
pub use tilecc_loopnest as loopnest;
pub use tilecc_parcode as parcode;
pub use tilecc_polytope as polytope;
pub use tilecc_tiling as tiling;
