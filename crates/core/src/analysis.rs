//! Closed-form wavefront analysis (§4.1–4.3).
//!
//! Under the linear schedule `Π = [1,…,1]`, the last iteration `j_max`
//! executes at wavefront step `t = Π·⌊H·j_max⌋ ≈ Σ_k (H·j_max)_k`. The paper
//! uses this to predict that non-rectangular tilings finish earlier:
//!
//! * SOR:    `t_r = M/x + (M+N)/y + (2M+N)/z`, `t_nr = t_r − M/z`
//! * Jacobi: `t_r = T/x + (T+I)/y + (T+J)/z`, `t_nr = t_r − (T+I)/(2x)`
//! * ADI:    `t_r = T/x + N/y + N/z`, `t_nr1 = t_r − N/y`,
//!   `t_nr2 = t_r − N/z`, `t_nr3 = t_r − N/y − N/z`
//!
//! These are reproduced generically by [`wavefront_steps`] and specialized
//! per algorithm for the experiment harness.

use tilecc_linalg::RMat;

/// `Σ_k (H·j_max)_k` — the wavefront step count of the last iteration under
/// `Π = [1,…,1]` (continuous approximation, as in the paper's analysis).
pub fn wavefront_steps(h: &RMat, j_max: &[i64]) -> f64 {
    h.mul_ivec(j_max).iter().map(|r| r.to_f64()).sum()
}

/// SOR (skewed space, `j_max = (M, M+N, 2M+N)`): rectangular tiling steps.
pub fn sor_t_rect(m: i64, n: i64, x: i64, y: i64, z: i64) -> f64 {
    m as f64 / x as f64 + (m + n) as f64 / y as f64 + (2 * m + n) as f64 / z as f64
}

/// SOR non-rectangular tiling steps: `t_r − M/z`.
pub fn sor_t_nr(m: i64, n: i64, x: i64, y: i64, z: i64) -> f64 {
    sor_t_rect(m, n, x, y, z) - m as f64 / z as f64
}

/// Jacobi (skewed space, `j_max = (T, T+I, T+J)`): rectangular steps.
pub fn jacobi_t_rect(t: i64, i: i64, j: i64, x: i64, y: i64, z: i64) -> f64 {
    t as f64 / x as f64 + (t + i) as f64 / y as f64 + (t + j) as f64 / z as f64
}

/// Jacobi non-rectangular steps: `t_r − (T+I)/(2x)`.
pub fn jacobi_t_nr(t: i64, i: i64, j: i64, x: i64, y: i64, z: i64) -> f64 {
    jacobi_t_rect(t, i, j, x, y, z) - (t + i) as f64 / (2 * x) as f64
}

/// ADI (`j_max = (T, N, N)`): rectangular steps.
pub fn adi_t_rect(t: i64, n: i64, x: i64, y: i64, z: i64) -> f64 {
    t as f64 / x as f64 + n as f64 / y as f64 + n as f64 / z as f64
}

/// ADI `H_nr1` steps: `t_r − N/x`.
///
/// Note: the paper states `t_nr1 = t_r − N/y`, which follows from its
/// printed matrix `H_nr1 = [[1/x,−1/x,0],…]` only when `x = y`. We derive
/// the step count from the printed matrix itself
/// (`Σ(H_nr1·j_max) = t_r − N/x`); the two coincide for the equal-factor
/// configurations the paper compares. The qualitative orderings
/// (`t_nr3 < t_nr1 = t_nr2 < t_r`) are unaffected.
pub fn adi_t_nr1(t: i64, n: i64, x: i64, y: i64, z: i64) -> f64 {
    adi_t_rect(t, n, x, y, z) - n as f64 / x as f64
}

/// ADI `H_nr2` steps: `t_r − N/x` (see [`adi_t_nr1`] on the paper's `−N/z`
/// form).
pub fn adi_t_nr2(t: i64, n: i64, x: i64, y: i64, z: i64) -> f64 {
    adi_t_rect(t, n, x, y, z) - n as f64 / x as f64
}

/// ADI `H_nr3` steps (tiling-cone surface): `t_r − 2N/x` (the paper's
/// `t_r − N/y − N/z` with equal factors).
pub fn adi_t_nr3(t: i64, n: i64, x: i64, y: i64, z: i64) -> f64 {
    adi_t_rect(t, n, x, y, z) - 2.0 * n as f64 / x as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrices;

    #[test]
    fn generic_formula_matches_sor_specializations() {
        let (m, n) = (100, 200);
        let (x, y, z) = (25, 75, 20);
        let j_max = [m, m + n, 2 * m + n];
        let hr = matrices::sor_rect(x, y, z);
        let hnr = matrices::sor_nr(x, y, z);
        assert!((wavefront_steps(&hr, &j_max) - sor_t_rect(m, n, x, y, z)).abs() < 1e-9);
        assert!((wavefront_steps(&hnr, &j_max) - sor_t_nr(m, n, x, y, z)).abs() < 1e-9);
    }

    #[test]
    fn generic_formula_matches_jacobi_specializations() {
        let (t, i, j) = (50, 100, 100);
        let (x, y, z) = (10, 40, 40);
        let j_max = [t, t + i, t + j];
        let hr = matrices::jacobi_rect(x, y, z);
        let hnr = matrices::jacobi_nr(x, y, z);
        assert!((wavefront_steps(&hr, &j_max) - jacobi_t_rect(t, i, j, x, y, z)).abs() < 1e-9);
        assert!((wavefront_steps(&hnr, &j_max) - jacobi_t_nr(t, i, j, x, y, z)).abs() < 1e-9);
    }

    #[test]
    fn generic_formula_matches_adi_specializations() {
        let (t, n) = (100, 256);
        let (x, y, z) = (20, 64, 64);
        let j_max = [t, n, n];
        assert!(
            (wavefront_steps(&matrices::adi_rect(x, y, z), &j_max) - adi_t_rect(t, n, x, y, z))
                .abs()
                < 1e-9
        );
        assert!(
            (wavefront_steps(&matrices::adi_nr1(x, y, z), &j_max) - adi_t_nr1(t, n, x, y, z)).abs()
                < 1e-9
        );
        assert!(
            (wavefront_steps(&matrices::adi_nr2(x, y, z), &j_max) - adi_t_nr2(t, n, x, y, z)).abs()
                < 1e-9
        );
        assert!(
            (wavefront_steps(&matrices::adi_nr3(x, y, z), &j_max) - adi_t_nr3(t, n, x, y, z)).abs()
                < 1e-9
        );
    }

    #[test]
    fn paper_orderings_hold() {
        // t_nr < t_r for SOR and Jacobi; t_nr3 < t_nr1, t_nr2 < t_r for ADI.
        assert!(sor_t_nr(100, 200, 25, 75, 20) < sor_t_rect(100, 200, 25, 75, 20));
        assert!(jacobi_t_nr(50, 100, 100, 10, 40, 40) < jacobi_t_rect(50, 100, 100, 10, 40, 40));
        let (t, n, x, y, z) = (100, 256, 20, 64, 64);
        let tr = adi_t_rect(t, n, x, y, z);
        let t1 = adi_t_nr1(t, n, x, y, z);
        let t2 = adi_t_nr2(t, n, x, y, z);
        let t3 = adi_t_nr3(t, n, x, y, z);
        assert!(t3 < t1 && t3 < t2 && t1 < tr && t2 < tr);
        assert!(
            (t1 - t2).abs() < 1e-12,
            "equal y and z factors give equal t_nr1, t_nr2"
        );
    }
}
