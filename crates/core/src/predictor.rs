//! Static makespan prediction under the linear schedule `Π = [1,…,1]`.
//!
//! The paper's analysis (§4) counts wavefront steps: the last iteration
//! executes at step `Π·⌊H·j_max⌋`, and with one tile computed per step the
//! completion time is `steps × (tile compute + per-step communication)`.
//! This module computes those quantities exactly from the plan — the number
//! of wavefront steps from the enumerated tile space, the tile compute time
//! from the full tile volume, and the per-step communication from the
//! plan's message regions — and predicts the makespan without executing.
//!
//! The prediction is a *model*, exact only for full wavefronts of full
//! tiles; tests check that it tracks the simulated makespan and preserves
//! the rect/non-rect ordering.

use tilecc_cluster::MachineModel;
use tilecc_parcode::ParallelPlan;

/// Static schedule prediction.
#[derive(Clone, Copy, Debug)]
pub struct SchedulePrediction {
    /// Number of wavefront steps `max Π·j^S − min Π·j^S + 1` over the
    /// enumerated tile space.
    pub steps: i64,
    /// Compute time of one full tile.
    pub tile_compute: f64,
    /// Communication charged per step (one send + one receive per
    /// processor dependence, at the planned message sizes).
    pub per_step_comm: f64,
    /// `steps × (tile_compute + per_step_comm)`.
    pub makespan: f64,
}

/// Predict the makespan of `plan` on `model`.
pub fn predict(plan: &ParallelPlan, model: &MachineModel) -> SchedulePrediction {
    let mut min_step = i64::MAX;
    let mut max_step = i64::MIN;
    for tile in plan.tiled.tiles() {
        let s: i64 = tile.iter().sum();
        min_step = min_step.min(s);
        max_step = max_step.max(s);
    }
    assert!(min_step <= max_step, "empty tile space");
    let steps = max_step - min_step + 1;
    let tile_compute = model.compute_cost(plan.tiled.full_tile_volume() as u64);
    let per_step_comm: f64 = plan
        .region_counts
        .iter()
        .map(|&count| {
            let bytes = count * 8;
            model.send_cost(bytes) + model.wire_latency + model.recv_overhead
        })
        .sum();
    SchedulePrediction {
        steps,
        tile_compute,
        per_step_comm,
        makespan: steps as f64 * (tile_compute + per_step_comm),
    }
}

/// Exact predicted communication volume (bytes): for every tile and every
/// processor dependence with a valid successor tile, one message of the
/// planned region size. Mirrors the executor's SEND logic statically, so it
/// must agree exactly with the measured byte counts.
pub fn predicted_comm_volume(plan: &ParallelPlan) -> u64 {
    let mut bytes = 0u64;
    for tile in plan.tiled.tiles() {
        for (dm_idx, _dm) in plan.comm.proc_deps.iter().enumerate() {
            let has_succ = plan.comm.ds_of_dm(dm_idx).any(|ds| {
                let succ: Vec<i64> = tile.iter().zip(ds).map(|(&a, &b)| a + b).collect();
                plan.tiled.tile_valid(&succ)
            });
            if has_succ {
                bytes += (plan.region_counts[dm_idx] * 8) as u64;
            }
        }
    }
    bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrices;
    use std::sync::Arc;
    use tilecc_loopnest::kernels;
    use tilecc_parcode::{execute, ExecMode};
    use tilecc_tiling::TilingTransform;

    fn plan(h: tilecc_linalg::RMat, m: usize) -> Arc<ParallelPlan> {
        let alg = kernels::sor_skewed(24, 36, 1.1);
        Arc::new(ParallelPlan::new(alg, TilingTransform::new(h).unwrap(), Some(m)).unwrap())
    }

    #[test]
    fn prediction_tracks_simulation_within_a_small_factor() {
        let model = tilecc_cluster::MachineModel::fast_ethernet_p3();
        for h in [matrices::rect(7, 16, 8), matrices::sor_nr(7, 16, 8)] {
            let p = plan(h, 2);
            let pred = predict(&p, &model);
            let sim = execute(p, model, ExecMode::TimingOnly).makespan();
            let ratio = pred.makespan / sim;
            assert!(
                (0.3..=3.0).contains(&ratio),
                "prediction {:.5}s vs simulation {:.5}s (ratio {ratio:.2})",
                pred.makespan,
                sim
            );
        }
    }

    #[test]
    fn prediction_preserves_the_tile_shape_ordering() {
        let model = tilecc_cluster::MachineModel::fast_ethernet_p3();
        let rect = predict(&plan(matrices::rect(7, 16, 8), 2), &model);
        let nr = predict(&plan(matrices::sor_nr(7, 16, 8), 2), &model);
        assert!(
            nr.steps < rect.steps,
            "cone tiling has fewer wavefront steps"
        );
        assert!(nr.makespan < rect.makespan);
        // Equal tile sizes → equal compute term; only scheduling differs.
        assert_eq!(nr.tile_compute, rect.tile_compute);
    }

    #[test]
    fn predicted_comm_volume_matches_measurement_exactly() {
        let model = tilecc_cluster::MachineModel::fast_ethernet_p3();
        for h in [matrices::rect(7, 16, 8), matrices::sor_nr(7, 16, 8)] {
            let p = plan(h, 2);
            let predicted = predicted_comm_volume(&p);
            let res = execute(p, model, ExecMode::TimingOnly);
            assert_eq!(predicted, res.report.total_bytes());
        }
    }

    #[test]
    fn steps_match_the_analytic_formula_for_sor() {
        // Steps ≈ t_r − t_min for the rectangular tiling; compare against
        // the §4.1 closed form evaluated at j_max and the first point.
        let model = tilecc_cluster::MachineModel::zero_comm(1e-7);
        let (m, n, x, y, z) = (24i64, 36i64, 7i64, 16i64, 8i64);
        let pred = predict(&plan(matrices::rect(x, y, z), 2), &model);
        let t_max = crate::analysis::sor_t_rect(m, n, x, y, z);
        // The closed form is continuous; the exact step count differs by at
        // most the number of dimensions (floor effects at both ends).
        assert!(
            (pred.steps as f64 - t_max).abs() <= 4.0,
            "steps {} vs formula {t_max:.1}",
            pred.steps
        );
    }
}
