//! `tilecc tune` — search over legal tiling matrices at a fixed tile volume.
//!
//! The paper (§4) hand-picks one rectangular and one cone-derived tiling per
//! kernel and compares them at equal tile size. This module automates that
//! comparison: it enumerates every parallelepiped tiling whose rows are drawn
//! from the tiling cone of the dependence matrix (extreme rays plus in-cone
//! unit vectors, [`tilecc_tiling::candidate_rows`]), scales the rows so the
//! tile volume matches a target, filters out singular / non-integral /
//! illegal candidates, deduplicates schedule-isomorphic ones, and ranks the
//! survivors by modeled makespan under [`Pipeline::simulate`].
//!
//! ## Search space
//!
//! A candidate is `H = diag(1/f)·R` where the rows of `R` are `n` distinct
//! vectors from the candidate pool and `f` is a vector of positive integer
//! scale factors. Because pool rows are primitive, the row-denominator LCMs
//! are `v = f` and the integralized matrix is `H' = R`, so the tile volume is
//! `|det P| = Πf / |det R|`: for a target volume `W` we enumerate every
//! ordered factorization of `W·|det R|` into `n` factors. Candidates whose
//! `P = H⁻¹` is not an integer matrix are rejected by
//! [`TilingTransform::new`]; candidates violating the legality condition
//! `H·d ≥ 0` are rejected by `validate_for` (both are counted, not errors).
//!
//! ## Dedup
//!
//! Two surviving candidates are schedule-isomorphic when one's `(row,
//! factor)` pairs are a permutation of the other's that fixes the mapping
//! row `m`: permuting the non-mapping rows of `H` only permutes the `pid`
//! coordinates, leaving chains, tile dependencies and message sizes
//! untouched. The canonical key is therefore the mapping pair followed by
//! the sorted remaining pairs — exact, unlike a Hermite-form-only key, which
//! would collapse distinct partitions that happen to share the `H'` lattice
//! (e.g. `[[1,0],[1,1]]` vs the identity). The column HNF of `H'`
//! ([`tilecc_linalg::column_hnf`]) is still computed per candidate as the
//! lattice signature reported alongside the ranking.

use crate::pipeline::{Pipeline, RunSummary};
use std::collections::BTreeSet;
use std::fmt::Write as _;
use tilecc_cluster::MachineModel;
use tilecc_linalg::{column_hnf, IMat, RMat, Rational};
use tilecc_loopnest::Algorithm;
use tilecc_tiling::{candidate_rows, TilingTransform};

/// One element of the tuner's raw search space.
#[derive(Clone, Debug)]
pub struct CandidateH {
    /// Integer rows `R` drawn from the candidate pool (equal to `H'`).
    pub rows: Vec<Vec<i64>>,
    /// Per-row scale factors `f` (equal to `v` since the rows are primitive).
    pub factors: Vec<i64>,
    /// The rational tiling matrix `H = diag(1/f)·R`.
    pub h: RMat,
}

/// Tuner configuration.
#[derive(Clone, Debug)]
pub struct TuneOptions {
    /// Target tile volume `|det P|` (iterations per full tile).
    pub volume: i64,
    /// Mapping dimension `m` (tile chains run along row `m` of `H`).
    pub m: usize,
    /// Cap on the number of candidates that are simulated (the enumeration
    /// itself is exhaustive; the cap keeps the oracle cost bounded).
    pub max_candidates: usize,
    /// Tiling matrices that are always evaluated (seeded ahead of the
    /// generated candidates), e.g. the paper's fixed `H` — guaranteeing the
    /// winner is never worse than a seed.
    pub include: Vec<RMat>,
}

impl TuneOptions {
    pub fn new(volume: i64, m: usize) -> Self {
        TuneOptions {
            volume,
            m,
            max_candidates: 128,
            include: vec![],
        }
    }
}

/// One evaluated candidate in the ranking.
#[derive(Clone, Debug)]
pub struct TunedCandidate {
    /// The tiling matrix.
    pub h: RMat,
    /// `H' = V·H` (integer).
    pub h_prime: IMat,
    /// Row-denominator LCMs `v`.
    pub v: Vec<i64>,
    /// Column Hermite Normal Form of `H'` — the TTIS lattice signature.
    pub hnf: IMat,
    /// Whether this candidate was seeded via [`TuneOptions::include`].
    pub included: bool,
    /// Simulation summary under the machine model.
    pub summary: RunSummary,
}

/// Result of one tuner run.
#[derive(Clone, Debug)]
pub struct TuneOutcome {
    /// Kernel label (caller-provided, e.g. `SOR M=12 N=12`).
    pub label: String,
    /// Target tile volume.
    pub volume: i64,
    /// Mapping dimension.
    pub m: usize,
    /// The candidate row pool (cone rays + in-cone unit vectors).
    pub pool: Vec<Vec<i64>>,
    /// Raw candidates enumerated (including seeds).
    pub generated: usize,
    /// Rejected: `P = H⁻¹` singular or not integral.
    pub invalid: usize,
    /// Rejected: legality (`H·d ≥ 0`) fails for some dependence.
    pub illegal: usize,
    /// Skipped: schedule-isomorphic to an earlier candidate.
    pub deduped: usize,
    /// Dropped by the `max_candidates` cap after dedup.
    pub truncated: usize,
    /// Plan construction failed (e.g. coefficient overflow).
    pub failed: usize,
    /// Candidates actually simulated (`ranking.len()`).
    pub evaluated: usize,
    /// Evaluated candidates, best modeled makespan first.
    pub ranking: Vec<TunedCandidate>,
}

impl TuneOutcome {
    /// The winning candidate (least modeled makespan).
    pub fn best(&self) -> Option<&TunedCandidate> {
        self.ranking.first()
    }

    /// The best *seeded* candidate — the baseline the winner must beat.
    pub fn best_included(&self) -> Option<&TunedCandidate> {
        self.ranking.iter().find(|c| c.included)
    }

    /// JSON object for machine consumption (winning `H`, ranking, counters).
    pub fn to_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let pad2 = " ".repeat(indent + 2);
        let mut s = String::from("{\n");
        let _ = writeln!(s, "{pad2}\"kernel\": \"{}\",", self.label);
        let _ = writeln!(s, "{pad2}\"volume\": {},", self.volume);
        let _ = writeln!(s, "{pad2}\"m\": {},", self.m);
        let pool: Vec<String> = self.pool.iter().map(|r| json_ivec(r)).collect();
        let _ = writeln!(s, "{pad2}\"pool\": [{}],", pool.join(", "));
        let _ = writeln!(s, "{pad2}\"generated\": {},", self.generated);
        let _ = writeln!(s, "{pad2}\"invalid\": {},", self.invalid);
        let _ = writeln!(s, "{pad2}\"illegal\": {},", self.illegal);
        let _ = writeln!(s, "{pad2}\"deduped\": {},", self.deduped);
        let _ = writeln!(s, "{pad2}\"truncated\": {},", self.truncated);
        let _ = writeln!(s, "{pad2}\"failed\": {},", self.failed);
        let _ = writeln!(s, "{pad2}\"evaluated\": {},", self.evaluated);
        let _ = writeln!(s, "{pad2}\"ranking\": [");
        for (i, c) in self.ranking.iter().enumerate() {
            let comma = if i + 1 == self.ranking.len() { "" } else { "," };
            let _ = writeln!(s, "{}{}", candidate_json(c, indent + 4), comma);
        }
        let _ = writeln!(s, "{pad2}]");
        let _ = write!(s, "{pad}}}");
        s
    }

    /// Human-readable ranking table.
    pub fn report(&self) -> String {
        self.report_top(usize::MAX)
    }

    /// [`TuneOutcome::report`] limited to the first `limit` ranking rows.
    pub fn report_top(&self, limit: usize) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "tune: {} (volume {}, m={}) — {} generated, {} invalid, {} illegal, \
             {} deduped, {} truncated, {} failed, {} evaluated",
            self.label,
            self.volume,
            self.m,
            self.generated,
            self.invalid,
            self.illegal,
            self.deduped,
            self.truncated,
            self.failed,
            self.evaluated
        );
        let _ = writeln!(
            s,
            "  {:<4} {:<34} {:>12} {:>10} {:>6} {:>9}  seed",
            "rank", "H (rows)", "makespan", "bytes", "procs", "speedup"
        );
        for (i, c) in self.ranking.iter().take(limit).enumerate() {
            let _ = writeln!(
                s,
                "  {:<4} {:<34} {:>12.6} {:>10} {:>6} {:>9.3}  {}",
                i + 1,
                fmt_h(&c.h),
                c.summary.makespan,
                c.summary.bytes,
                c.summary.procs,
                c.summary.speedup,
                if c.included { "*" } else { "" }
            );
        }
        if self.ranking.len() > limit {
            let _ = writeln!(
                s,
                "  … {} more candidates omitted",
                self.ranking.len() - limit
            );
        }
        s
    }
}

/// Enumerate the raw candidate matrices for `deps` at tile volume `volume`:
/// every ordered choice of `n` distinct pool rows with `det R ≠ 0`, crossed
/// with every ordered factorization of `volume·|det R|` into `n` positive
/// factors. Deterministic order; no validity filtering (the tuner counts
/// rejections, and the fuzzer feeds these through plan construction).
pub fn enumerate_candidates(deps: &IMat, volume: i64) -> Vec<CandidateH> {
    assert!(volume > 0, "tile volume must be positive");
    let n = deps.rows();
    let pool = candidate_rows(deps);
    let mut out = vec![];
    let mut pick = vec![0usize; n];
    permute_rows(&pool, n, &mut pick, 0, &mut |idx| {
        let rows: Vec<Vec<i64>> = idx.iter().map(|&i| pool[i].clone()).collect();
        let det = IMat::from_vec(rows.clone()).det().abs();
        if det == 0 {
            return;
        }
        for factors in ordered_factorizations(volume * det, n) {
            let h = RMat::from_fn(n, n, |i, j| {
                Rational::new(i128::from(rows[i][j]), i128::from(factors[i]))
            });
            out.push(CandidateH {
                rows: rows.clone(),
                factors,
                h,
            });
        }
    });
    out
}

/// Visit every ordered selection of `k` distinct indices into `pool`.
fn permute_rows(
    pool: &[Vec<i64>],
    k: usize,
    pick: &mut Vec<usize>,
    depth: usize,
    visit: &mut impl FnMut(&[usize]),
) {
    if depth == k {
        visit(pick);
        return;
    }
    for i in 0..pool.len() {
        if pick[..depth].contains(&i) {
            continue;
        }
        pick[depth] = i;
        permute_rows(pool, k, pick, depth + 1, visit);
    }
}

/// All ordered factorizations of `n` into `parts` positive integer factors,
/// in lexicographic order.
fn ordered_factorizations(n: i64, parts: usize) -> Vec<Vec<i64>> {
    if parts == 1 {
        return vec![vec![n]];
    }
    let mut out = vec![];
    for d in 1..=n {
        if n % d != 0 {
            continue;
        }
        for mut rest in ordered_factorizations(n / d, parts - 1) {
            rest.insert(0, d);
            out.push(rest);
        }
    }
    out
}

/// Schedule-isomorphism canonical key: the mapping-row `(v_m, H'_m)` pair
/// first, then the remaining `(v_k, H'_k)` pairs sorted. Exact — includes
/// `H'` and `v` verbatim, only collapsing permutations that fix row `m`.
fn canonical_key(h_prime: &IMat, v: &[i64], m: usize) -> Vec<i64> {
    let n = h_prime.rows();
    let pair = |k: usize| {
        let mut p = vec![v[k]];
        p.extend_from_slice(h_prime.row(k));
        p
    };
    let mut rest: Vec<Vec<i64>> = (0..n).filter(|&k| k != m).map(pair).collect();
    rest.sort();
    let mut key = pair(m);
    for p in rest {
        key.extend(p);
    }
    key
}

/// Run the tuner: enumerate, filter, dedup, simulate, rank.
///
/// The seeds in [`TuneOptions::include`] are evaluated first (and marked),
/// so the returned winner's makespan is never worse than any seed's.
pub fn tune(algorithm: &Algorithm, opts: &TuneOptions, model: MachineModel) -> TuneOutcome {
    tune_labeled(algorithm, opts, model, "kernel")
}

/// [`tune`] with a caller-supplied kernel label for reports.
pub fn tune_labeled(
    algorithm: &Algorithm,
    opts: &TuneOptions,
    model: MachineModel,
    label: &str,
) -> TuneOutcome {
    let deps = algorithm.nest.deps();
    let pool = candidate_rows(deps);
    let mut outcome = TuneOutcome {
        label: label.to_string(),
        volume: opts.volume,
        m: opts.m,
        pool,
        generated: 0,
        invalid: 0,
        illegal: 0,
        deduped: 0,
        truncated: 0,
        failed: 0,
        evaluated: 0,
        ranking: vec![],
    };
    let mut seen: BTreeSet<Vec<i64>> = BTreeSet::new();
    let mut accepted: Vec<(TilingTransform, bool)> = vec![];
    let mut consider = |h: RMat, included: bool, outcome: &mut TuneOutcome| {
        outcome.generated += 1;
        let Ok(t) = TilingTransform::new(h) else {
            outcome.invalid += 1;
            return;
        };
        if t.validate_for(deps).is_err() {
            outcome.illegal += 1;
            return;
        }
        if !seen.insert(canonical_key(t.h_prime(), t.v(), opts.m)) {
            outcome.deduped += 1;
            return;
        }
        if accepted.len() >= opts.max_candidates {
            outcome.truncated += 1;
            return;
        }
        accepted.push((t, included));
    };
    for h in &opts.include {
        consider(h.clone(), true, &mut outcome);
    }
    for cand in enumerate_candidates(deps, opts.volume) {
        consider(cand.h, false, &mut outcome);
    }
    for (t, included) in accepted {
        let hnf = column_hnf(t.h_prime()).hnf;
        let (h, h_prime, v) = (t.h().clone(), t.h_prime().clone(), t.v().to_vec());
        match Pipeline::compile_transform(algorithm.clone(), t, Some(opts.m)) {
            Ok(pipe) => {
                let summary = pipe.simulate(model);
                outcome.ranking.push(TunedCandidate {
                    h,
                    h_prime,
                    v,
                    hnf,
                    included,
                    summary,
                });
            }
            Err(_) => outcome.failed += 1,
        }
    }
    outcome.evaluated = outcome.ranking.len();
    outcome.ranking.sort_by(|a, b| {
        a.summary
            .makespan
            .total_cmp(&b.summary.makespan)
            .then(a.summary.bytes.cmp(&b.summary.bytes))
            .then_with(|| {
                canonical_key(&a.h_prime, &a.v, opts.m)
                    .cmp(&canonical_key(&b.h_prime, &b.v, opts.m))
            })
    });
    outcome
}

/// Format `H` compactly: rows separated by `;`, entries as `num/den`.
pub fn fmt_h(h: &RMat) -> String {
    let mut s = String::from("[");
    for i in 0..h.rows() {
        if i > 0 {
            s.push(';');
        }
        for (j, r) in h.row(i).iter().enumerate() {
            if j > 0 {
                s.push(' ');
            }
            if r.is_integer() {
                let _ = write!(s, "{}", r.to_integer());
            } else {
                let _ = write!(s, "{}/{}", r.num(), r.den());
            }
        }
    }
    s.push(']');
    s
}

fn json_ivec(v: &[i64]) -> String {
    let items: Vec<String> = v.iter().map(|x| x.to_string()).collect();
    format!("[{}]", items.join(", "))
}

fn json_imat(m: &IMat) -> String {
    let rows: Vec<String> = (0..m.rows()).map(|i| json_ivec(m.row(i))).collect();
    format!("[{}]", rows.join(", "))
}

fn json_rmat(h: &RMat) -> String {
    let rows: Vec<String> = (0..h.rows())
        .map(|i| {
            let items: Vec<String> = h
                .row(i)
                .iter()
                .map(|r| format!("[{}, {}]", r.num(), r.den()))
                .collect();
            format!("[{}]", items.join(", "))
        })
        .collect();
    format!("[{}]", rows.join(", "))
}

fn candidate_json(c: &TunedCandidate, indent: usize) -> String {
    let pad = " ".repeat(indent);
    let pad2 = " ".repeat(indent + 2);
    let mut s = String::new();
    let _ = writeln!(s, "{pad}{{");
    let _ = writeln!(s, "{pad2}\"h\": {},", json_rmat(&c.h));
    let _ = writeln!(s, "{pad2}\"h_display\": \"{}\",", fmt_h(&c.h));
    let _ = writeln!(s, "{pad2}\"h_prime\": {},", json_imat(&c.h_prime));
    let _ = writeln!(s, "{pad2}\"v\": {},", json_ivec(&c.v));
    let _ = writeln!(s, "{pad2}\"hnf\": {},", json_imat(&c.hnf));
    let _ = writeln!(s, "{pad2}\"included\": {},", c.included);
    let _ = writeln!(s, "{pad2}\"makespan\": {},", c.summary.makespan);
    let _ = writeln!(s, "{pad2}\"speedup\": {},", c.summary.speedup);
    let _ = writeln!(s, "{pad2}\"bytes\": {},", c.summary.bytes);
    let _ = writeln!(s, "{pad2}\"messages\": {},", c.summary.messages);
    let _ = writeln!(s, "{pad2}\"procs\": {}", c.summary.procs);
    let _ = write!(s, "{pad}}}");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::{Variant, Workload};

    #[test]
    fn ordered_factorizations_cover_all_triples() {
        let fs = ordered_factorizations(12, 3);
        assert!(fs.contains(&vec![1, 1, 12]));
        assert!(fs.contains(&vec![2, 3, 2]));
        assert!(fs.contains(&vec![12, 1, 1]));
        for f in &fs {
            assert_eq!(f.iter().product::<i64>(), 12);
        }
        // d_3(12): 12 = 2²·3 → (2+2 choose 2)·(1+2 choose 2) = 6·3 = 18.
        assert_eq!(fs.len(), 18);
    }

    #[test]
    fn enumerated_candidates_hit_the_target_volume() {
        let deps = IMat::identity(3);
        for cand in enumerate_candidates(&deps, 8) {
            if let Ok(t) = TilingTransform::new(cand.h.clone()) {
                assert_eq!(t.tile_size(), 8, "wrong volume for {:?}", cand.rows);
                assert_eq!(t.v(), cand.factors.as_slice());
            }
        }
    }

    #[test]
    fn canonical_key_collapses_only_m_fixing_permutations() {
        // Swapping the two non-mapping rows (with their factors) is
        // schedule-isomorphic; swapping the mapping row out is not.
        let a = IMat::from_rows(&[&[1, 0, 0], &[0, 1, 0], &[-1, 0, 1]]);
        let b = IMat::from_rows(&[&[0, 1, 0], &[1, 0, 0], &[-1, 0, 1]]);
        let c = IMat::from_rows(&[&[-1, 0, 1], &[0, 1, 0], &[1, 0, 0]]);
        let v_ab = [2, 3, 4];
        let v_ba = [3, 2, 4];
        let v_c = [4, 3, 2];
        assert_eq!(canonical_key(&a, &v_ab, 2), canonical_key(&b, &v_ba, 2));
        assert_ne!(canonical_key(&a, &v_ab, 2), canonical_key(&c, &v_c, 2));
        // Identical lattices with different partitions stay distinct.
        let id = IMat::identity(2);
        let sheared = IMat::from_rows(&[&[1, 0], &[1, 1]]);
        assert_ne!(
            canonical_key(&id, &[1, 1], 0),
            canonical_key(&sheared, &[1, 1], 0)
        );
    }

    #[test]
    fn tune_never_loses_to_a_seed_and_beats_rect_sor() {
        let w = Workload::Sor { m: 6, n: 9 };
        let alg = w.algorithm();
        let (x, y, z) = (2, 3, 2);
        let mut opts = TuneOptions::new(x * y * z, w.mapping_dim());
        opts.include = vec![w.tiling(Variant::Rect, x, y, z)];
        let model = MachineModel::fast_ethernet_p3();
        let out = tune_labeled(&alg, &opts, model, &w.label());
        assert!(out.evaluated > 0, "no candidates survived");
        let best = out.best().unwrap();
        let seed = out.best_included().expect("seed must be evaluated");
        assert!(best.summary.makespan <= seed.summary.makespan);
        // The cone-derived candidates must strictly beat rectangular SOR,
        // as the paper's §4.1 comparison predicts.
        assert!(
            best.summary.makespan < seed.summary.makespan,
            "tuner found nothing better than rect (makespan {})",
            seed.summary.makespan
        );
        // Every evaluated candidate keeps the target volume.
        for c in &out.ranking {
            let t = TilingTransform::new(c.h.clone()).unwrap();
            assert_eq!(t.tile_size(), opts.volume);
        }
    }

    #[test]
    fn tune_json_and_report_are_well_formed() {
        let w = Workload::Adi { t: 6, n: 6 };
        let alg = w.algorithm();
        let mut opts = TuneOptions::new(8, w.mapping_dim());
        opts.max_candidates = 16;
        opts.include = vec![w.tiling(Variant::AdiNr1, 2, 2, 2)];
        let out = tune_labeled(&alg, &opts, MachineModel::fast_ethernet_p3(), &w.label());
        let json = out.to_json(0);
        assert!(json.contains("\"ranking\""));
        assert!(json.contains("\"makespan\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let report = out.report();
        assert!(report.contains("makespan"));
        assert!(out.truncated > 0 || out.evaluated <= 16);
    }
}
