//! Property-based tests for Fourier–Motzkin elimination and point scanning.
//!
//! Cases are generated with a seeded xorshift generator, so every run
//! exercises the same inputs — a failure message's `case` index is enough to
//! reproduce it exactly.

use tilecc_polytope::{Constraint, LoopNestBounds, Polyhedron};

/// xorshift64* — deterministic case generator.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform integer in `lo..=hi`.
    fn int(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo + 1) as u64) as i64
    }
}

/// Random bounded 2-D or 3-D polyhedron: a box plus a few random half-spaces.
fn bounded_poly(rng: &mut Rng) -> Polyhedron {
    let dim = rng.int(2, 3) as usize;
    let mut p = Polyhedron::from_box(&vec![-4; dim], &vec![4; dim]);
    for _ in 0..rng.int(0, 3) {
        let coeffs: Vec<i64> = (0..dim).map(|_| rng.int(-3, 3)).collect();
        let c = rng.int(-8, 8);
        p.add(Constraint::new(coeffs, c));
    }
    p
}

fn brute_points(p: &Polyhedron) -> Vec<Vec<i64>> {
    let dim = p.dim();
    let mut out = vec![];
    let mut cur = vec![-4i64; dim];
    'outer: loop {
        if p.contains(&cur) {
            out.push(cur.clone());
        }
        for k in (0..dim).rev() {
            cur[k] += 1;
            if cur[k] <= 4 {
                continue 'outer;
            }
            cur[k] = -4;
            if k == 0 {
                break 'outer;
            }
        }
    }
    out
}

const CASES: usize = 64;

/// FM soundness: the shadow contains the projection of every point, and
/// every *rational-exact* property we rely on holds — each point of the
/// polyhedron projects into the eliminated system.
#[test]
fn fm_shadow_contains_projections() {
    let mut rng = Rng::new(0x5EED_0001);
    for case in 0..CASES {
        let p = bounded_poly(&mut rng);
        let dim = p.dim();
        let pts = brute_points(&p);
        for k in 0..dim {
            let shadow = p.eliminate(k).unwrap();
            for pt in &pts {
                let projected: Vec<i64> = pt
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != k)
                    .map(|(_, &v)| v)
                    .collect();
                assert!(
                    shadow.contains(&projected),
                    "case {case}: projection of {pt:?} missing from shadow of var {k}"
                );
            }
        }
    }
}

/// The lexicographic scanner visits exactly the integer points, in order,
/// exactly once.
#[test]
fn scanner_is_exact_and_ordered() {
    let mut rng = Rng::new(0x5EED_0002);
    for case in 0..CASES {
        let p = bounded_poly(&mut rng);
        let bounds = LoopNestBounds::new(&p).unwrap();
        let fast: Vec<_> = bounds.points().collect();
        let slow = brute_points(&p);
        assert_eq!(&fast, &slow, "case {case}");
        for w in fast.windows(2) {
            assert!(w[0] < w[1], "case {case}");
        }
    }
}

/// integer_bounds agrees with explicit scanning per outer value.
#[test]
fn bounds_bracket_inner_points() {
    let mut rng = Rng::new(0x5EED_0003);
    for case in 0..CASES {
        let p = bounded_poly(&mut rng);
        let bounds = LoopNestBounds::new(&p).unwrap();
        let pts = brute_points(&p);
        for pt in &pts {
            let k = p.dim() - 1;
            let (lo, hi) = bounds
                .bounds(k, &pt[..k])
                .expect("point exists, bounds must too");
            assert!(lo <= pt[k] && pt[k] <= hi, "case {case}: {pt:?}");
        }
    }
}
