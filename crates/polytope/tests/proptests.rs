//! Property-based tests for Fourier–Motzkin elimination and point scanning.

use proptest::prelude::*;
use tilecc_polytope::{Constraint, LoopNestBounds, Polyhedron};

/// Random bounded 2-D or 3-D polyhedra: a box plus a few random half-spaces.
fn bounded_poly() -> impl Strategy<Value = Polyhedron> {
    (2usize..=3).prop_flat_map(|dim| {
        let extra = proptest::collection::vec(
            (proptest::collection::vec(-3i64..=3, dim), -8i64..=8),
            0..4,
        );
        (Just(dim), extra).prop_map(move |(dim, extra)| {
            let mut p = Polyhedron::from_box(&vec![-4; dim], &vec![4; dim]);
            for (coeffs, c) in extra {
                p.add(Constraint::new(coeffs, c));
            }
            p
        })
    })
}

fn brute_points(p: &Polyhedron) -> Vec<Vec<i64>> {
    let dim = p.dim();
    let mut out = vec![];
    let mut cur = vec![-4i64; dim];
    'outer: loop {
        if p.contains(&cur) {
            out.push(cur.clone());
        }
        for k in (0..dim).rev() {
            cur[k] += 1;
            if cur[k] <= 4 {
                continue 'outer;
            }
            cur[k] = -4;
            if k == 0 {
                break 'outer;
            }
        }
    }
    out
}

proptest! {
    /// FM soundness: the shadow contains the projection of every point, and
    /// every *rational-exact* property we rely on holds — each point of the
    /// polyhedron projects into the eliminated system.
    #[test]
    fn fm_shadow_contains_projections(p in bounded_poly()) {
        let dim = p.dim();
        let pts = brute_points(&p);
        for k in 0..dim {
            let shadow = p.eliminate(k);
            for pt in &pts {
                let projected: Vec<i64> = pt
                    .iter()
                    .enumerate()
                    .filter(|&(i, _)| i != k)
                    .map(|(_, &v)| v)
                    .collect();
                prop_assert!(shadow.contains(&projected),
                    "projection of {:?} missing from shadow of var {}", pt, k);
            }
        }
    }

    /// The lexicographic scanner visits exactly the integer points, in order,
    /// exactly once.
    #[test]
    fn scanner_is_exact_and_ordered(p in bounded_poly()) {
        let bounds = LoopNestBounds::new(&p);
        let fast: Vec<_> = bounds.points().collect();
        let slow = brute_points(&p);
        prop_assert_eq!(&fast, &slow);
        for w in fast.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// integer_bounds agrees with explicit scanning per outer value.
    #[test]
    fn bounds_bracket_inner_points(p in bounded_poly()) {
        let bounds = LoopNestBounds::new(&p);
        let pts = brute_points(&p);
        for pt in &pts {
            let k = p.dim() - 1;
            let (lo, hi) = bounds
                .bounds(k, &pt[..k])
                .expect("point exists, bounds must too");
            prop_assert!(lo <= pt[k] && pt[k] <= hi);
        }
    }
}
