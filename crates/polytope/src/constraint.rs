//! Affine inequality constraints over integer variables.
//!
//! A constraint is stored in the canonical form `a·x + b ≥ 0` with integer
//! coefficients normalized so that `gcd(a, b) = 1`. Rational input (the
//! tiling matrix rows) is scaled to this form exactly.

use crate::error::PolytopeError;
use tilecc_linalg::{gcd_i128, Rational};

/// The inequality `coeffs · x + constant ≥ 0`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    coeffs: Vec<i64>,
    constant: i64,
}

impl Constraint {
    /// Build and normalize a constraint `coeffs · x + constant ≥ 0`.
    pub fn new(coeffs: Vec<i64>, constant: i64) -> Self {
        let mut c = Constraint { coeffs, constant };
        c.normalize();
        c
    }

    /// Build from rational coefficients by scaling with the common
    /// denominator: `q·x + r ≥ 0` becomes `(s·q)·x + s·r ≥ 0`.
    ///
    /// Fails with [`PolytopeError::Overflow`] when a scaled coefficient does
    /// not fit `i64` — reachable from user-authored kernels with very large
    /// rational bounds.
    pub fn from_rationals(coeffs: &[Rational], constant: Rational) -> Result<Self, PolytopeError> {
        let mut lcm: i128 = constant.den();
        for c in coeffs {
            lcm = tilecc_linalg::lcm_i128(lcm, c.den());
        }
        let overflow = PolytopeError::Overflow {
            context: "rational constraint scaling",
        };
        let scale = |r: &Rational| -> Result<i64, PolytopeError> {
            let v = r.num().checked_mul(lcm / r.den()).ok_or(overflow)?;
            i64::try_from(v).map_err(|_| overflow)
        };
        let coeffs = coeffs.iter().map(scale).collect::<Result<Vec<_>, _>>()?;
        Ok(Constraint::new(coeffs, scale(&constant)?))
    }

    /// Lower-bound constraint `x_k ≥ bound`.
    pub fn lower_bound(dim: usize, k: usize, bound: i64) -> Self {
        let mut coeffs = vec![0; dim];
        coeffs[k] = 1;
        Constraint::new(coeffs, -bound)
    }

    /// Upper-bound constraint `x_k ≤ bound`.
    pub fn upper_bound(dim: usize, k: usize, bound: i64) -> Self {
        let mut coeffs = vec![0; dim];
        coeffs[k] = -1;
        Constraint::new(coeffs, bound)
    }

    fn normalize(&mut self) {
        let mut g: i128 = self.constant.unsigned_abs() as i128;
        for &c in &self.coeffs {
            g = gcd_i128(g, c as i128);
        }
        if g > 1 {
            let g = g as i64;
            for c in &mut self.coeffs {
                *c /= g;
            }
            self.constant /= g;
        }
    }

    #[inline]
    pub fn coeffs(&self) -> &[i64] {
        &self.coeffs
    }

    #[inline]
    pub fn coeff(&self, k: usize) -> i64 {
        self.coeffs[k]
    }

    #[inline]
    pub fn constant(&self) -> i64 {
        self.constant
    }

    #[inline]
    pub fn dim(&self) -> usize {
        self.coeffs.len()
    }

    /// Evaluate `coeffs · x + constant` exactly in `i128`: each product of
    /// two `i64` values fits `i128` with 62 bits to spare, so a sum of
    /// `dim` such products cannot overflow for any realistic nest depth.
    pub fn eval(&self, x: &[i64]) -> i128 {
        assert_eq!(x.len(), self.dim(), "constraint eval dimension mismatch");
        let mut acc = self.constant as i128;
        for (c, v) in self.coeffs.iter().zip(x) {
            acc += (*c as i128) * (*v as i128);
        }
        acc
    }

    /// True iff `x` satisfies the constraint.
    #[inline]
    pub fn satisfied_by(&self, x: &[i64]) -> bool {
        self.eval(x) >= 0
    }

    /// Evaluate with the variable `k` left out (used for bound extraction):
    /// returns `Σ_{i≠k} a_i·x_i + b`, where `x` supplies values for all
    /// variables but position `k` is ignored. Exact in `i128` (see
    /// [`Constraint::eval`]).
    pub fn eval_without(&self, x: &[i64], k: usize) -> i128 {
        let mut acc = self.constant as i128;
        for (i, (c, v)) in self.coeffs.iter().zip(x).enumerate() {
            if i != k {
                acc += (*c as i128) * (*v as i128);
            }
        }
        acc
    }

    /// Is this constraint trivially satisfied (all zero coefficients and a
    /// non-negative constant)?
    pub fn is_tautology(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0) && self.constant >= 0
    }

    /// Is this constraint unsatisfiable (all zero coefficients, negative
    /// constant)?
    pub fn is_contradiction(&self) -> bool {
        self.coeffs.iter().all(|&c| c == 0) && self.constant < 0
    }

    /// The positive combination `λ·self + μ·other` (λ, μ > 0), used by
    /// Fourier–Motzkin to cancel a variable.
    ///
    /// Fails with [`PolytopeError::Overflow`] when a combined coefficient
    /// does not fit `i64`; the elimination driver propagates the error
    /// through plan construction instead of panicking.
    pub fn combine(
        &self,
        lambda: i64,
        other: &Constraint,
        mu: i64,
    ) -> Result<Constraint, PolytopeError> {
        assert_eq!(self.dim(), other.dim());
        assert!(
            lambda > 0 && mu > 0,
            "FM combination multipliers must be positive"
        );
        let overflow = PolytopeError::Overflow {
            context: "Fourier-Motzkin combination",
        };
        let coeffs = self
            .coeffs
            .iter()
            .zip(&other.coeffs)
            .map(|(&a, &b)| {
                let v = (a as i128) * (lambda as i128) + (b as i128) * (mu as i128);
                i64::try_from(v).map_err(|_| overflow)
            })
            .collect::<Result<Vec<_>, _>>()?;
        let constant = i64::try_from(
            (self.constant as i128) * (lambda as i128) + (other.constant as i128) * (mu as i128),
        )
        .map_err(|_| overflow)?;
        Ok(Constraint::new(coeffs, constant))
    }
}

impl std::fmt::Debug for Constraint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut first = true;
        for (i, &c) in self.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if first {
                if c == 1 {
                    write!(f, "x{i}")?;
                } else if c == -1 {
                    write!(f, "-x{i}")?;
                } else {
                    write!(f, "{c}*x{i}")?;
                }
                first = false;
            } else if c > 0 {
                if c == 1 {
                    write!(f, " + x{i}")?;
                } else {
                    write!(f, " + {c}*x{i}")?;
                }
            } else if c == -1 {
                write!(f, " - x{i}")?;
            } else {
                write!(f, " - {}*x{i}", -c)?;
            }
        }
        if first {
            write!(f, "{} >= 0", self.constant)
        } else if self.constant == 0 {
            write!(f, " >= 0")
        } else if self.constant > 0 {
            write!(f, " + {} >= 0", self.constant)
        } else {
            write!(f, " - {} >= 0", -self.constant)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_divides_by_gcd() {
        let c = Constraint::new(vec![4, -6], 10);
        assert_eq!(c.coeffs(), &[2, -3]);
        assert_eq!(c.constant(), 5);
    }

    #[test]
    fn from_rationals_scales_exactly() {
        // x/2 - y/3 + 1/6 >= 0  =>  3x - 2y + 1 >= 0
        let c = Constraint::from_rationals(
            &[Rational::new(1, 2), Rational::new(-1, 3)],
            Rational::new(1, 6),
        )
        .unwrap();
        assert_eq!(c.coeffs(), &[3, -2]);
        assert_eq!(c.constant(), 1);
    }

    #[test]
    fn from_rationals_reports_overflow() {
        // Scaling 2^62/3 by lcm(3, 5) = 15 exceeds i64.
        let err = Constraint::from_rationals(
            &[Rational::new(1 << 62, 3), Rational::new(1, 5)],
            Rational::new(0, 1),
        )
        .unwrap_err();
        assert!(matches!(err, PolytopeError::Overflow { .. }));
        // The same shape with small numerators stays exact.
        let ok = Constraint::from_rationals(
            &[Rational::new(1, 3), Rational::new(1, 5)],
            Rational::new(0, 1),
        )
        .unwrap();
        assert_eq!(ok.coeffs(), &[5, 3]);
    }

    #[test]
    fn eval_and_satisfaction() {
        let c = Constraint::new(vec![1, -1], 0); // x >= y
        assert!(c.satisfied_by(&[3, 2]));
        assert!(c.satisfied_by(&[2, 2]));
        assert!(!c.satisfied_by(&[1, 2]));
        assert_eq!(c.eval(&[5, 1]), 4);
        assert_eq!(c.eval_without(&[5, 1], 0), -1);
    }

    #[test]
    fn bounds_constructors() {
        let lo = Constraint::lower_bound(3, 1, -2); // x1 >= -2
        assert!(lo.satisfied_by(&[0, -2, 0]));
        assert!(!lo.satisfied_by(&[0, -3, 0]));
        let hi = Constraint::upper_bound(3, 2, 7); // x2 <= 7
        assert!(hi.satisfied_by(&[0, 0, 7]));
        assert!(!hi.satisfied_by(&[0, 0, 8]));
    }

    #[test]
    fn combine_cancels_variable() {
        // x - 3 >= 0 (lower) and -2x + 11 >= 0 (upper): FM combines with
        // λ = -u_k = 2, μ = l_k = 1 to cancel x.
        let l = Constraint::new(vec![1], -3);
        let u = Constraint::new(vec![-2], 11);
        let c = l.combine(-u.coeff(0), &u, l.coeff(0)).unwrap();
        assert_eq!(c.coeffs(), &[0]);
        // Raw combination is 0·x + 5 ≥ 0; normalization divides by gcd 5.
        assert_eq!(c.constant(), 1);
        assert!(c.is_tautology());
    }

    #[test]
    fn combine_reports_overflow() {
        // Primitive coefficient vectors (gcd 1) whose FM combination
        // overflows i64: λ ≈ 2^40 times a coefficient ≈ 2^31.
        let big = (1_i64 << 40) + 1;
        let l = Constraint::new(vec![big, 1], 0);
        let u = Constraint::new(vec![-big, (1 << 31) + 1], 0);
        let err = l.combine(big, &u, big).unwrap_err();
        assert!(matches!(err, PolytopeError::Overflow { .. }));
        // Modest multipliers on the same constraints stay exact.
        assert!(l.combine(1, &u, 1).is_ok());
    }

    #[test]
    fn eval_is_exact_at_i64_extremes() {
        // i128 evaluation cannot overflow even at the coefficient extremes
        // that used to panic the checked i64 narrowing.
        let m = i64::MAX as i128;
        // Coprime coefficients so normalization keeps the magnitudes.
        let c = Constraint::new(vec![i64::MAX, i64::MAX - 1], i64::MAX);
        assert_eq!(c.eval(&[i64::MAX, i64::MAX]), m * 2 * m);
        assert_eq!(c.eval_without(&[i64::MAX, i64::MAX], 0), m * m);
    }

    #[test]
    fn tautology_and_contradiction() {
        assert!(Constraint::new(vec![0, 0], 5).is_tautology());
        assert!(Constraint::new(vec![0, 0], 0).is_tautology());
        assert!(Constraint::new(vec![0, 0], -1).is_contradiction());
        assert!(!Constraint::new(vec![1, 0], -1).is_contradiction());
    }
}
