//! Typed errors for the exact polyhedral computations.
//!
//! Every arithmetic step in this crate is exact over `i64` coefficients
//! (intermediates widen to `i128`). When a result genuinely does not fit
//! back into `i64` — reachable from user-authored kernels with very large
//! bound coefficients — the operation reports [`PolytopeError::Overflow`]
//! instead of panicking, and plan construction surfaces it as a typed
//! compile error.

/// Errors produced by exact polyhedral computations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolytopeError {
    /// An exact computation produced a coefficient or constant outside the
    /// `i64` range. `context` names the operation that overflowed.
    Overflow {
        /// The operation that overflowed (static description).
        context: &'static str,
    },
}

impl std::fmt::Display for PolytopeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PolytopeError::Overflow { context } => {
                write!(f, "polytope coefficient overflow: {context}")
            }
        }
    }
}

impl std::error::Error for PolytopeError {}
