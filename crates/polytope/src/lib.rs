//! # tilecc-polytope
//!
//! Convex iteration spaces for the `tilecc` compiler framework — affine
//! inequality systems, exact Fourier–Motzkin elimination, loop-bound
//! extraction, and lexicographic integer-point scanning.
//!
//! The paper (*"Compiling Tiled Iteration Spaces for Clusters"*, CLUSTER
//! 2002, §2.1) works with iteration spaces defined as bisections of finitely
//! many half-spaces of `Zⁿ`, with loop bounds of the form
//! `l_k = max(⌈f_k1⌉, …)` and `u_k = min(⌊g_k1⌋, …)` in the outer variables.
//! [`Polyhedron`] is that representation; [`LoopNestBounds`] is the
//! compile-time bound computation; [`PointIter`] is the executable loop nest.

pub mod constraint;
pub mod error;
pub mod polyhedron;

pub use constraint::Constraint;
pub use error::PolytopeError;
pub use polyhedron::{LoopNestBounds, PointIter, Polyhedron};
