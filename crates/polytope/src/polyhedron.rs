//! Convex polyhedra as conjunctions of affine inequalities, with
//! Fourier–Motzkin elimination.
//!
//! The paper's iteration spaces (§2.1) are exactly such polyhedra: bisections
//! of finitely many half-spaces of `Zⁿ`. Fourier–Motzkin elimination computes
//! the loop bounds `l_k = max(⌈f_k1⌉, …)` / `u_k = min(⌊g_k1⌋, …)` of both the
//! original nest and the tile space `J^S` (§2.3).

use crate::constraint::Constraint;
use crate::error::PolytopeError;
use std::collections::HashSet;

/// A convex polyhedron `{ x ∈ Qⁿ | A·x + b ≥ 0 }`.
#[derive(Clone, Debug)]
pub struct Polyhedron {
    dim: usize,
    constraints: Vec<Constraint>,
}

impl Polyhedron {
    /// The universe polyhedron (no constraints) of the given dimension.
    pub fn universe(dim: usize) -> Self {
        Polyhedron {
            dim,
            constraints: vec![],
        }
    }

    /// An axis-aligned integer box `lo_k ≤ x_k ≤ hi_k` (inclusive).
    pub fn from_box(lo: &[i64], hi: &[i64]) -> Self {
        assert_eq!(lo.len(), hi.len());
        let dim = lo.len();
        let mut p = Polyhedron::universe(dim);
        for k in 0..dim {
            p.add(Constraint::lower_bound(dim, k, lo[k]));
            p.add(Constraint::upper_bound(dim, k, hi[k]));
        }
        p
    }

    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Add a constraint. Tautologies are dropped, exact duplicates are
    /// deduplicated, and *parallel* constraints (identical coefficient
    /// vectors) are merged keeping only the tighter one — essential to keep
    /// Fourier–Motzkin constraint growth under control.
    pub fn add(&mut self, c: Constraint) {
        assert_eq!(c.dim(), self.dim, "constraint dimension mismatch");
        if c.is_tautology() {
            return;
        }
        for existing in &mut self.constraints {
            if existing.coeffs() == c.coeffs() {
                // a·x + b1 ≥ 0 and a·x + b2 ≥ 0: the smaller constant binds.
                if c.constant() < existing.constant() {
                    *existing = c;
                }
                return;
            }
        }
        self.constraints.push(c);
    }

    /// Intersection with another polyhedron of the same dimension.
    pub fn intersect(&self, other: &Polyhedron) -> Polyhedron {
        assert_eq!(self.dim, other.dim);
        let mut out = self.clone();
        for c in &other.constraints {
            out.add(c.clone());
        }
        out
    }

    /// True iff the integer point `x` satisfies all constraints.
    pub fn contains(&self, x: &[i64]) -> bool {
        self.constraints.iter().all(|c| c.satisfied_by(x))
    }

    /// True iff the rational point `x` satisfies all constraints. Used for
    /// convexity arguments (e.g. a tile whose rational corners are all inside
    /// is entirely inside).
    pub fn contains_rational(&self, x: &[tilecc_linalg::Rational]) -> bool {
        use tilecc_linalg::Rational;
        self.constraints.iter().all(|c| {
            let mut acc = Rational::from_int(c.constant());
            for (k, &coef) in c.coeffs().iter().enumerate() {
                acc += Rational::from_int(coef) * x[k];
            }
            !acc.is_negative()
        })
    }

    /// True iff an explicit contradiction (`0 ≥ k`, `k > 0`) is present.
    pub fn has_contradiction(&self) -> bool {
        self.constraints.iter().any(|c| c.is_contradiction())
    }

    /// Exact rational emptiness test: eliminate every variable with
    /// Fourier–Motzkin; the polyhedron is empty iff a contradiction
    /// (`0 ≥ k`, `k > 0`) appears in the fully eliminated system.
    pub fn is_empty_rational(&self) -> Result<bool, PolytopeError> {
        let mut p = self.clone();
        for k in (0..self.dim).rev() {
            if p.has_contradiction() {
                return Ok(true);
            }
            p = p.eliminate(k)?;
        }
        Ok(p.has_contradiction())
    }

    /// Remove constraints that are redundant over the *integer* points:
    /// constraint `a·x + b ≥ 0` is dropped iff
    /// `(P \ c) ∧ (−a·x − b − 1 ≥ 0)` is rationally empty. Any integer
    /// violator of `c` has `a·x + b ≤ −1` and would witness that system, so
    /// removal preserves the integer point set exactly (it may enlarge the
    /// rational relaxation by less than one unit along `a`).
    pub fn remove_redundant(&self) -> Result<Polyhedron, PolytopeError> {
        let mut kept: Vec<Constraint> = self.constraints.clone();
        let mut i = 0;
        while i < kept.len() {
            let candidate = kept[i].clone();
            // Build P' = (kept \ candidate) ∧ ¬candidate.
            let mut test = Polyhedron::universe(self.dim);
            for (j, c) in kept.iter().enumerate() {
                if j != i {
                    test.add(c.clone());
                }
            }
            let neg = Constraint::new(
                candidate.coeffs().iter().map(|&v| -v).collect(),
                -candidate.constant() - 1,
            );
            test.add(neg);
            if test.is_empty_rational()? {
                kept.remove(i);
            } else {
                i += 1;
            }
        }
        Ok(Polyhedron {
            dim: self.dim,
            constraints: kept,
        })
    }

    /// Fourier–Motzkin elimination of variable `k`. The result is a
    /// polyhedron over the remaining `dim − 1` variables that is the exact
    /// rational shadow (projection) of `self`.
    pub fn eliminate(&self, k: usize) -> Result<Polyhedron, PolytopeError> {
        assert!(k < self.dim, "variable out of range");
        let drop_var = |c: &Constraint| -> Constraint {
            let coeffs: Vec<i64> = c
                .coeffs()
                .iter()
                .enumerate()
                .filter(|&(i, _)| i != k)
                .map(|(_, &v)| v)
                .collect();
            Constraint::new(coeffs, c.constant())
        };

        let mut lowers = vec![]; // coeff of x_k > 0
        let mut uppers = vec![]; // coeff of x_k < 0
        let mut out = Polyhedron::universe(self.dim - 1);
        // One dedup set shared by pass-throughs and combinations: a lower ×
        // upper pair frequently reproduces a constraint that passed through
        // with a zero coefficient, and the zero arm used to bypass `seen`,
        // leaving every such duplicate to `add`'s linear merge scan on each
        // of the nested projections in `LoopNestBounds::new`.
        let mut seen: HashSet<Constraint> = HashSet::new();
        for c in &self.constraints {
            match c.coeff(k).signum() {
                0 => {
                    let dropped = drop_var(c);
                    if seen.insert(dropped.clone()) {
                        out.add(dropped);
                    }
                }
                1.. => lowers.push(c),
                _ => uppers.push(c),
            }
        }
        for l in &lowers {
            for u in &uppers {
                // λ·l + μ·u with λ = -u_k, μ = l_k cancels x_k.
                let combined = l.combine(-u.coeff(k), u, l.coeff(k))?;
                debug_assert_eq!(combined.coeff(k), 0);
                let projected = drop_var(&combined);
                if seen.insert(projected.clone()) {
                    out.add(projected);
                }
            }
        }
        Ok(out)
    }

    /// Project onto the first `m` variables by eliminating variables
    /// `m, m+1, …, dim−1`.
    ///
    /// The eliminations commute, so the order is chosen greedily (the
    /// variable with the smallest lower×upper product first) and redundant
    /// constraints are pruned whenever the system grows past a threshold —
    /// plain innermost-first elimination can blow up double-exponentially
    /// on the dense constraint systems produced by skewed tilings.
    pub fn project_onto_first(&self, m: usize) -> Result<Polyhedron, PolytopeError> {
        assert!(m <= self.dim);
        let mut p = self.clone();
        // Track the *original* indices still to eliminate; each eliminate
        // shifts later variables down by one.
        let mut remaining: Vec<usize> = (m..self.dim).collect();
        while !remaining.is_empty() {
            // Greedy: cheapest variable (fewest new constraints) first.
            let (pos, &var) = remaining
                .iter()
                .enumerate()
                .min_by_key(|&(_, &v)| {
                    let mut lo = 0usize;
                    let mut hi = 0usize;
                    for c in p.constraints() {
                        match c.coeff(v).signum() {
                            1 => lo += 1,
                            -1 => hi += 1,
                            _ => {}
                        }
                    }
                    lo * hi
                })
                .expect("non-empty remaining");
            p = p.eliminate(var)?;
            remaining.remove(pos);
            for r in &mut remaining {
                if *r > var {
                    *r -= 1;
                }
            }
            if p.constraints.len() > 64 {
                p = p.remove_redundant()?;
            }
        }
        Ok(p)
    }

    /// Exact rational bounds of variable `k` given fixed values of *all other
    /// variables in `outer` being authoritative for indices `< k` only*:
    /// returns `(max lower, min upper)` as integers, i.e. the loop bounds
    /// `l_k ≤ x_k ≤ u_k` with ceiling/floor applied. Constraints mentioning
    /// variables `> k` must have been eliminated beforehand.
    ///
    /// Returns `None` if the range is empty or unbounded on either side.
    pub fn integer_bounds(&self, k: usize, outer: &[i64]) -> Option<(i64, i64)> {
        assert!(k < self.dim);
        assert!(outer.len() >= k, "need values for all outer variables");
        // Bound arithmetic is exact in i128; a final bound outside i64 means
        // the range is un-enumerable anyway and is reported as absent.
        let mut lo: Option<i128> = None;
        let mut hi: Option<i128> = None;
        // Pad the point so eval_without can index every variable.
        let mut x = vec![0i64; self.dim];
        x[..k].copy_from_slice(&outer[..k]);
        for c in &self.constraints {
            debug_assert!(
                c.coeffs()[k + 1..].iter().all(|&v| v == 0),
                "integer_bounds requires inner variables to be eliminated"
            );
            let a = c.coeff(k) as i128;
            if a == 0 {
                // Constraint only involves outer variables (or is a pure
                // contradiction): if violated, the range is empty.
                if c.eval_without(&x, k) < 0 {
                    return None;
                }
                continue;
            }
            let rest = c.eval_without(&x, k);
            if a > 0 {
                // a·x_k + rest ≥ 0 ⇒ x_k ≥ ⌈-rest / a⌉
                let b = (-rest).div_euclid(a) + i128::from((-rest).rem_euclid(a) != 0);
                lo = Some(lo.map_or(b, |v| v.max(b)));
            } else {
                // a·x_k + rest ≥ 0 ⇒ x_k ≤ ⌊rest / (-a)⌋
                let b = rest.div_euclid(-a);
                hi = Some(hi.map_or(b, |v| v.min(b)));
            }
        }
        match (lo, hi) {
            (Some(l), Some(h)) if l <= h => match (i64::try_from(l), i64::try_from(h)) {
                (Ok(l), Ok(h)) => Some((l, h)),
                _ => None,
            },
            _ => None,
        }
    }
}

/// Precomputed loop-nest bounds: system `k` constrains variables `0..=k`
/// only, obtained by eliminating all inner variables. Together they drive a
/// lexicographic scan of the integer points (the generated loop nest).
#[derive(Clone, Debug)]
pub struct LoopNestBounds {
    /// `systems[k]` is `P` projected onto the first `k+1` variables.
    systems: Vec<Polyhedron>,
    dim: usize,
}

impl LoopNestBounds {
    /// Compute the bounds systems for all loop levels of `p`.
    pub fn new(p: &Polyhedron) -> Result<Self, PolytopeError> {
        let dim = p.dim();
        let mut systems = Vec::with_capacity(dim);
        for k in 0..dim {
            systems.push(p.project_onto_first(k + 1)?);
        }
        Ok(LoopNestBounds { systems, dim })
    }

    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Loop bounds of level `k` given the values of the outer variables.
    /// These are the paper's `l_k` / `u_k` expressions evaluated at runtime.
    pub fn bounds(&self, k: usize, outer: &[i64]) -> Option<(i64, i64)> {
        self.systems[k].integer_bounds(k, outer)
    }

    /// Iterate the integer points in lexicographic order.
    pub fn points(&self) -> PointIter<'_> {
        PointIter::new(self)
    }
}

/// Lexicographic iterator over the integer points of a polyhedron, driven by
/// [`LoopNestBounds`] — the executable analogue of the generated loop nest.
pub struct PointIter<'a> {
    bounds: &'a LoopNestBounds,
    point: Vec<i64>,
    hi: Vec<i64>,
    done: bool,
}

impl<'a> PointIter<'a> {
    fn new(bounds: &'a LoopNestBounds) -> Self {
        let dim = bounds.dim();
        let mut it = PointIter {
            bounds,
            point: vec![0; dim],
            hi: vec![0; dim],
            done: false,
        };
        if !it.seek(0) {
            it.done = true;
        }
        it
    }

    /// Rewind levels `from..` to their lower bounds, backtracking when a
    /// level's range is empty (FM shadows can over-approximate integer
    /// projections, so empty inner ranges are expected and handled).
    #[allow(clippy::mut_range_bound)] // `from` feeds the *next* 'outer pass
    fn seek(&mut self, mut from: usize) -> bool {
        let dim = self.bounds.dim();
        'outer: loop {
            for lvl in from..dim {
                match self.bounds.bounds(lvl, &self.point[..lvl]) {
                    Some((lo, hi)) => {
                        self.point[lvl] = lo;
                        self.hi[lvl] = hi;
                    }
                    None => {
                        // Step the deepest earlier level with room.
                        let mut k = lvl;
                        while k > 0 {
                            k -= 1;
                            if self.point[k] < self.hi[k] {
                                self.point[k] += 1;
                                from = k + 1;
                                continue 'outer;
                            }
                        }
                        return false;
                    }
                }
            }
            return true;
        }
    }

    fn advance(&mut self) {
        let dim = self.bounds.dim();
        let mut k = dim;
        while k > 0 {
            k -= 1;
            if self.point[k] < self.hi[k] {
                self.point[k] += 1;
                if self.seek(k + 1) {
                    return;
                }
                // seek() already backtracked to exhaustion.
                self.done = true;
                return;
            }
        }
        self.done = true;
    }
}

impl<'a> Iterator for PointIter<'a> {
    type Item = Vec<i64>;

    fn next(&mut self) -> Option<Vec<i64>> {
        if self.done {
            return None;
        }
        let out = self.point.clone();
        self.advance();
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emptiness_detection() {
        let mut p = Polyhedron::from_box(&[0, 0], &[5, 5]);
        assert!(!p.is_empty_rational().unwrap());
        p.add(Constraint::new(vec![1, 1], -100));
        assert!(p.is_empty_rational().unwrap());
        // A rationally non-empty sliver.
        let mut q = Polyhedron::universe(1);
        q.add(Constraint::new(vec![2], -1)); // x >= 1/2
        q.add(Constraint::new(vec![-2], 1)); // x <= 1/2
        assert!(!q.is_empty_rational().unwrap());
    }

    #[test]
    fn redundant_constraints_are_removed() {
        let mut p = Polyhedron::from_box(&[0, 0], &[4, 4]);
        p.add(Constraint::new(vec![1, 0], 10)); // x >= -10: redundant
        p.add(Constraint::new(vec![-1, -1], 100)); // x + y <= 100: redundant
        let r = p.remove_redundant().unwrap();
        assert_eq!(r.constraints().len(), 4, "{:?}", r.constraints());
        // Same integer point set.
        for x in -1..6 {
            for y in -1..6 {
                assert_eq!(p.contains(&[x, y]), r.contains(&[x, y]));
            }
        }
    }

    #[test]
    fn remove_redundant_keeps_binding_constraints() {
        let mut p = Polyhedron::from_box(&[0, 0], &[8, 8]);
        p.add(Constraint::new(vec![-1, -1], 9)); // x + y <= 9 binds
        let r = p.remove_redundant().unwrap();
        assert!(r.constraints().len() >= 5 - 1);
        assert!(!r.contains(&[8, 8]));
        assert!(r.contains(&[4, 5]));
    }

    #[test]
    fn box_membership() {
        let p = Polyhedron::from_box(&[0, 0], &[3, 2]);
        assert!(p.contains(&[0, 0]));
        assert!(p.contains(&[3, 2]));
        assert!(!p.contains(&[4, 0]));
        assert!(!p.contains(&[0, -1]));
    }

    #[test]
    fn eliminate_projects_triangle() {
        // Triangle: x >= 0, y >= 0, x + y <= 4. Projecting out y gives 0 <= x <= 4.
        let mut p = Polyhedron::universe(2);
        p.add(Constraint::new(vec![1, 0], 0));
        p.add(Constraint::new(vec![0, 1], 0));
        p.add(Constraint::new(vec![-1, -1], 4));
        let q = p.eliminate(1).unwrap();
        assert_eq!(q.dim(), 1);
        assert!(q.contains(&[0]));
        assert!(q.contains(&[4]));
        assert!(!q.contains(&[5]));
        assert!(!q.contains(&[-1]));
    }

    #[test]
    fn loop_bounds_of_triangle() {
        let mut p = Polyhedron::universe(2);
        p.add(Constraint::new(vec![1, 0], 0));
        p.add(Constraint::new(vec![0, 1], 0));
        p.add(Constraint::new(vec![-1, -1], 4));
        let b = LoopNestBounds::new(&p).unwrap();
        assert_eq!(b.bounds(0, &[]), Some((0, 4)));
        assert_eq!(b.bounds(1, &[0]), Some((0, 4)));
        assert_eq!(b.bounds(1, &[4]), Some((0, 0)));
        let pts: Vec<_> = b.points().collect();
        assert_eq!(pts.len(), 5 + 4 + 3 + 2 + 1);
        assert_eq!(pts[0], vec![0, 0]);
        assert_eq!(pts.last().unwrap(), &vec![4, 0]);
    }

    #[test]
    fn points_match_brute_force_on_skewed_space() {
        // Skewed SOR-like space: 1 <= t <= 3, t+1 <= i <= t+4, 2t+i-? keep 3D small:
        let mut p = Polyhedron::universe(3);
        p.add(Constraint::new(vec![1, 0, 0], -1)); // t >= 1
        p.add(Constraint::new(vec![-1, 0, 0], 3)); // t <= 3
        p.add(Constraint::new(vec![-1, 1, 0], -1)); // i >= t+1
        p.add(Constraint::new(vec![1, -1, 0], 4)); // i <= t+4
        p.add(Constraint::new(vec![-2, 0, 1], -1)); // j >= 2t+1
        p.add(Constraint::new(vec![2, 0, -1], 5)); // j <= 2t+5
        let b = LoopNestBounds::new(&p).unwrap();
        let fast: Vec<_> = b.points().collect();
        let mut slow = vec![];
        for t in -1..6 {
            for i in -1..10 {
                for j in -1..14 {
                    if p.contains(&[t, i, j]) {
                        slow.push(vec![t, i, j]);
                    }
                }
            }
        }
        assert_eq!(fast, slow);
        assert_eq!(fast.len(), 3 * 4 * 5);
    }

    #[test]
    fn empty_polyhedron_yields_no_points() {
        let mut p = Polyhedron::from_box(&[0, 0], &[5, 5]);
        p.add(Constraint::new(vec![1, 1], -100)); // x + y >= 100: impossible
        let b = LoopNestBounds::new(&p).unwrap();
        assert_eq!(b.points().count(), 0);
    }

    #[test]
    fn fm_shadow_with_empty_integer_columns() {
        // 2x <= y <= 2x + 1 within 0 <= y <= 9, x unbounded below/above by y.
        // For every x in 0..=4 there are points; the scan must skip nothing.
        let mut p = Polyhedron::universe(2);
        p.add(Constraint::new(vec![-2, 1], 0)); // y >= 2x
        p.add(Constraint::new(vec![2, -1], 1)); // y <= 2x + 1
        p.add(Constraint::new(vec![0, 1], 0)); // y >= 0
        p.add(Constraint::new(vec![0, -1], 9)); // y <= 9
        let b = LoopNestBounds::new(&p).unwrap();
        let pts: Vec<_> = b.points().collect();
        for pt in &pts {
            assert!(p.contains(pt));
        }
        assert_eq!(pts.len(), 10);
    }

    #[test]
    fn intersect_combines_constraints() {
        let a = Polyhedron::from_box(&[0, 0], &[10, 10]);
        let c = Polyhedron::from_box(&[5, 5], &[15, 15]);
        let i = a.intersect(&c);
        assert!(i.contains(&[5, 10]));
        assert!(!i.contains(&[4, 10]));
        assert!(!i.contains(&[5, 11]));
    }

    #[test]
    fn integer_bounds_rounds_correctly() {
        // 3 <= 2x <= 9  =>  2 <= x <= 4
        let mut p = Polyhedron::universe(1);
        p.add(Constraint::new(vec![2], -3));
        p.add(Constraint::new(vec![-2], 9));
        assert_eq!(p.integer_bounds(0, &[]), Some((2, 4)));
    }

    #[test]
    fn unbounded_direction_gives_none() {
        let mut p = Polyhedron::universe(1);
        p.add(Constraint::new(vec![1], 0)); // x >= 0, no upper bound
        assert_eq!(p.integer_bounds(0, &[]), None);
    }

    #[test]
    fn eliminate_dedups_pass_throughs_against_combinations() {
        // The combination of y ≥ 0 with x + y ≤ 4 reproduces the pass-through
        // x ≤ 4 exactly; the shared `seen` set must collapse them so repeated
        // projections never accumulate copies of the same constraint.
        let mut p = Polyhedron::universe(2);
        p.add(Constraint::new(vec![1, 0], 0)); // x >= 0 (pass-through)
        p.add(Constraint::new(vec![-1, 0], 4)); // x <= 4 (pass-through)
        p.add(Constraint::new(vec![0, 1], 0)); // y >= 0
        p.add(Constraint::new(vec![-1, -1], 4)); // x + y <= 4
        let q = p.eliminate(1).unwrap();
        assert_eq!(q.constraints().len(), 2, "{:?}", q.constraints());
    }

    #[test]
    fn repeated_projection_keeps_constraints_duplicate_free() {
        // The skewed 3D space from points_match_brute_force_on_skewed_space:
        // every projection level LoopNestBounds computes must stay free of
        // duplicate constraints (each set distinct and no count growth).
        let mut p = Polyhedron::universe(3);
        p.add(Constraint::new(vec![1, 0, 0], -1));
        p.add(Constraint::new(vec![-1, 0, 0], 3));
        p.add(Constraint::new(vec![-1, 1, 0], -1));
        p.add(Constraint::new(vec![1, -1, 0], 4));
        p.add(Constraint::new(vec![-2, 0, 1], -1));
        p.add(Constraint::new(vec![2, 0, -1], 5));
        for m in 1..=3 {
            let q = p.project_onto_first(m).unwrap();
            let distinct: HashSet<&Constraint> = q.constraints().iter().collect();
            assert_eq!(
                distinct.len(),
                q.constraints().len(),
                "duplicates after projecting onto first {m} vars"
            );
            assert!(q.constraints().len() <= 2 * m, "{:?}", q.constraints());
        }
    }

    #[test]
    fn elimination_overflow_is_reported_not_panicked() {
        // FM multipliers of ~2^40 against coefficients of ~2^31 push the
        // combined coefficient past i64; every fallible entry point must
        // surface the typed error instead of panicking.
        let big = (1_i64 << 40) + 1;
        let mut p = Polyhedron::universe(2);
        p.add(Constraint::new(vec![big, 1], 0));
        p.add(Constraint::new(vec![-big, -(1 << 31) - 1], 0));
        assert!(matches!(
            p.eliminate(0),
            Err(PolytopeError::Overflow { .. })
        ));
        assert!(p.eliminate(1).is_err());
        assert!(p.is_empty_rational().is_err());
        assert!(p.project_onto_first(0).is_err());
        assert!(LoopNestBounds::new(&p).is_err());
    }
}
