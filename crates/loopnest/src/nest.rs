//! The perfectly nested loop model of the paper (§2.1).
//!
//! An algorithm is an `n`-deep perfect nest over a convex iteration space
//! `J^n ⊂ Zⁿ` with uniform constant dependencies `D = {d_1, …, d_q}`. The
//! dependence matrix stores the dependence vectors as columns.

use tilecc_linalg::vecops::is_lex_positive;
use tilecc_linalg::{IMat, Rational};
use tilecc_polytope::{Constraint, LoopNestBounds, Polyhedron, PolytopeError};

/// A perfect loop nest: iteration space plus uniform dependence matrix.
#[derive(Clone, Debug)]
pub struct LoopNest {
    dim: usize,
    space: Polyhedron,
    /// `n × q`: column `i` is dependence vector `d_i`.
    deps: IMat,
}

impl LoopNest {
    /// Create a nest; validates dimensions and that every dependence vector
    /// is lexicographically positive (sequential execution in lexicographic
    /// order is legal).
    pub fn new(space: Polyhedron, deps: IMat) -> Self {
        let dim = space.dim();
        assert_eq!(
            deps.rows(),
            dim,
            "dependence vectors must have the nest's dimension"
        );
        for q in 0..deps.cols() {
            let d = deps.col(q);
            assert!(
                is_lex_positive(&d),
                "dependence vector {d:?} is not lexicographically positive"
            );
        }
        LoopNest { dim, space, deps }
    }

    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    #[inline]
    pub fn space(&self) -> &Polyhedron {
        &self.space
    }

    #[inline]
    pub fn deps(&self) -> &IMat {
        &self.deps
    }

    /// Number of dependence vectors `q`.
    #[inline]
    pub fn num_deps(&self) -> usize {
        self.deps.cols()
    }

    /// Apply a unimodular skewing transformation `T`: iterations `j` become
    /// `j' = T·j`, dependence vectors become `T·d`, and the iteration space
    /// constraints are rewritten via `j = T⁻¹·j'`.
    ///
    /// # Panics
    /// Panics if `T` is not unimodular (|det| = 1).
    pub fn skew(&self, t: &IMat) -> LoopNest {
        assert!(
            t.is_square() && t.rows() == self.dim,
            "skewing matrix shape mismatch"
        );
        assert_eq!(t.det().abs(), 1, "skewing matrix must be unimodular");
        let t_inv = t.inverse(); // integral because T is unimodular
        let t_inv_i = t_inv.to_imat();
        let mut space = Polyhedron::universe(self.dim);
        for c in self.space.constraints() {
            // a·j + b ≥ 0 with j = T⁻¹·j'  ⇒  (a·T⁻¹)·j' + b ≥ 0.
            let a: Vec<Rational> = (0..self.dim)
                .map(|col| {
                    let mut acc = Rational::ZERO;
                    for row in 0..self.dim {
                        acc += Rational::from_int(c.coeff(row)) * t_inv[(row, col)];
                    }
                    acc
                })
                .collect();
            space.add(
                Constraint::from_rationals(&a, Rational::from_int(c.constant()))
                    .expect("unimodular skewing keeps coefficients in i64"),
            );
        }
        let deps = t.mul(&self.deps);
        // Sanity: unimodular skewing maps integer points bijectively.
        debug_assert_eq!(t_inv_i.mul(t), IMat::identity(self.dim));
        LoopNest::new(space, deps)
    }

    /// Precompute loop bounds for lexicographic scanning.
    ///
    /// # Panics
    /// Panics on coefficient overflow; plan construction validates the space
    /// through [`LoopNest::try_bounds`] first, so post-plan callers can rely
    /// on this infallible form.
    pub fn bounds(&self) -> LoopNestBounds {
        self.try_bounds()
            .expect("loop bounds overflow: space not validated by plan construction")
    }

    /// Fallible form of [`LoopNest::bounds`], surfacing coefficient overflow
    /// from user-authored spaces as a typed error.
    pub fn try_bounds(&self) -> Result<LoopNestBounds, PolytopeError> {
        LoopNestBounds::new(&self.space)
    }

    /// Inclusive bounding box `(lo, hi)` of the iteration space.
    ///
    /// # Panics
    /// Panics if the space is empty or unbounded, or on coefficient overflow
    /// (see [`LoopNest::try_bounding_box`]).
    pub fn bounding_box(&self) -> (Vec<i64>, Vec<i64>) {
        self.try_bounding_box()
            .expect("bounding box overflow: space not validated by plan construction")
            .expect("iteration space must be non-empty and bounded")
    }

    /// Fallible form of [`LoopNest::bounding_box`]: `Err` on coefficient
    /// overflow, `Ok(None)` if the space is empty or unbounded.
    #[allow(clippy::type_complexity)]
    pub fn try_bounding_box(&self) -> Result<Option<(Vec<i64>, Vec<i64>)>, PolytopeError> {
        let mut lo = vec![0i64; self.dim];
        let mut hi = vec![0i64; self.dim];
        for k in 0..self.dim {
            // Project onto variable k alone by eliminating all others.
            let mut p = self.space.clone();
            for v in (0..self.dim).rev() {
                if v != k {
                    p = p.eliminate(v)?;
                }
            }
            let Some((l, h)) = p.integer_bounds(0, &[]) else {
                return Ok(None);
            };
            lo[k] = l;
            hi[k] = h;
        }
        Ok(Some((lo, hi)))
    }

    /// Total number of integer points (exact, by scanning).
    pub fn num_points(&self) -> usize {
        self.bounds().points().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn box_nest() -> LoopNest {
        let space = Polyhedron::from_box(&[1, 1], &[4, 5]);
        let deps = IMat::from_rows(&[&[1, 0], &[0, 1]]);
        LoopNest::new(space, deps)
    }

    #[test]
    fn num_points_of_box() {
        assert_eq!(box_nest().num_points(), 4 * 5);
    }

    #[test]
    fn bounding_box_round_trip() {
        let (lo, hi) = box_nest().bounding_box();
        assert_eq!(lo, vec![1, 1]);
        assert_eq!(hi, vec![4, 5]);
    }

    #[test]
    #[should_panic(expected = "lexicographically positive")]
    fn rejects_non_positive_dependence() {
        let space = Polyhedron::from_box(&[0, 0], &[3, 3]);
        let deps = IMat::from_rows(&[&[0, 1], &[-1, 0]]); // (0,-1) is lex-negative
        let _ = LoopNest::new(space, deps);
    }

    #[test]
    fn skew_preserves_point_count_and_transforms_deps() {
        let nest = box_nest();
        let t = IMat::from_rows(&[&[1, 0], &[1, 1]]);
        let skewed = nest.skew(&t);
        assert_eq!(skewed.num_points(), nest.num_points());
        // d = (1,0) -> (1,1); d = (0,1) -> (0,1)
        assert_eq!(skewed.deps().col(0), vec![1, 1]);
        assert_eq!(skewed.deps().col(1), vec![0, 1]);
        // The image of an original point is in the skewed space.
        assert!(skewed.space().contains(&[2, 2 + 3])); // (2,3) -> (2,5)
        assert!(!skewed.space().contains(&[2, 2])); // (2,0) not in original
    }

    #[test]
    #[should_panic(expected = "unimodular")]
    fn skew_rejects_non_unimodular() {
        let nest = box_nest();
        let t = IMat::from_rows(&[&[2, 0], &[0, 1]]);
        let _ = nest.skew(&t);
    }
}
