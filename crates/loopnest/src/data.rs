#![allow(clippy::needless_range_loop)] // index loops mirror the paper's matrix notation
//! Dense global data space keyed by the iteration-space bounding box.
//!
//! Following the paper's model (§2.1), the write reference `f_w` is the
//! identity, so the Data Space `DS` coincides with the iteration space and a
//! value is stored per iteration point. The paper notes its single-statement
//! single-array presentation is "only a notational restriction"; here each
//! cell holds `width ≥ 1` components — one per written array — so multiple
//! statements over multiple arrays (e.g. the real ADI with `X` and `B`)
//! fit the same machinery. Parallel executions gather their Local Data
//! Spaces back into this structure for comparison against the sequential
//! execution.

use std::fmt;

/// A dense `f64` array over an axis-aligned integer box, `width` components
/// per cell.
#[derive(Clone)]
pub struct DataSpace {
    lo: Vec<i64>,
    extents: Vec<i64>,
    width: usize,
    vals: Vec<f64>,
    written: Vec<bool>,
}

impl DataSpace {
    /// Allocate a single-component data space covering the inclusive box
    /// `[lo, hi]`, initialized to zero / unwritten.
    pub fn new(lo: &[i64], hi: &[i64]) -> Self {
        DataSpace::with_width(lo, hi, 1)
    }

    /// Allocate with `width` components per cell.
    pub fn with_width(lo: &[i64], hi: &[i64], width: usize) -> Self {
        assert_eq!(lo.len(), hi.len());
        assert!(width >= 1, "data space needs at least one component");
        let extents: Vec<i64> = lo
            .iter()
            .zip(hi)
            .map(|(&l, &h)| {
                assert!(h >= l, "empty data-space extent");
                h - l + 1
            })
            .collect();
        let total: i64 = extents.iter().product();
        let total = usize::try_from(total).expect("data space too large");
        DataSpace {
            lo: lo.to_vec(),
            extents,
            width,
            vals: vec![0.0; total * width],
            written: vec![false; total],
        }
    }

    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Components per cell.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Linear cell index of point `j`, or `None` when outside the box.
    pub fn index(&self, j: &[i64]) -> Option<usize> {
        assert_eq!(j.len(), self.dim(), "data space dimension mismatch");
        let mut idx: i64 = 0;
        for k in 0..self.dim() {
            let off = j[k] - self.lo[k];
            if off < 0 || off >= self.extents[k] {
                return None;
            }
            idx = idx * self.extents[k] + off;
        }
        Some(idx as usize)
    }

    /// Read component 0 at `j` (scalar convenience); `None` outside the box
    /// or never written.
    pub fn get(&self, j: &[i64]) -> Option<f64> {
        let idx = self.index(j)?;
        self.written[idx].then(|| self.vals[idx * self.width])
    }

    /// Read all components at `j`.
    pub fn get_all(&self, j: &[i64]) -> Option<&[f64]> {
        let idx = self.index(j)?;
        self.written[idx].then(|| &self.vals[idx * self.width..(idx + 1) * self.width])
    }

    /// Write component 0 at `j` (scalar convenience; other components are
    /// left untouched).
    ///
    /// # Panics
    /// Panics if `j` is outside the box.
    pub fn set(&mut self, j: &[i64], v: f64) {
        let idx = self.index(j).expect("write outside data space");
        self.vals[idx * self.width] = v;
        self.written[idx] = true;
    }

    /// Write all components at `j`.
    ///
    /// # Panics
    /// Panics if `j` is outside the box or `v` has the wrong width.
    pub fn set_all(&mut self, j: &[i64], v: &[f64]) {
        assert_eq!(v.len(), self.width, "component width mismatch");
        let idx = self.index(j).expect("write outside data space");
        self.vals[idx * self.width..(idx + 1) * self.width].copy_from_slice(v);
        self.written[idx] = true;
    }

    /// Row-major cell weights: `index(j) = Σ_k (j_k − lo_k) · weights[k]`.
    pub fn weights(&self) -> Vec<i64> {
        let n = self.dim();
        let mut w = vec![1i64; n];
        for k in (0..n.saturating_sub(1)).rev() {
            w[k] = w[k + 1] * self.extents[k + 1];
        }
        w
    }

    /// Signed flat cell index of `j` with **no range check** — may be
    /// negative or past the allocation. Used as the per-tile base of the
    /// compiled gather: the base itself (a tile's origin corner) may fall
    /// outside the box, but base + offset is in range for every real point.
    pub fn flat_cell_signed(&self, j: &[i64]) -> i64 {
        assert_eq!(j.len(), self.dim(), "data space dimension mismatch");
        let weights = self.weights();
        (0..self.dim())
            .map(|k| (j[k] - self.lo[k]) * weights[k])
            .sum()
    }

    /// Bulk write of all components at flat cell index `cell` (as returned
    /// by [`DataSpace::index`] / [`DataSpace::flat_cell_signed`]), marking
    /// the cell written — the compiled gather's strided-copy primitive.
    ///
    /// # Panics
    /// Panics if `cell` is outside the allocation or `v` has the wrong
    /// width.
    pub fn write_cell(&mut self, cell: usize, v: &[f64]) {
        assert_eq!(v.len(), self.width, "component width mismatch");
        self.vals[cell * self.width..(cell + 1) * self.width].copy_from_slice(v);
        self.written[cell] = true;
    }

    /// Bulk write of `count` *consecutive* cells starting at flat index
    /// `cell` from `count·width` values, marking each cell written — the
    /// run-coalesced gather's block-move primitive.
    ///
    /// # Panics
    /// Panics if the range is outside the allocation or `v` has the wrong
    /// length.
    pub fn write_cells(&mut self, cell: usize, count: usize, v: &[f64]) {
        assert_eq!(v.len(), count * self.width, "component width mismatch");
        self.vals[cell * self.width..(cell + count) * self.width].copy_from_slice(v);
        self.written[cell..cell + count].fill(true);
    }

    /// Number of written cells.
    pub fn num_written(&self) -> usize {
        self.written.iter().filter(|&&w| w).count()
    }

    /// Exact equality of written cells (position and bit pattern across all
    /// components). Returns the first differing point if any.
    pub fn diff(&self, other: &DataSpace) -> Option<Vec<i64>> {
        assert_eq!(self.lo, other.lo, "data spaces cover different boxes");
        assert_eq!(
            self.extents, other.extents,
            "data spaces cover different boxes"
        );
        assert_eq!(self.width, other.width, "data spaces have different widths");
        for idx in 0..self.written.len() {
            let same = self.written[idx] == other.written[idx]
                && (!self.written[idx]
                    || (0..self.width).all(|c| {
                        self.vals[idx * self.width + c].to_bits()
                            == other.vals[idx * self.width + c].to_bits()
                    }));
            if !same {
                return Some(self.unindex(idx));
            }
        }
        None
    }

    /// Inverse of [`DataSpace::index`].
    pub fn unindex(&self, mut idx: usize) -> Vec<i64> {
        let mut j = vec![0i64; self.dim()];
        for k in (0..self.dim()).rev() {
            let e = self.extents[k] as usize;
            j[k] = self.lo[k] + (idx % e) as i64;
            idx /= e;
        }
        j
    }

    /// A simple checksum over written cells (order-independent) used by
    /// benches to keep computations observable.
    pub fn checksum(&self) -> f64 {
        let mut acc = 0.0;
        for idx in 0..self.written.len() {
            if self.written[idx] {
                for c in 0..self.width {
                    acc += self.vals[idx * self.width + c];
                }
            }
        }
        acc
    }
}

impl fmt::Debug for DataSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DataSpace(lo={:?}, extents={:?}, width={}, written={}/{})",
            self.lo,
            self.extents,
            self.width,
            self.num_written(),
            self.written.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_round_trip() {
        let ds = DataSpace::new(&[-2, 3], &[4, 8]);
        for j0 in -2..=4 {
            for j1 in 3..=8 {
                let idx = ds.index(&[j0, j1]).unwrap();
                assert_eq!(ds.unindex(idx), vec![j0, j1]);
            }
        }
        assert_eq!(ds.index(&[5, 3]), None);
        assert_eq!(ds.index(&[-3, 3]), None);
        assert_eq!(ds.index(&[0, 9]), None);
    }

    #[test]
    fn written_tracking() {
        let mut ds = DataSpace::new(&[0, 0], &[1, 1]);
        assert_eq!(ds.get(&[0, 0]), None);
        ds.set(&[0, 0], 2.5);
        assert_eq!(ds.get(&[0, 0]), Some(2.5));
        assert_eq!(ds.num_written(), 1);
        assert_eq!(ds.get(&[7, 7]), None); // outside: None, not panic
    }

    #[test]
    fn flat_cells_match_index_and_write_cell_round_trips() {
        let mut ds = DataSpace::with_width(&[-2, 3], &[4, 8], 2);
        for j0 in -2..=4 {
            for j1 in 3..=8 {
                let j = [j0, j1];
                let idx = ds.index(&j).unwrap();
                assert_eq!(ds.flat_cell_signed(&j), idx as i64);
            }
        }
        // Signed index extrapolates linearly outside the box.
        assert_eq!(ds.flat_cell_signed(&[-3, 3]), -(ds.weights()[0]));
        let idx = ds.index(&[0, 5]).unwrap();
        ds.write_cell(idx, &[1.5, 2.5]);
        assert_eq!(ds.get_all(&[0, 5]), Some(&[1.5, 2.5][..]));
    }

    #[test]
    fn diff_detects_mismatch() {
        let mut a = DataSpace::new(&[0], &[3]);
        let mut b = DataSpace::new(&[0], &[3]);
        assert_eq!(a.diff(&b), None);
        a.set(&[2], 1.0);
        assert_eq!(a.diff(&b), Some(vec![2]));
        b.set(&[2], 1.0);
        assert_eq!(a.diff(&b), None);
        b.set(&[3], 9.0);
        assert_eq!(a.diff(&b), Some(vec![3]));
    }

    #[test]
    #[should_panic(expected = "write outside")]
    fn set_outside_panics() {
        let mut ds = DataSpace::new(&[0], &[3]);
        ds.set(&[4], 1.0);
    }

    #[test]
    fn multi_component_round_trip() {
        let mut ds = DataSpace::with_width(&[0, 0], &[2, 2], 2);
        assert_eq!(ds.width(), 2);
        ds.set_all(&[1, 1], &[3.0, 4.0]);
        assert_eq!(ds.get_all(&[1, 1]), Some(&[3.0, 4.0][..]));
        assert_eq!(ds.get(&[1, 1]), Some(3.0));
        assert_eq!(ds.get_all(&[0, 0]), None);
    }

    #[test]
    fn multi_component_diff_checks_every_component() {
        let mut a = DataSpace::with_width(&[0], &[1], 2);
        let mut b = DataSpace::with_width(&[0], &[1], 2);
        a.set_all(&[0], &[1.0, 2.0]);
        b.set_all(&[0], &[1.0, 2.5]);
        assert_eq!(a.diff(&b), Some(vec![0]));
        b.set_all(&[0], &[1.0, 2.0]);
        assert_eq!(a.diff(&b), None);
    }

    #[test]
    #[should_panic(expected = "component width mismatch")]
    fn wrong_width_write_panics() {
        let mut ds = DataSpace::with_width(&[0], &[1], 2);
        ds.set_all(&[0], &[1.0]);
    }
}
