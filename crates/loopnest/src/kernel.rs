//! Kernel semantics and the sequential reference executor.
//!
//! A [`Kernel`] provides the single-assignment statement body of the paper's
//! model: `A[j] := F(A[j − d_1], …, A[j − d_q])`. The dependence *order* is
//! fixed by the nest's dependence matrix columns; `reads[i]` is the value at
//! `j − d_i`. Reads that fall outside the iteration space take the kernel's
//! deterministic `initial` value (the algorithm's boundary conditions).
//!
//! The paper notes its single-statement/single-array model is "only a
//! notational restriction". [`MultiKernel`] lifts it: each iteration point
//! carries `width` components (one per written array), every dependence read
//! delivers all components of the source point, and the body computes all
//! components at once — enough to express e.g. the real ADI integration
//! with its `X` and `B` arrays (Table 3).

use crate::data::DataSpace;
use crate::nest::LoopNest;
use std::sync::Arc;
use tilecc_linalg::IMat;

/// Scalar (single-array) loop-body semantics.
pub trait Kernel: Send + Sync {
    /// Compute the value written at iteration `j`. `reads[i]` is the value of
    /// `A[j − d_i]` for the `i`-th column of the nest's dependence matrix.
    fn compute(&self, j: &[i64], reads: &[f64]) -> f64;

    /// Boundary value for points outside the iteration space.
    fn initial(&self, j: &[i64]) -> f64;
}

/// Multi-array loop-body semantics: `width` components per iteration point.
/// `reads` is laid out dependence-major: component `c` of dependence `q` is
/// `reads[q*width + c]`.
pub trait MultiKernel: Send + Sync {
    /// Number of components (written arrays).
    fn width(&self) -> usize;

    /// Compute all components written at iteration `j` into `out`
    /// (`out.len() == width`).
    fn compute(&self, j: &[i64], reads: &[f64], out: &mut [f64]);

    /// Boundary components for points outside the iteration space.
    fn initial(&self, j: &[i64], out: &mut [f64]);
}

/// Adapter: every scalar [`Kernel`] is a width-1 [`MultiKernel`].
struct ScalarKernel(Arc<dyn Kernel>);

impl MultiKernel for ScalarKernel {
    fn width(&self) -> usize {
        1
    }

    fn compute(&self, j: &[i64], reads: &[f64], out: &mut [f64]) {
        out[0] = self.0.compute(j, reads);
    }

    fn initial(&self, j: &[i64], out: &mut [f64]) {
        out[0] = self.0.initial(j);
    }
}

/// A nest paired with its body: a complete algorithm instance.
#[derive(Clone)]
pub struct Algorithm {
    pub name: String,
    pub nest: LoopNest,
    pub kernel: Arc<dyn MultiKernel>,
}

impl std::fmt::Debug for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Algorithm")
            .field("name", &self.name)
            .field("dim", &self.nest.dim())
            .field("width", &self.kernel.width())
            .field("deps", self.nest.deps())
            .finish_non_exhaustive()
    }
}

impl Algorithm {
    /// Build an algorithm from a scalar (single-array) kernel.
    pub fn new(name: impl Into<String>, nest: LoopNest, kernel: Arc<dyn Kernel>) -> Self {
        Algorithm {
            name: name.into(),
            nest,
            kernel: Arc::new(ScalarKernel(kernel)),
        }
    }

    /// Build an algorithm from a multi-array kernel.
    pub fn new_multi(
        name: impl Into<String>,
        nest: LoopNest,
        kernel: Arc<dyn MultiKernel>,
    ) -> Self {
        assert!(kernel.width() >= 1);
        Algorithm {
            name: name.into(),
            nest,
            kernel,
        }
    }

    /// Components per iteration point.
    #[inline]
    pub fn width(&self) -> usize {
        self.kernel.width()
    }

    /// Skew the algorithm by the unimodular matrix `T`. The kernel is
    /// wrapped so that boundary values (and any coordinate-dependent
    /// coefficients) are still evaluated in the *original* coordinates.
    pub fn skewed(&self, t: &IMat) -> Algorithm {
        let nest = self.nest.skew(t);
        let t_inv = t.inverse().to_imat();
        let kernel = Arc::new(SkewedKernel {
            inner: self.kernel.clone(),
            t_inv,
        });
        Algorithm {
            name: format!("{}-skewed", self.name),
            nest,
            kernel,
        }
    }

    /// Reference execution: scan `J^n` lexicographically (legal because all
    /// dependence vectors are lexicographically positive) and evaluate the
    /// kernel at every point. Returns the full data space.
    pub fn execute_sequential(&self) -> DataSpace {
        let (lo, hi) = self.nest.bounding_box();
        let w = self.width();
        let mut ds = DataSpace::with_width(&lo, &hi, w);
        let deps = self.nest.deps();
        let q = deps.cols();
        let bounds = self.nest.bounds();
        let mut reads = vec![0.0f64; q * w];
        let mut out = vec![0.0f64; w];
        let mut src = vec![0i64; self.nest.dim()];
        for j in bounds.points() {
            for i in 0..q {
                for k in 0..self.nest.dim() {
                    src[k] = j[k] - deps[(k, i)];
                }
                match ds.get_all(&src) {
                    Some(v) => reads[i * w..(i + 1) * w].copy_from_slice(v),
                    None => self.kernel.initial(&src, &mut reads[i * w..(i + 1) * w]),
                }
            }
            self.kernel.compute(&j, &reads, &mut out);
            ds.set_all(&j, &out);
        }
        ds
    }
}

/// Kernel adapter applying the inverse skewing before delegating, so the
/// inner kernel always sees original coordinates.
struct SkewedKernel {
    inner: Arc<dyn MultiKernel>,
    t_inv: IMat,
}

impl MultiKernel for SkewedKernel {
    fn width(&self) -> usize {
        self.inner.width()
    }

    fn compute(&self, j: &[i64], reads: &[f64], out: &mut [f64]) {
        let orig = self.t_inv.mul_vec(j);
        self.inner.compute(&orig, reads, out);
    }

    fn initial(&self, j: &[i64], out: &mut [f64]) {
        let orig = self.t_inv.mul_vec(j);
        self.inner.initial(&orig, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilecc_polytope::Polyhedron;

    /// Prefix-sum-like kernel: A[j] = A[j - (1,0)] + A[j - (0,1)] + 1.
    struct SumKernel;

    impl Kernel for SumKernel {
        fn compute(&self, _j: &[i64], reads: &[f64]) -> f64 {
            reads[0] + reads[1] + 1.0
        }
        fn initial(&self, _j: &[i64]) -> f64 {
            0.0
        }
    }

    fn sum_algorithm() -> Algorithm {
        let space = Polyhedron::from_box(&[0, 0], &[4, 4]);
        let deps = IMat::from_rows(&[&[1, 0], &[0, 1]]);
        Algorithm::new("sum", LoopNest::new(space, deps), Arc::new(SumKernel))
    }

    #[test]
    fn sequential_execution_computes_pascal_like_values() {
        let ds = sum_algorithm().execute_sequential();
        // A[0,0] = 1; A[1,0] = A[0,0]+1 = 2; A[1,1] = A[0,1]+A[1,0]+1 = 5.
        assert_eq!(ds.get(&[0, 0]), Some(1.0));
        assert_eq!(ds.get(&[1, 0]), Some(2.0));
        assert_eq!(ds.get(&[0, 1]), Some(2.0));
        assert_eq!(ds.get(&[1, 1]), Some(5.0));
        assert_eq!(ds.num_written(), 25);
    }

    #[test]
    fn skewed_execution_matches_original_modulo_coordinates() {
        let alg = sum_algorithm();
        let t = IMat::from_rows(&[&[1, 0], &[1, 1]]);
        let skewed = alg.skewed(&t);
        let ds = alg.execute_sequential();
        let ds_skewed = skewed.execute_sequential();
        // Value at skewed point T·j equals value at j.
        for j0 in 0..=4i64 {
            for j1 in 0..=4i64 {
                let v = ds.get(&[j0, j1]).unwrap();
                let vs = ds_skewed.get(&[j0, j0 + j1]).unwrap();
                assert_eq!(v.to_bits(), vs.to_bits(), "mismatch at ({j0},{j1})");
            }
        }
    }

    /// Two coupled recurrences: a[j] = a[j-1] + b[j-1], b[j] = 2·b[j-1].
    struct Coupled;

    impl MultiKernel for Coupled {
        fn width(&self) -> usize {
            2
        }
        fn compute(&self, _j: &[i64], reads: &[f64], out: &mut [f64]) {
            out[0] = reads[0] + reads[1];
            out[1] = 2.0 * reads[1];
        }
        fn initial(&self, _j: &[i64], out: &mut [f64]) {
            out[0] = 0.0;
            out[1] = 1.0;
        }
    }

    #[test]
    fn multi_kernel_sequential_execution() {
        let space = Polyhedron::from_box(&[1], &[5]);
        let deps = IMat::from_rows(&[&[1]]);
        let alg = Algorithm::new_multi("coupled", LoopNest::new(space, deps), Arc::new(Coupled));
        assert_eq!(alg.width(), 2);
        let ds = alg.execute_sequential();
        // b doubles: 2, 4, 8, 16, 32; a accumulates b: 1, 3, 7, 15, 31.
        assert_eq!(ds.get_all(&[1]), Some(&[1.0, 2.0][..]));
        assert_eq!(ds.get_all(&[3]), Some(&[7.0, 8.0][..]));
        assert_eq!(ds.get_all(&[5]), Some(&[31.0, 32.0][..]));
    }
}
