//! Kernel semantics and the sequential reference executor.
//!
//! A [`Kernel`] provides the single-assignment statement body of the paper's
//! model: `A[j] := F(A[j − d_1], …, A[j − d_q])`. The dependence *order* is
//! fixed by the nest's dependence matrix columns; `reads[i]` is the value at
//! `j − d_i`. Reads that fall outside the iteration space take the kernel's
//! deterministic `initial` value (the algorithm's boundary conditions).
//!
//! The paper notes its single-statement/single-array model is "only a
//! notational restriction". [`MultiKernel`] lifts it: each iteration point
//! carries `width` components (one per written array), every dependence read
//! delivers all components of the source point, and the body computes all
//! components at once — enough to express e.g. the real ADI integration
//! with its `X` and `B` arrays (Table 3).

use crate::data::DataSpace;
use crate::nest::LoopNest;
use std::sync::Arc;
use tilecc_linalg::IMat;

/// Scalar (single-array) loop-body semantics.
pub trait Kernel: Send + Sync {
    /// Compute the value written at iteration `j`. `reads[i]` is the value of
    /// `A[j − d_i]` for the `i`-th column of the nest's dependence matrix.
    fn compute(&self, j: &[i64], reads: &[f64]) -> f64;

    /// Boundary value for points outside the iteration space.
    fn initial(&self, j: &[i64]) -> f64;

    /// Batched [`Kernel::compute`] over `count` consecutive points of an
    /// affine run: point `p` sits at iteration `j0 + p·dj` and its read of
    /// dependence `i` is `reads[i*count + p]` (dependence-major blocks).
    /// Writes the value of point `p` to `out[p]`.
    ///
    /// The default walks the points in ascending order through `compute`,
    /// so it is bitwise identical to the per-point path by construction.
    /// Overrides may reassociate **across points** (lane blocks) but must
    /// keep each point's own floating-point operation order unchanged.
    fn compute_run(&self, j0: &[i64], dj: &[i64], count: usize, reads: &[f64], out: &mut [f64]) {
        debug_assert_eq!(out.len(), count);
        if count == 0 {
            return;
        }
        debug_assert_eq!(reads.len() % count, 0);
        let q = reads.len() / count;
        let mut j = j0.to_vec();
        let mut rbuf = vec![0.0f64; q];
        for p in 0..count {
            for (i, r) in rbuf.iter_mut().enumerate() {
                *r = reads[i * count + p];
            }
            out[p] = self.compute(&j, &rbuf);
            for (jk, d) in j.iter_mut().zip(dj) {
                *jk += d;
            }
        }
    }
}

/// Multi-array loop-body semantics: `width` components per iteration point.
/// `reads` is laid out dependence-major: component `c` of dependence `q` is
/// `reads[q*width + c]`.
pub trait MultiKernel: Send + Sync {
    /// Number of components (written arrays).
    fn width(&self) -> usize;

    /// Compute all components written at iteration `j` into `out`
    /// (`out.len() == width`).
    fn compute(&self, j: &[i64], reads: &[f64], out: &mut [f64]);

    /// Boundary components for points outside the iteration space.
    fn initial(&self, j: &[i64], out: &mut [f64]);

    /// Batched [`MultiKernel::compute`] over `count` consecutive points of
    /// an affine run: point `p` sits at iteration `j0 + p·dj`; component
    /// `c` of its dependence-`i` read is `reads[(i*count + p)*width + c]`
    /// (dependence-major blocks of `count` points each, which for
    /// `width == 1` coincides with the scalar layout). The components of
    /// point `p` go to `out[p*width..(p+1)*width]`.
    ///
    /// The default walks the points in ascending order through `compute`,
    /// so it is bitwise identical to the per-point path by construction.
    /// Overrides may reassociate **across points** (lane blocks) but must
    /// keep each point's own floating-point operation order unchanged.
    fn compute_run(&self, j0: &[i64], dj: &[i64], count: usize, reads: &[f64], out: &mut [f64]) {
        let w = self.width();
        debug_assert_eq!(out.len(), count * w);
        if count == 0 {
            return;
        }
        debug_assert_eq!(reads.len() % (count * w), 0);
        let q = reads.len() / (count * w);
        let mut j = j0.to_vec();
        let mut rbuf = vec![0.0f64; q * w];
        for p in 0..count {
            for i in 0..q {
                let at = (i * count + p) * w;
                rbuf[i * w..(i + 1) * w].copy_from_slice(&reads[at..at + w]);
            }
            let (lo, hi) = (p * w, (p + 1) * w);
            self.compute(&j, &rbuf, &mut out[lo..hi]);
            for (jk, d) in j.iter_mut().zip(dj) {
                *jk += d;
            }
        }
    }
}

/// Adapter: every scalar [`Kernel`] is a width-1 [`MultiKernel`].
struct ScalarKernel(Arc<dyn Kernel>);

impl MultiKernel for ScalarKernel {
    fn width(&self) -> usize {
        1
    }

    fn compute(&self, j: &[i64], reads: &[f64], out: &mut [f64]) {
        out[0] = self.0.compute(j, reads);
    }

    fn initial(&self, j: &[i64], out: &mut [f64]) {
        out[0] = self.0.initial(j);
    }

    fn compute_run(&self, j0: &[i64], dj: &[i64], count: usize, reads: &[f64], out: &mut [f64]) {
        // Width 1: the multi-kernel run layout coincides with the scalar
        // one, so the scalar kernel's (possibly specialized) batch entry
        // applies directly.
        self.0.compute_run(j0, dj, count, reads, out);
    }
}

/// A nest paired with its body: a complete algorithm instance.
#[derive(Clone)]
pub struct Algorithm {
    pub name: String,
    pub nest: LoopNest,
    pub kernel: Arc<dyn MultiKernel>,
}

impl std::fmt::Debug for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Algorithm")
            .field("name", &self.name)
            .field("dim", &self.nest.dim())
            .field("width", &self.kernel.width())
            .field("deps", self.nest.deps())
            .finish_non_exhaustive()
    }
}

impl Algorithm {
    /// Build an algorithm from a scalar (single-array) kernel.
    pub fn new(name: impl Into<String>, nest: LoopNest, kernel: Arc<dyn Kernel>) -> Self {
        Algorithm {
            name: name.into(),
            nest,
            kernel: Arc::new(ScalarKernel(kernel)),
        }
    }

    /// Build an algorithm from a multi-array kernel.
    pub fn new_multi(
        name: impl Into<String>,
        nest: LoopNest,
        kernel: Arc<dyn MultiKernel>,
    ) -> Self {
        assert!(kernel.width() >= 1);
        Algorithm {
            name: name.into(),
            nest,
            kernel,
        }
    }

    /// Components per iteration point.
    #[inline]
    pub fn width(&self) -> usize {
        self.kernel.width()
    }

    /// Skew the algorithm by the unimodular matrix `T`. The kernel is
    /// wrapped so that boundary values (and any coordinate-dependent
    /// coefficients) are still evaluated in the *original* coordinates.
    pub fn skewed(&self, t: &IMat) -> Algorithm {
        let nest = self.nest.skew(t);
        let t_inv = t.inverse().to_imat();
        let kernel = Arc::new(SkewedKernel {
            inner: self.kernel.clone(),
            t_inv,
        });
        Algorithm {
            name: format!("{}-skewed", self.name),
            nest,
            kernel,
        }
    }

    /// Reference execution: scan `J^n` lexicographically (legal because all
    /// dependence vectors are lexicographically positive) and evaluate the
    /// kernel at every point. Returns the full data space.
    pub fn execute_sequential(&self) -> DataSpace {
        let (lo, hi) = self.nest.bounding_box();
        let w = self.width();
        let mut ds = DataSpace::with_width(&lo, &hi, w);
        let deps = self.nest.deps();
        let q = deps.cols();
        let bounds = self.nest.bounds();
        let mut reads = vec![0.0f64; q * w];
        let mut out = vec![0.0f64; w];
        let mut src = vec![0i64; self.nest.dim()];
        for j in bounds.points() {
            for i in 0..q {
                for k in 0..self.nest.dim() {
                    src[k] = j[k] - deps[(k, i)];
                }
                match ds.get_all(&src) {
                    Some(v) => reads[i * w..(i + 1) * w].copy_from_slice(v),
                    None => self.kernel.initial(&src, &mut reads[i * w..(i + 1) * w]),
                }
            }
            self.kernel.compute(&j, &reads, &mut out);
            ds.set_all(&j, &out);
        }
        ds
    }
}

/// Kernel adapter applying the inverse skewing before delegating, so the
/// inner kernel always sees original coordinates.
struct SkewedKernel {
    inner: Arc<dyn MultiKernel>,
    t_inv: IMat,
}

impl MultiKernel for SkewedKernel {
    fn width(&self) -> usize {
        self.inner.width()
    }

    fn compute(&self, j: &[i64], reads: &[f64], out: &mut [f64]) {
        let orig = self.t_inv.mul_vec(j);
        self.inner.compute(&orig, reads, out);
    }

    fn initial(&self, j: &[i64], out: &mut [f64]) {
        let orig = self.t_inv.mul_vec(j);
        self.inner.initial(&orig, out);
    }

    fn compute_run(&self, j0: &[i64], dj: &[i64], count: usize, reads: &[f64], out: &mut [f64]) {
        // T⁻¹ is linear, so the skewed run is an affine run in original
        // coordinates too: T⁻¹(j0 + p·dj) = T⁻¹j0 + p·(T⁻¹dj), exactly.
        let o0 = self.t_inv.mul_vec(j0);
        let od = self.t_inv.mul_vec(dj);
        self.inner.compute_run(&o0, &od, count, reads, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tilecc_polytope::Polyhedron;

    /// Prefix-sum-like kernel: A[j] = A[j - (1,0)] + A[j - (0,1)] + 1.
    struct SumKernel;

    impl Kernel for SumKernel {
        fn compute(&self, _j: &[i64], reads: &[f64]) -> f64 {
            reads[0] + reads[1] + 1.0
        }
        fn initial(&self, _j: &[i64]) -> f64 {
            0.0
        }
    }

    fn sum_algorithm() -> Algorithm {
        let space = Polyhedron::from_box(&[0, 0], &[4, 4]);
        let deps = IMat::from_rows(&[&[1, 0], &[0, 1]]);
        Algorithm::new("sum", LoopNest::new(space, deps), Arc::new(SumKernel))
    }

    #[test]
    fn sequential_execution_computes_pascal_like_values() {
        let ds = sum_algorithm().execute_sequential();
        // A[0,0] = 1; A[1,0] = A[0,0]+1 = 2; A[1,1] = A[0,1]+A[1,0]+1 = 5.
        assert_eq!(ds.get(&[0, 0]), Some(1.0));
        assert_eq!(ds.get(&[1, 0]), Some(2.0));
        assert_eq!(ds.get(&[0, 1]), Some(2.0));
        assert_eq!(ds.get(&[1, 1]), Some(5.0));
        assert_eq!(ds.num_written(), 25);
    }

    #[test]
    fn skewed_execution_matches_original_modulo_coordinates() {
        let alg = sum_algorithm();
        let t = IMat::from_rows(&[&[1, 0], &[1, 1]]);
        let skewed = alg.skewed(&t);
        let ds = alg.execute_sequential();
        let ds_skewed = skewed.execute_sequential();
        // Value at skewed point T·j equals value at j.
        for j0 in 0..=4i64 {
            for j1 in 0..=4i64 {
                let v = ds.get(&[j0, j1]).unwrap();
                let vs = ds_skewed.get(&[j0, j0 + j1]).unwrap();
                assert_eq!(v.to_bits(), vs.to_bits(), "mismatch at ({j0},{j1})");
            }
        }
    }

    /// Two coupled recurrences: a[j] = a[j-1] + b[j-1], b[j] = 2·b[j-1].
    struct Coupled;

    impl MultiKernel for Coupled {
        fn width(&self) -> usize {
            2
        }
        fn compute(&self, _j: &[i64], reads: &[f64], out: &mut [f64]) {
            out[0] = reads[0] + reads[1];
            out[1] = 2.0 * reads[1];
        }
        fn initial(&self, _j: &[i64], out: &mut [f64]) {
            out[0] = 0.0;
            out[1] = 1.0;
        }
    }

    /// The default `compute_run` and both adapter forwardings must be
    /// bitwise identical to the per-point path on j-dependent kernels.
    #[test]
    fn compute_run_default_matches_per_point_bitwise() {
        struct JDep;
        impl Kernel for JDep {
            fn compute(&self, j: &[i64], reads: &[f64]) -> f64 {
                (j[0] * 3 - j[1]) as f64 * 0.125 + reads[0] * 1.5 - reads[1] / 3.0
            }
            fn initial(&self, _j: &[i64]) -> f64 {
                0.0
            }
        }
        let (q, count) = (2usize, 13usize);
        let reads: Vec<f64> = (0..q * count).map(|i| (i as f64) * 0.37 + 0.1).collect();
        let j0 = [5i64, -2];
        let dj = [1i64, 3];
        let mut out = vec![0.0f64; count];
        JDep.compute_run(&j0, &dj, count, &reads, &mut out);
        for p in 0..count {
            let j = [j0[0] + p as i64 * dj[0], j0[1] + p as i64 * dj[1]];
            let rb = [reads[p], reads[count + p]];
            assert_eq!(out[p].to_bits(), JDep.compute(&j, &rb).to_bits(), "p={p}");
        }

        // Scalar adapter: same layout, same bits.
        let mk = ScalarKernel(Arc::new(JDep));
        let mut out2 = vec![0.0f64; count];
        mk.compute_run(&j0, &dj, count, &reads, &mut out2);
        assert_eq!(
            out.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            out2.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );

        // Skewed adapter: the run in skewed coordinates must evaluate the
        // inner kernel at the original coordinates, point by point.
        let t = IMat::from_rows(&[&[1, 0], &[1, 1]]);
        let sk = SkewedKernel {
            inner: Arc::new(ScalarKernel(Arc::new(JDep))),
            t_inv: t.inverse().to_imat(),
        };
        let mut out3 = vec![0.0f64; count];
        sk.compute_run(&j0, &dj, count, &reads, &mut out3);
        let t_inv = t.inverse().to_imat();
        for p in 0..count {
            let js = [j0[0] + p as i64 * dj[0], j0[1] + p as i64 * dj[1]];
            let orig = t_inv.mul_vec(&js);
            let rb = [reads[p], reads[count + p]];
            assert_eq!(
                out3[p].to_bits(),
                JDep.compute(&orig, &rb).to_bits(),
                "skewed p={p}"
            );
        }
    }

    /// Multi-kernel default `compute_run` (width 2) against per-point.
    #[test]
    fn multi_compute_run_default_matches_per_point_bitwise() {
        let k = Coupled;
        let (q, w, count) = (1usize, 2usize, 9usize);
        let reads: Vec<f64> = (0..q * count * w)
            .map(|i| (i as f64) * 0.21 - 0.4)
            .collect();
        let mut out = vec![0.0f64; count * w];
        k.compute_run(&[3], &[2], count, &reads, &mut out);
        for p in 0..count {
            let mut expect = [0.0f64; 2];
            k.compute(&[3 + 2 * p as i64], &reads[p * w..(p + 1) * w], &mut expect);
            assert_eq!(out[p * w].to_bits(), expect[0].to_bits());
            assert_eq!(out[p * w + 1].to_bits(), expect[1].to_bits());
        }
    }

    #[test]
    fn multi_kernel_sequential_execution() {
        let space = Polyhedron::from_box(&[1], &[5]);
        let deps = IMat::from_rows(&[&[1]]);
        let alg = Algorithm::new_multi("coupled", LoopNest::new(space, deps), Arc::new(Coupled));
        assert_eq!(alg.width(), 2);
        let ds = alg.execute_sequential();
        // b doubles: 2, 4, 8, 16, 32; a accumulates b: 1, 3, 7, 15, 31.
        assert_eq!(ds.get_all(&[1]), Some(&[1.0, 2.0][..]));
        assert_eq!(ds.get_all(&[3]), Some(&[7.0, 8.0][..]));
        assert_eq!(ds.get_all(&[5]), Some(&[31.0, 32.0][..]));
    }
}
