//! # tilecc-loopnest
//!
//! The algorithm model of *"Compiling Tiled Iteration Spaces for Clusters"*
//! (CLUSTER 2002): perfectly nested FOR-loops over convex iteration spaces
//! with uniform constant dependencies (§2.1), unimodular skewing, a
//! sequential reference executor, and the paper's three evaluation kernels
//! (SOR, Jacobi, ADI integration — §4).

pub mod data;
pub mod kernel;
pub mod kernels;
pub mod nest;

pub use data::DataSpace;
pub use kernel::{Algorithm, Kernel, MultiKernel};
pub use nest::LoopNest;
