//! The paper's three evaluation algorithms (§4): Gauss Successive
//! Over-Relaxation (SOR), Jacobi, and ADI integration.
//!
//! Each constructor returns the algorithm over its *original* coordinates;
//! `*_skewed` applies the exact skewing matrix the paper uses so the nest
//! can be rectangularly tiled (all dependence components non-negative).
//!
//! Boundary conditions are deterministic functions of the original
//! coordinates, so sequential and parallel executions are bitwise
//! comparable.

use crate::kernel::{Algorithm, Kernel};
use crate::nest::LoopNest;
use std::sync::Arc;
use tilecc_linalg::IMat;
use tilecc_polytope::Polyhedron;

/// Lane width of the specialized `compute_run` blocks: fixed-size `[f64; 8]`
/// chunks the optimizer can keep in vector registers. Each lane evaluates
/// one *point* with the scalar kernel's exact operation order, so batched
/// results are bitwise identical to the per-point path.
pub const LANES: usize = 8;

/// Deterministic boundary value: a small, well-spread function of `j`.
/// Public so other frontends (e.g. the kernel DSL's `bnd()` builtin) can
/// produce bitwise-identical boundary conditions.
pub fn boundary_value(j: &[i64]) -> f64 {
    let mut h: i64 = 17;
    for (k, &v) in j.iter().enumerate() {
        h = h
            .wrapping_mul(31)
            .wrapping_add(v.wrapping_mul(7 + k as i64));
    }
    ((h.rem_euclid(1009)) as f64) / 1009.0
}

// ---------------------------------------------------------------------------
// SOR
// ---------------------------------------------------------------------------

/// Gauss SOR body:
/// `A[t,i,j] = w/4·(A[t,i−1,j] + A[t,i,j−1] + A[t−1,i+1,j] + A[t−1,i,j+1]) + (1−w)·A[t−1,i,j]`.
pub struct SorKernel {
    pub w: f64,
}

impl Kernel for SorKernel {
    fn compute(&self, _j: &[i64], reads: &[f64]) -> f64 {
        // reads follow the dependence-column order of `sor_deps()`.
        self.w / 4.0 * (reads[0] + reads[1] + reads[2] + reads[3]) + (1.0 - self.w) * reads[4]
    }

    fn initial(&self, j: &[i64]) -> f64 {
        boundary_value(j)
    }

    fn compute_run(&self, _j0: &[i64], _dj: &[i64], count: usize, reads: &[f64], out: &mut [f64]) {
        let (r0, rest) = reads.split_at(count);
        let (r1, rest) = rest.split_at(count);
        let (r2, rest) = rest.split_at(count);
        let (r3, r4) = rest.split_at(count);
        let a = self.w / 4.0;
        let b = 1.0 - self.w;
        let mut p = 0;
        while p + LANES <= count {
            let mut acc = [0.0f64; LANES];
            for l in 0..LANES {
                acc[l] = a * (r0[p + l] + r1[p + l] + r2[p + l] + r3[p + l]) + b * r4[p + l];
            }
            out[p..p + LANES].copy_from_slice(&acc);
            p += LANES;
        }
        for i in p..count {
            out[i] = a * (r0[i] + r1[i] + r2[i] + r3[i]) + b * r4[i];
        }
    }
}

/// SOR dependence matrix in original coordinates (columns):
/// `(0,1,0), (0,0,1), (1,−1,0), (1,0,−1), (1,0,0)`.
pub fn sor_deps() -> IMat {
    IMat::from_rows(&[&[0, 0, 1, 1, 1], &[1, 0, -1, 0, 0], &[0, 1, 0, -1, 0]])
}

/// The paper's SOR skewing matrix `T = [[1,0,0],[1,1,0],[2,0,1]]` (§4.1).
pub fn sor_skewing() -> IMat {
    IMat::from_rows(&[&[1, 0, 0], &[1, 1, 0], &[2, 0, 1]])
}

/// SOR over `1 ≤ t ≤ m`, `1 ≤ i,j ≤ n` in original coordinates.
pub fn sor(m: i64, n: i64, w: f64) -> Algorithm {
    let space = Polyhedron::from_box(&[1, 1, 1], &[m, n, n]);
    Algorithm::new(
        format!("sor-M{m}-N{n}"),
        LoopNest::new(space, sor_deps()),
        Arc::new(SorKernel { w }),
    )
}

/// Skewed SOR, ready for rectangular or non-rectangular tiling. The skewed
/// dependence matrix matches the paper:
/// `D = [[1,0,1,1,0],[1,1,0,1,0],[2,0,2,1,1]]` (as a set of columns).
pub fn sor_skewed(m: i64, n: i64, w: f64) -> Algorithm {
    sor(m, n, w).skewed(&sor_skewing())
}

// ---------------------------------------------------------------------------
// Jacobi
// ---------------------------------------------------------------------------

/// Jacobi body:
/// `A[t,i,j] = 0.25·(A[t−1,i−1,j] + A[t−1,i,j−1] + A[t−1,i+1,j] + A[t−1,i,j+1])`.
pub struct JacobiKernel;

impl Kernel for JacobiKernel {
    fn compute(&self, _j: &[i64], reads: &[f64]) -> f64 {
        0.25 * (reads[0] + reads[1] + reads[2] + reads[3])
    }

    fn initial(&self, j: &[i64]) -> f64 {
        boundary_value(j)
    }

    fn compute_run(&self, _j0: &[i64], _dj: &[i64], count: usize, reads: &[f64], out: &mut [f64]) {
        let (r0, rest) = reads.split_at(count);
        let (r1, rest) = rest.split_at(count);
        let (r2, r3) = rest.split_at(count);
        let mut p = 0;
        while p + LANES <= count {
            let mut acc = [0.0f64; LANES];
            for l in 0..LANES {
                acc[l] = 0.25 * (r0[p + l] + r1[p + l] + r2[p + l] + r3[p + l]);
            }
            out[p..p + LANES].copy_from_slice(&acc);
            p += LANES;
        }
        for i in p..count {
            out[i] = 0.25 * (r0[i] + r1[i] + r2[i] + r3[i]);
        }
    }
}

/// Jacobi dependence matrix in original coordinates (columns):
/// `(1,1,0), (1,0,1), (1,−1,0), (1,0,−1)`.
pub fn jacobi_deps() -> IMat {
    IMat::from_rows(&[&[1, 1, 1, 1], &[1, 0, -1, 0], &[0, 1, 0, -1]])
}

/// The paper's Jacobi skewing matrix `T = [[1,0,0],[1,1,0],[1,0,1]]` (§4.2).
pub fn jacobi_skewing() -> IMat {
    IMat::from_rows(&[&[1, 0, 0], &[1, 1, 0], &[1, 0, 1]])
}

/// Jacobi over `1 ≤ t ≤ tmax`, `1 ≤ i ≤ imax`, `1 ≤ j ≤ jmax`.
pub fn jacobi(tmax: i64, imax: i64, jmax: i64) -> Algorithm {
    let space = Polyhedron::from_box(&[1, 1, 1], &[tmax, imax, jmax]);
    Algorithm::new(
        format!("jacobi-T{tmax}-I{imax}-J{jmax}"),
        LoopNest::new(space, jacobi_deps()),
        Arc::new(JacobiKernel),
    )
}

/// Skewed Jacobi (all dependence components non-negative after skewing).
pub fn jacobi_skewed(tmax: i64, imax: i64, jmax: i64) -> Algorithm {
    jacobi(tmax, imax, jmax).skewed(&jacobi_skewing())
}

// ---------------------------------------------------------------------------
// ADI integration
// ---------------------------------------------------------------------------

/// Simplified single-array ADI body (same dependence pattern as Table 3;
/// used by the §4 experiments where only the schedule shape matters):
/// `X[t,i,j] = X[t−1,i,j] + c1·X[t−1,i−1,j] − c2·X[t−1,i,j−1]`.
/// The faithful two-array Table 3 version is [`adi_paper`].
pub struct AdiKernel {
    pub c1: f64,
    pub c2: f64,
}

impl Kernel for AdiKernel {
    fn compute(&self, _j: &[i64], reads: &[f64]) -> f64 {
        reads[0] + self.c1 * reads[1] - self.c2 * reads[2]
    }

    fn initial(&self, j: &[i64]) -> f64 {
        boundary_value(j)
    }

    fn compute_run(&self, _j0: &[i64], _dj: &[i64], count: usize, reads: &[f64], out: &mut [f64]) {
        let (r0, rest) = reads.split_at(count);
        let (r1, r2) = rest.split_at(count);
        let (c1, c2) = (self.c1, self.c2);
        let mut p = 0;
        while p + LANES <= count {
            let mut acc = [0.0f64; LANES];
            for l in 0..LANES {
                acc[l] = r0[p + l] + c1 * r1[p + l] - c2 * r2[p + l];
            }
            out[p..p + LANES].copy_from_slice(&acc);
            p += LANES;
        }
        for i in p..count {
            out[i] = r0[i] + c1 * r1[i] - c2 * r2[i];
        }
    }
}

/// ADI dependence matrix `D = [[1,1,1],[0,1,0],[0,0,1]]` (columns
/// `(1,0,0), (1,1,0), (1,0,1)`) — already non-negative, no skewing needed.
pub fn adi_deps() -> IMat {
    IMat::from_rows(&[&[1, 1, 1], &[0, 1, 0], &[0, 0, 1]])
}

/// ADI over `1 ≤ t ≤ tmax`, `1 ≤ i,j ≤ n`.
pub fn adi(tmax: i64, n: i64) -> Algorithm {
    let space = Polyhedron::from_box(&[1, 1, 1], &[tmax, n, n]);
    Algorithm::new(
        format!("adi-T{tmax}-N{n}"),
        LoopNest::new(space, adi_deps()),
        Arc::new(AdiKernel { c1: 0.3, c2: 0.2 }),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn columns(m: &IMat) -> HashSet<Vec<i64>> {
        (0..m.cols()).map(|c| m.col(c)).collect()
    }

    #[test]
    fn sor_skewed_deps_match_paper() {
        let alg = sor_skewed(3, 4, 1.0);
        // Paper §4.1: D = [[1,0,1,1,0],[1,1,0,1,0],[2,0,2,1,1]].
        let paper = IMat::from_rows(&[&[1, 0, 1, 1, 0], &[1, 1, 0, 1, 0], &[2, 0, 2, 1, 1]]);
        assert_eq!(columns(alg.nest.deps()), columns(&paper));
    }

    #[test]
    fn sor_skewed_deps_are_nonnegative() {
        let alg = sor_skewed(3, 4, 1.0);
        let d = alg.nest.deps();
        for i in 0..d.rows() {
            for j in 0..d.cols() {
                assert!(
                    d[(i, j)] >= 0,
                    "skewed SOR dependence has negative component"
                );
            }
        }
    }

    #[test]
    fn jacobi_skewed_deps_are_nonnegative_and_correct() {
        let alg = jacobi_skewed(3, 4, 4);
        let d = alg.nest.deps();
        for i in 0..d.rows() {
            for j in 0..d.cols() {
                assert!(d[(i, j)] >= 0);
            }
        }
        // T·(1,1,0) = (1,2,1); T·(1,0,1) = (1,1,2); T·(1,-1,0) = (1,0,1);
        // T·(1,0,-1) = (1,1,0).
        let expected: HashSet<Vec<i64>> =
            [vec![1, 2, 1], vec![1, 1, 2], vec![1, 0, 1], vec![1, 1, 0]]
                .into_iter()
                .collect();
        assert_eq!(columns(d), expected);
    }

    #[test]
    fn adi_needs_no_skewing() {
        let alg = adi(3, 4);
        let d = alg.nest.deps();
        for i in 0..d.rows() {
            for j in 0..d.cols() {
                assert!(d[(i, j)] >= 0);
            }
        }
    }

    #[test]
    fn skewed_sor_space_matches_paper_bounds() {
        // Paper §4.1 skewed nest: t' in 1..=M, i' in t'+1..=t'+N, j' in 2t'+1..=2t'+N.
        let alg = sor_skewed(3, 4, 1.0);
        let b = alg.nest.bounds();
        assert_eq!(b.bounds(0, &[]), Some((1, 3)));
        assert_eq!(b.bounds(1, &[2]), Some((3, 6)));
        assert_eq!(b.bounds(2, &[2, 3]), Some((5, 8)));
        assert_eq!(alg.nest.num_points(), 3 * 4 * 4);
    }

    #[test]
    fn executions_are_deterministic() {
        let a1 = sor_skewed(2, 3, 1.2).execute_sequential();
        let a2 = sor_skewed(2, 3, 1.2).execute_sequential();
        assert_eq!(a1.diff(&a2), None);
    }

    #[test]
    fn jacobi_values_average_correctly() {
        // With constant boundary everywhere, the first time step averages
        // four boundary values.
        struct ConstJacobi;
        impl Kernel for ConstJacobi {
            fn compute(&self, j: &[i64], reads: &[f64]) -> f64 {
                JacobiKernel.compute(j, reads)
            }
            fn initial(&self, _j: &[i64]) -> f64 {
                2.0
            }
        }
        let space = Polyhedron::from_box(&[1, 1, 1], &[1, 2, 2]);
        let alg = Algorithm::new(
            "cj",
            LoopNest::new(space, jacobi_deps()),
            Arc::new(ConstJacobi),
        );
        let ds = alg.execute_sequential();
        assert_eq!(ds.get(&[1, 1, 1]), Some(2.0));
    }
}

// ---------------------------------------------------------------------------
// Additional kernels beyond the paper's three (framework generality).
// ---------------------------------------------------------------------------

/// 1-D heat equation over a 2-D (time × space) nest:
/// `A[t,i] = A[t−1,i] + α·(A[t−1,i−1] − 2·A[t−1,i] + A[t−1,i+1])`.
pub struct Heat1dKernel {
    pub alpha: f64,
}

impl Kernel for Heat1dKernel {
    fn compute(&self, _j: &[i64], reads: &[f64]) -> f64 {
        // reads: (1,0) center, (1,1) left, (1,-1) right.
        reads[0] + self.alpha * (reads[1] - 2.0 * reads[0] + reads[2])
    }

    fn initial(&self, j: &[i64]) -> f64 {
        boundary_value(j)
    }

    fn compute_run(&self, _j0: &[i64], _dj: &[i64], count: usize, reads: &[f64], out: &mut [f64]) {
        let (r0, rest) = reads.split_at(count);
        let (r1, r2) = rest.split_at(count);
        let alpha = self.alpha;
        let mut p = 0;
        while p + LANES <= count {
            let mut acc = [0.0f64; LANES];
            for l in 0..LANES {
                acc[l] = r0[p + l] + alpha * (r1[p + l] - 2.0 * r0[p + l] + r2[p + l]);
            }
            out[p..p + LANES].copy_from_slice(&acc);
            p += LANES;
        }
        for i in p..count {
            out[i] = r0[i] + alpha * (r1[i] - 2.0 * r0[i] + r2[i]);
        }
    }
}

/// Heat-1D dependence matrix (columns): `(1,0), (1,1), (1,−1)`.
pub fn heat1d_deps() -> IMat {
    IMat::from_rows(&[&[1, 1, 1], &[0, 1, -1]])
}

/// The skewing `T = [[1,0],[1,1]]` making heat-1D rectangularly tileable.
pub fn heat1d_skewing() -> IMat {
    IMat::from_rows(&[&[1, 0], &[1, 1]])
}

/// Heat-1D over `1 ≤ t ≤ tmax`, `1 ≤ i ≤ n` (original coordinates).
pub fn heat1d(tmax: i64, n: i64, alpha: f64) -> Algorithm {
    let space = Polyhedron::from_box(&[1, 1], &[tmax, n]);
    Algorithm::new(
        format!("heat1d-T{tmax}-N{n}"),
        LoopNest::new(space, heat1d_deps()),
        Arc::new(Heat1dKernel { alpha }),
    )
}

/// Skewed heat-1D (dependencies `(1,1), (1,2), (1,0)` — all non-negative).
pub fn heat1d_skewed(tmax: i64, n: i64, alpha: f64) -> Algorithm {
    heat1d(tmax, n, alpha).skewed(&heat1d_skewing())
}

/// A 4-D wavefront kernel (3-D heat + time), exercising `n = 4` end to end:
/// `A[t,x,y,z] = c₀·A[t−1,x,y,z] + c₁·(A[t−1,x−1,y,z] + A[t−1,x,y−1,z] + A[t−1,x,y,z−1])`.
pub struct Wave4dKernel {
    pub c0: f64,
    pub c1: f64,
}

impl Kernel for Wave4dKernel {
    fn compute(&self, _j: &[i64], reads: &[f64]) -> f64 {
        self.c0 * reads[0] + self.c1 * (reads[1] + reads[2] + reads[3])
    }

    fn initial(&self, j: &[i64]) -> f64 {
        boundary_value(j)
    }

    fn compute_run(&self, _j0: &[i64], _dj: &[i64], count: usize, reads: &[f64], out: &mut [f64]) {
        let (r0, rest) = reads.split_at(count);
        let (r1, rest) = rest.split_at(count);
        let (r2, r3) = rest.split_at(count);
        let (c0, c1) = (self.c0, self.c1);
        let mut p = 0;
        while p + LANES <= count {
            let mut acc = [0.0f64; LANES];
            for l in 0..LANES {
                acc[l] = c0 * r0[p + l] + c1 * (r1[p + l] + r2[p + l] + r3[p + l]);
            }
            out[p..p + LANES].copy_from_slice(&acc);
            p += LANES;
        }
        for i in p..count {
            out[i] = c0 * r0[i] + c1 * (r1[i] + r2[i] + r3[i]);
        }
    }
}

/// 4-D wavefront dependence matrix (columns):
/// `(1,0,0,0), (1,1,0,0), (1,0,1,0), (1,0,0,1)` — already non-negative.
pub fn wave4d_deps() -> IMat {
    IMat::from_rows(&[&[1, 1, 1, 1], &[0, 1, 0, 0], &[0, 0, 1, 0], &[0, 0, 0, 1]])
}

/// 4-D wavefront over `1 ≤ t ≤ tmax`, `1 ≤ x,y,z ≤ n`.
pub fn wave4d(tmax: i64, n: i64) -> Algorithm {
    let space = Polyhedron::from_box(&[1, 1, 1, 1], &[tmax, n, n, n]);
    Algorithm::new(
        format!("wave4d-T{tmax}-N{n}"),
        LoopNest::new(space, wave4d_deps()),
        Arc::new(Wave4dKernel { c0: 0.4, c1: 0.2 }),
    )
}

#[cfg(test)]
mod extra_kernel_tests {
    use super::*;

    #[test]
    fn heat1d_skewed_deps_nonnegative() {
        let alg = heat1d_skewed(4, 6, 0.1);
        let d = alg.nest.deps();
        for i in 0..d.rows() {
            for j in 0..d.cols() {
                assert!(d[(i, j)] >= 0);
            }
        }
        assert_eq!(alg.nest.num_points(), 24);
    }

    #[test]
    fn heat1d_conserves_constant_fields() {
        // With a constant initial field, diffusion leaves values unchanged.
        struct ConstHeat;
        impl Kernel for ConstHeat {
            fn compute(&self, j: &[i64], reads: &[f64]) -> f64 {
                Heat1dKernel { alpha: 0.25 }.compute(j, reads)
            }
            fn initial(&self, _j: &[i64]) -> f64 {
                3.5
            }
        }
        let space = Polyhedron::from_box(&[1, 1], &[3, 5]);
        let alg = Algorithm::new(
            "ch",
            LoopNest::new(space, heat1d_deps()),
            Arc::new(ConstHeat),
        );
        let ds = alg.execute_sequential();
        for i in 1..=5 {
            assert_eq!(ds.get(&[3, i]), Some(3.5));
        }
    }

    #[test]
    fn wave4d_executes_sequentially() {
        let alg = wave4d(3, 4);
        let ds = alg.execute_sequential();
        assert_eq!(ds.num_written(), 3 * 4 * 4 * 4);
    }
}

// ---------------------------------------------------------------------------
// Faithful ADI integration (Table 3): two written arrays + a coefficient
// array, via the multi-component kernel model.
// ---------------------------------------------------------------------------

/// The full ADI integration body of the paper's Table 3:
///
/// ```text
/// X[t,i,j] = X[t-1,i,j] + X[t-1,i,j-1]·A[i,j]/B[t-1,i,j-1]
///                       − X[t-1,i-1,j]·A[i,j]/B[t-1,i-1,j]
/// B[t,i,j] = B[t-1,i,j] − A[i,j]²/B[t-1,i,j-1] − A[i,j]²/B[t-1,i-1,j]
/// ```
///
/// `X` is component 0 and `B` component 1 of each data-space cell; the
/// read-only coefficient array `A[i,j]` is a deterministic function (no
/// communication needed — it is replicated, exactly as a compiler would
/// broadcast a read-only array).
pub struct AdiPaperKernel;

impl AdiPaperKernel {
    /// The read-only coefficient array `A[i,j]` (small, non-zero).
    fn a(i: i64, j: i64) -> f64 {
        0.1 + ((i * 13 + j * 7).rem_euclid(17)) as f64 * 0.01
    }

    /// Boundary `B` values must be bounded away from zero (divisors).
    fn b0(j: &[i64]) -> f64 {
        2.0 + boundary_value(j)
    }
}

impl crate::kernel::MultiKernel for AdiPaperKernel {
    fn width(&self) -> usize {
        2
    }

    fn compute(&self, j: &[i64], reads: &[f64], out: &mut [f64]) {
        // Dependence columns (see `adi_deps`): q0 = (1,0,0), q1 = (1,1,0),
        // q2 = (1,0,1); component layout [X, B] per dependence.
        let (x_t, _b_t) = (reads[0], reads[1]); // (t-1, i, j)
        let (x_up, b_up) = (reads[2], reads[3]); // (t-1, i-1, j)
        let (x_le, b_le) = (reads[4], reads[5]); // (t-1, i, j-1)
        let a = Self::a(j[1], j[2]);
        out[0] = x_t + x_le * a / b_le - x_up * a / b_up;
        out[1] = reads[1] - a * a / b_le - a * a / b_up;
    }

    fn initial(&self, j: &[i64], out: &mut [f64]) {
        out[0] = boundary_value(j);
        out[1] = Self::b0(j);
    }

    fn compute_run(&self, j0: &[i64], dj: &[i64], count: usize, reads: &[f64], out: &mut [f64]) {
        // One monomorphized pass instead of a dyn call per point. The
        // divisions keep this from lane-blocking profitably, but the three
        // dependence blocks are contiguous and the coefficient coordinates
        // advance by integer addition — exactly `j0 + p·dj`.
        let (d0, rest) = reads.split_at(count * 2);
        let (d1, d2) = rest.split_at(count * 2);
        let (mut ji, mut jj) = (j0[1], j0[2]);
        for p in 0..count {
            let (x_t, b_t) = (d0[p * 2], d0[p * 2 + 1]);
            let (x_up, b_up) = (d1[p * 2], d1[p * 2 + 1]);
            let (x_le, b_le) = (d2[p * 2], d2[p * 2 + 1]);
            let a = Self::a(ji, jj);
            out[p * 2] = x_t + x_le * a / b_le - x_up * a / b_up;
            out[p * 2 + 1] = b_t - a * a / b_le - a * a / b_up;
            ji += dj[1];
            jj += dj[2];
        }
    }
}

/// Faithful ADI integration over `1 ≤ t ≤ tmax`, `1 ≤ i,j ≤ n` (Table 3).
pub fn adi_paper(tmax: i64, n: i64) -> Algorithm {
    let space = Polyhedron::from_box(&[1, 1, 1], &[tmax, n, n]);
    Algorithm::new_multi(
        format!("adi-paper-T{tmax}-N{n}"),
        LoopNest::new(space, adi_deps()),
        Arc::new(AdiPaperKernel),
    )
}

#[cfg(test)]
mod compute_run_tests {
    use super::*;
    use crate::kernel::MultiKernel;

    /// xorshift64* — seeded, so failures reproduce from the seed alone.
    struct G(u64);
    impl G {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.0 = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }
        fn f64(&mut self) -> f64 {
            (self.next() % 2_000_001) as f64 / 1_000_000.0 - 1.0
        }
    }

    fn check_scalar(k: &dyn Kernel, q: usize, seed: u64) {
        let mut g = G(seed);
        // Straddle several lane blocks plus a ragged tail.
        for count in [1usize, 7, 8, 9, 24, 61] {
            let reads: Vec<f64> = (0..q * count).map(|_| g.f64()).collect();
            let j0 = [3i64, -1, 4, 2];
            let dj = [0i64, 1, 2, 1];
            let mut out = vec![0.0f64; count];
            k.compute_run(&j0[..4], &dj[..4], count, &reads, &mut out);
            let mut rbuf = vec![0.0f64; q];
            for p in 0..count {
                let j: Vec<i64> = (0..4).map(|i| j0[i] + p as i64 * dj[i]).collect();
                for i in 0..q {
                    rbuf[i] = reads[i * count + p];
                }
                assert_eq!(
                    out[p].to_bits(),
                    k.compute(&j, &rbuf).to_bits(),
                    "count={count} p={p}"
                );
            }
        }
    }

    /// Every specialized scalar kernel's lane-blocked `compute_run` is
    /// bitwise identical to its per-point `compute`, including ragged
    /// tails shorter than a lane block.
    #[test]
    fn specialized_runs_match_per_point_bitwise() {
        check_scalar(&SorKernel { w: 1.1 }, 5, 0xA11CE);
        check_scalar(&JacobiKernel, 4, 0xB0B);
        check_scalar(&AdiKernel { c1: 0.3, c2: 0.2 }, 3, 0xC4A7);
        check_scalar(&Heat1dKernel { alpha: 0.25 }, 3, 0xD06);
        check_scalar(&Wave4dKernel { c0: 0.4, c1: 0.2 }, 4, 0xE66);
    }

    /// The two-array ADI (Table 3) batch entry: j-dependent coefficients
    /// must advance with the run and divisions keep per-point order.
    #[test]
    fn adi_paper_run_matches_per_point_bitwise() {
        let k = AdiPaperKernel;
        let (q, w) = (3usize, 2usize);
        let mut g = G(0xF00D);
        for count in [1usize, 5, 16, 33] {
            // B components are divisors: keep them away from zero.
            let reads: Vec<f64> = (0..q * count * w)
                .map(|i| {
                    if i % 2 == 1 {
                        2.0 + g.f64().abs()
                    } else {
                        g.f64()
                    }
                })
                .collect();
            let j0 = [1i64, 2, 3];
            let dj = [0i64, 1, 2];
            let mut out = vec![0.0f64; count * w];
            k.compute_run(&j0, &dj, count, &reads, &mut out);
            let mut rbuf = vec![0.0f64; q * w];
            let mut expect = [0.0f64; 2];
            for p in 0..count {
                let j: Vec<i64> = (0..3).map(|i| j0[i] + p as i64 * dj[i]).collect();
                for i in 0..q {
                    rbuf[i * w..(i + 1) * w]
                        .copy_from_slice(&reads[(i * count + p) * w..(i * count + p) * w + w]);
                }
                k.compute(&j, &rbuf, &mut expect);
                assert_eq!(out[p * w].to_bits(), expect[0].to_bits(), "X p={p}");
                assert_eq!(out[p * w + 1].to_bits(), expect[1].to_bits(), "B p={p}");
            }
        }
    }
}

#[cfg(test)]
mod adi_paper_tests {
    use super::*;

    #[test]
    fn adi_paper_has_two_components_and_runs() {
        let alg = adi_paper(3, 4);
        assert_eq!(alg.width(), 2);
        let ds = alg.execute_sequential();
        assert_eq!(ds.num_written(), 3 * 4 * 4);
        // B must stay non-zero (all divisions well-defined).
        for t in 1..=3 {
            for i in 1..=4 {
                for j in 1..=4 {
                    let v = ds.get_all(&[t, i, j]).unwrap();
                    assert!(v[1].abs() > 1e-6, "B vanished at ({t},{i},{j})");
                    assert!(v[0].is_finite() && v[1].is_finite());
                }
            }
        }
    }

    #[test]
    fn adi_paper_b_decreases_monotonically() {
        // B[t] = B[t-1] − positive terms, so B decreases along t while it
        // stays positive.
        let ds = adi_paper(2, 3).execute_sequential();
        for i in 1..=3 {
            for j in 1..=3 {
                let b1 = ds.get_all(&[1, i, j]).unwrap()[1];
                let b2 = ds.get_all(&[2, i, j]).unwrap()[1];
                assert!(b2 < b1, "B did not decrease at ({i},{j})");
            }
        }
    }
}
