//! Parallelize *your own* loop nest: define an iteration space, a uniform
//! dependence pattern and a stencil body, pick a tiling from the computed
//! tiling cone, and run it on the simulated cluster.
//!
//! This is the downstream-user workflow: nothing here is specific to the
//! paper's three evaluation kernels.
//!
//! Run with: `cargo run --release --example custom_kernel`

use std::sync::Arc;
use tilecc::Pipeline;
use tilecc_cluster::MachineModel;
use tilecc_linalg::{IMat, RMat, Rational};
use tilecc_loopnest::{Algorithm, Kernel, LoopNest};
use tilecc_polytope::{Constraint, Polyhedron};
use tilecc_tiling::tiling_cone_rays;

/// A second-order wave-equation-like stencil:
/// `A[t,i,j] = 1.9·A[t-1,i,j] − 0.9·A[t-2,i,j] + 0.05·(A[t-1,i-1,j] + A[t-1,i,j-1])`.
struct Wave;

impl Kernel for Wave {
    fn compute(&self, _j: &[i64], reads: &[f64]) -> f64 {
        1.9 * reads[0] - 0.9 * reads[1] + 0.05 * (reads[2] + reads[3])
    }
    fn initial(&self, j: &[i64]) -> f64 {
        (j.iter().sum::<i64>() % 7) as f64 * 0.1
    }
}

fn main() {
    // Iteration space: a triangular prism — 1 ≤ t ≤ 24, 1 ≤ i ≤ 30,
    // 1 ≤ j ≤ 30, i + j ≤ 40 (demonstrates a general convex space).
    let mut space = Polyhedron::from_box(&[1, 1, 1], &[24, 30, 30]);
    space.add(Constraint::new(vec![0, -1, -1], 40));

    // Dependence columns: (2,0,0) is *longer than one tile edge* below —
    // the framework handles multi-tile-hop dependencies.
    let deps = IMat::from_rows(&[&[1, 2, 1, 1], &[0, 0, 1, 0], &[0, 0, 0, 1]]);

    let nest = LoopNest::new(space, deps);
    let algorithm = Algorithm::new("wave", nest, Arc::new(Wave));

    // Ask the framework for the tiling cone of this dependence pattern.
    let rays = tiling_cone_rays(algorithm.nest.deps());
    println!("tiling cone extreme rays: {rays:?}");

    // Build a legal tiling: rows scaled from cone members. The time-tile
    // edge is 1, so the (2,0,0) dependence hops two tiles along the chain
    // (D^S gets a 2-component — longer-than-tile dependencies are handled).
    let h = RMat::from_fn(3, 3, |r, c| {
        let rows = [[1i128, 0, 0], [0, 1, 0], [0, 0, 1]];
        Rational::new(rows[r][c], [1, 10, 10][r])
    });
    let pipeline = Pipeline::compile(algorithm, h, None).expect("legal tiling");
    println!(
        "processors: {}, mapping dim m = {}",
        pipeline.num_procs(),
        pipeline.plan().m()
    );

    let (summary, data) = pipeline.run_verified(MachineModel::fast_ethernet_p3());
    println!("verified: {:?}", summary.verified);
    println!(
        "speedup : {:.3} on {} procs",
        summary.speedup, summary.procs
    );
    println!("checksum: {:.6}", data.checksum());
    assert_eq!(summary.verified, Some(true));
}
