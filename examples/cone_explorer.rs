//! Explore the tiling cones of the paper's three algorithms: compute the
//! extreme rays, show that the paper's non-rectangular tiling rows lie on
//! the cone while the rectangular rows sit in its interior, and relate that
//! to the predicted wavefront step counts (§2.2, §4, Hodzic/Shang).
//!
//! Run with: `cargo run --release --example cone_explorer`

use tilecc::analysis;
use tilecc_linalg::IMat;
use tilecc_loopnest::kernels;
use tilecc_tiling::{in_tiling_cone, tiling_cone_rays};

fn explore(name: &str, deps: &IMat, nr_rows: &[Vec<i64>], rect_rows: &[Vec<i64>]) {
    println!("== {name} ==");
    println!("dependence columns:");
    for q in 0..deps.cols() {
        println!("  d{q} = {:?}", deps.col(q));
    }
    let rays = tiling_cone_rays(deps);
    println!("tiling cone extreme rays: {rays:?}");
    for r in nr_rows {
        let extreme = rays.contains(r);
        println!(
            "  non-rect row {r:?}: in cone = {}, extreme ray = {extreme}",
            in_tiling_cone(r, deps)
        );
    }
    for r in rect_rows {
        let extreme = rays.contains(r);
        println!(
            "  rect     row {r:?}: in cone = {}, extreme ray = {extreme}",
            in_tiling_cone(r, deps)
        );
    }
    println!();
}

fn main() {
    explore(
        "skewed SOR",
        kernels::sor(4, 4, 1.0)
            .skewed(&kernels::sor_skewing())
            .nest
            .deps(),
        &[vec![1, 0, 0], vec![0, 1, 0], vec![-1, 0, 1]],
        &[vec![0, 0, 1]],
    );
    explore(
        "skewed Jacobi",
        kernels::jacobi(4, 4, 4)
            .skewed(&kernels::jacobi_skewing())
            .nest
            .deps(),
        &[vec![2, -1, 0]],
        &[vec![1, 0, 0]],
    );
    explore(
        "ADI integration",
        &kernels::adi_deps(),
        &[vec![1, -1, -1]],
        &[vec![1, 0, 0]],
    );

    // Hodzic/Shang: rows strictly inside the cone are suboptimal — visible
    // directly in the wavefront step counts.
    let (m, n, x, y, z) = (100, 200, 25, 75, 20);
    println!("SOR wavefront steps (M={m}, N={n}, x={x}, y={y}, z={z}):");
    println!("  rectangular : {:.1}", analysis::sor_t_rect(m, n, x, y, z));
    println!("  cone tiling : {:.1}", analysis::sor_t_nr(m, n, x, y, z));
}
