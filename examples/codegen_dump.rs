//! Dump the generated C/MPI source for a non-rectangularly tiled SOR nest —
//! the artifact the paper's tool produced ("a tool which automatically
//! generates MPI code", §4).
//!
//! Run with: `cargo run --release --example codegen_dump`

use tilecc::{matrices, Pipeline};
use tilecc_loopnest::kernels;

fn main() {
    let algorithm = kernels::sor_skewed(20, 40, 1.2);
    let pipeline = Pipeline::compile(algorithm, matrices::sor_nr(5, 10, 10), Some(2))
        .expect("tiling is legal for SOR");

    let code = pipeline.emit_c("w4 * (LA[MAP(t, j0 - 1, j1, j2)] /* reads at j' - d'_q ... */)");
    println!("{code}");

    // Also show the derived compile-time objects the code embeds.
    let plan = pipeline.plan();
    eprintln!("--- derived compile-time data ---");
    eprintln!("H'  = {:?}", plan.tiled.transform().h_prime());
    eprintln!("HNF = {:?}", plan.tiled.transform().hnf());
    eprintln!("strides c = {:?}", plan.tiled.transform().strides());
    eprintln!("offsets off = {:?}", plan.comm.off);
    eprintln!("CC = {:?}", plan.comm.cc);
    eprintln!("D^S = {:?}", plan.comm.tile_deps);
    eprintln!("D^m = {:?}", plan.comm.proc_deps);
}
