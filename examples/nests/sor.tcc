# Gauss Successive Over-Relaxation (paper §4.1), skewed with the paper's
# matrix T so it can be rectangularly tiled.
param M = 20
param N = 40
skew = [1,0,0; 1,1,0; 2,0,1]
for t = 1 to M
for i = 1 to N
for j = 1 to N
A[t,i,j] = 0.275*(A[t,i-1,j] + A[t,i,j-1] + A[t-1,i+1,j] + A[t-1,i,j+1]) - 0.1*A[t-1,i,j]
boundary = 0.5
