# 1-D heat diffusion over a 2-D (time x space) nest, skewed for tiling.
param T = 24
param N = 48
skew = [1,0; 1,1]
for t = 1 to T
for i = 1 to N
A[t,i] = A[t-1,i] + 0.2*(A[t-1,i-1] - 2*A[t-1,i] + A[t-1,i+1])
boundary = 0.0
