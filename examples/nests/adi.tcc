# ADI integration (paper §4.3). Single-array variant with Table 3's
# dependence pattern; the faithful two-array Table 3 kernel lives in
# tilecc-loopnest (adi_paper) via the multi-component model.
# No skewing needed: all dependence components are non-negative.
param T = 16
param N = 32
for t = 1 to T
for i = 1 to N
for j = 1 to N
X[t,i,j] = X[t-1,i,j] + 0.3*X[t-1,i-1,j] - 0.2*X[t-1,i,j-1]
boundary = 0.25
