//! The paper's central experiment in miniature: compare rectangular and
//! non-rectangular tilings of *equal tile size, communication volume and
//! processor count* on all three algorithms, and show that tilings drawn
//! from the tiling cone finish earlier (§4).
//!
//! Run with: `cargo run --release --example tile_shape_comparison`

use tilecc::{measure, Variant, Workload};
use tilecc_cluster::MachineModel;

fn main() {
    let model = MachineModel::fast_ethernet_p3();

    println!("SOR (M=40, N=60), grid x=11, y=26, sweep z:");
    let w = Workload::Sor { m: 40, n: 60 };
    for z in [6, 10, 18] {
        let r = measure(w, Variant::Rect, (11, 26, z), model);
        let nr = measure(w, Variant::NonRect, (11, 26, z), model);
        println!(
            "  z={z:>2}: rect speedup {:.3} | non-rect speedup {:.3} ({:+.1}%)  [{} procs]",
            r.speedup,
            nr.speedup,
            (nr.speedup - r.speedup) / r.speedup * 100.0,
            r.procs
        );
        assert!(nr.makespan <= r.makespan, "cone tiling must not be slower");
    }

    println!("\nJacobi (T=20, I=J=40), grid y=16, z=16, sweep x:");
    let w = Workload::Jacobi {
        t: 20,
        i: 40,
        j: 40,
    };
    for x in [3, 5, 10] {
        let r = measure(w, Variant::Rect, (x, 16, 16), model);
        let nr = measure(w, Variant::NonRect, (x, 16, 16), model);
        println!(
            "  x={x:>2}: rect speedup {:.3} | non-rect speedup {:.3} ({:+.1}%)  [{} procs]",
            r.speedup,
            nr.speedup,
            (nr.speedup - r.speedup) / r.speedup * 100.0,
            r.procs
        );
    }

    println!("\nADI (T=40, N=64), grid y=17, z=17, sweep x — four tile shapes:");
    let w = Workload::Adi { t: 40, n: 64 };
    for x in [4, 8, 13] {
        let pts: Vec<_> = [
            Variant::Rect,
            Variant::AdiNr1,
            Variant::AdiNr2,
            Variant::AdiNr3,
        ]
        .into_iter()
        .map(|v| measure(w, v, (x, 17, 17), model))
        .collect();
        println!(
            "  x={x:>2}: rect {:.3} | nr1 {:.3} | nr2 {:.3} | nr3 {:.3}   (cone surface wins)",
            pts[0].speedup, pts[1].speedup, pts[2].speedup, pts[3].speedup
        );
        assert!(
            pts[3].speedup >= pts[0].speedup,
            "the cone-surface tiling must beat rectangular"
        );
    }
}
