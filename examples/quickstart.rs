//! Quickstart: tile a skewed SOR nest with a non-rectangular (tiling-cone)
//! transformation, generate the data-parallel program, run it on the
//! simulated cluster, and verify the result against sequential execution.
//!
//! Run with: `cargo run --release --example quickstart`

use tilecc::{matrices, Pipeline};
use tilecc_cluster::MachineModel;
use tilecc_loopnest::kernels;

fn main() {
    // The SOR stencil over a 40×80×80 space, skewed so it can be tiled
    // rectangularly (all dependence components non-negative).
    let algorithm = kernels::sor_skewed(40, 80, 1.2);

    // The paper's non-rectangular tiling H_nr (§4.1): rows parallel to the
    // tiling cone, factors x=11, y=31, z=20. Map chains along dimension 3.
    let pipeline = Pipeline::compile(algorithm, matrices::sor_nr(11, 31, 20), Some(2))
        .expect("tiling is legal for SOR");

    println!("compiled: {} processors", pipeline.num_procs());
    println!(
        "tile dependencies D^S: {:?}",
        pipeline.plan().comm.tile_deps
    );
    println!("communication vector CC: {:?}", pipeline.plan().comm.cc);

    // Execute on the modelled FastEthernet/P-III cluster and verify
    // against the sequential reference execution (bitwise).
    let model = MachineModel::fast_ethernet_p3();
    let (summary, _data) = pipeline.run_verified(model);

    println!("\niterations        : {}", summary.iterations);
    println!("verified          : {:?}", summary.verified);
    println!("sequential (sim)  : {:.6} s", summary.sequential_time);
    println!("parallel (sim)    : {:.6} s", summary.makespan);
    println!(
        "speedup           : {:.3} on {} processors",
        summary.speedup, summary.procs
    );
    println!(
        "messages / bytes  : {} / {}",
        summary.messages, summary.bytes
    );

    assert_eq!(summary.verified, Some(true));
}
